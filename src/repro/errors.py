"""Exception hierarchy for the repro (Starburst reproduction) library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  The hierarchy mirrors the two
halves of Starburst: Corona (language processing) errors and Core (data
manager) errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


# ---------------------------------------------------------------------------
# Corona (language processor) errors
# ---------------------------------------------------------------------------


class LanguageError(ReproError):
    """Base class for errors raised while processing Hydrogen statements."""


class LexerError(LanguageError):
    """Raised when the tokenizer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int = -1, line: int = -1):
        super().__init__(message)
        self.position = position
        self.line = line


class ParseError(LanguageError):
    """Raised when a Hydrogen statement is syntactically invalid."""

    def __init__(self, message: str, token=None):
        if token is not None:
            message = "%s (near %r at line %d)" % (message, token.text, token.line)
        super().__init__(message)
        self.token = token


class SemanticError(LanguageError):
    """Raised when a statement is well-formed but semantically invalid.

    Examples: unknown table or column, ambiguous column reference, type
    mismatch, aggregate misuse, or an update through an ambiguous view.
    """


class TypeCheckError(SemanticError):
    """Raised when an expression fails type checking."""


class CatalogError(ReproError):
    """Raised for catalog violations (duplicate table, unknown index...)."""


class QGMError(ReproError):
    """Raised when a QGM graph is malformed or an invariant is violated."""


class RewriteError(ReproError):
    """Raised when a rewrite rule leaves QGM in an inconsistent state."""


class OptimizerError(ReproError):
    """Raised when no valid plan can be produced for a QGM operation."""


class ExecutionError(ReproError):
    """Raised by the Query Evaluation System while running a plan."""


class SubqueryError(ExecutionError):
    """Raised for subquery evaluation problems (e.g. scalar cardinality)."""


class DivisionByZeroError(ExecutionError):
    """Raised when ``/`` or ``%`` sees a zero divisor.

    A dedicated type so the differential testkit can treat division by
    zero as its own divergence class: every evaluator (interpreted,
    compiled, batch, and the reference oracle) must raise exactly this.
    """


# ---------------------------------------------------------------------------
# Serving-layer errors
# ---------------------------------------------------------------------------


class ServeError(ReproError):
    """Base class for the concurrent serving layer (``repro.serve``)."""


class ServerOverloaded(ServeError):
    """Admission control shed this statement: the server is at its
    configured max-inflight and the wait queue did not drain within the
    admission timeout.  Clients should back off and retry."""


class SessionClosed(ServeError):
    """The session (or its server) was closed; no further statements."""


# ---------------------------------------------------------------------------
# Core (data manager) errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-manager and buffer-manager errors."""


class PageError(StorageError):
    """Raised for slotted-page layout violations (overflow, bad slot...)."""


class BufferPoolError(StorageError):
    """Raised when the buffer pool cannot satisfy a request.

    The common case is every frame being pinned when a new page is needed.
    """


class RecordError(StorageError):
    """Raised when a record cannot be (de)serialized for its table schema."""


class TransactionError(ReproError):
    """Base class for transaction-management errors."""


class DeadlockError(TransactionError):
    """Raised when the lock manager detects a deadlock.

    The victim transaction should be aborted and may be retried.
    """


class LockTimeoutError(TransactionError):
    """Raised when a lock request waits longer than the configured bound."""


class RecoveryError(ReproError):
    """Raised when WAL-based recovery encounters a malformed log."""


class ConstraintError(ReproError):
    """Raised when an integrity-constraint attachment rejects a change."""


class AccessMethodError(ReproError):
    """Raised by access-method attachments (B+-tree, hash, R-tree)."""


class ExtensionError(ReproError):
    """Raised when a DBC extension is registered or used incorrectly."""


class DataTypeError(ReproError):
    """Raised for data-type registration and value-validation failures."""
