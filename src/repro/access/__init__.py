"""Core's attachment architecture: access methods and integrity constraints.

Starburst's data management extension architecture ([LIND87]) lets a DBC add
new kinds of *attachments* to tables.  An attachment observes every insert,
delete and update on its table; access-method attachments additionally offer
lookup capabilities that the optimizer can exploit ("Corona must recognize
when this access method is useful for a query and when to invoke it").

Built-in attachment kinds:

- ``btree`` — B+-tree, equality + range probes, ordered scans,
- ``hash`` — hash index, equality probes only,
- ``rtree`` — R-tree for 2-D spatial data (the paper's [GUTT84] example),
- ``unique`` / ``check`` / ``foreign_key`` — integrity constraints.
"""

from repro.access.attachment import (
    AccessMethod,
    AccessMethodRegistry,
    Attachment,
    IntegrityConstraint,
    default_access_registry,
)
from repro.access.btree import BPlusTree, BTreeIndex
from repro.access.hashindex import HashIndex
from repro.access.rtree import Rect, RTree, RTreeIndex
from repro.access.constraints import (
    CheckConstraint,
    ForeignKeyConstraint,
    NotNullConstraint,
    UniqueConstraint,
)

__all__ = [
    "Attachment",
    "AccessMethod",
    "IntegrityConstraint",
    "AccessMethodRegistry",
    "default_access_registry",
    "BPlusTree",
    "BTreeIndex",
    "HashIndex",
    "RTree",
    "RTreeIndex",
    "Rect",
    "UniqueConstraint",
    "CheckConstraint",
    "NotNullConstraint",
    "ForeignKeyConstraint",
]
