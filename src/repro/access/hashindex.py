"""Hash index access method: equality probes only, no order.

Exists mainly to exercise the optimizer's capability checks — a STAR whose
condition requires a range-capable index must not pick a hash index, and
the glue machinery must add a SORT when order is required above it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.access.attachment import AccessMethod
from repro.catalog.schema import IndexDef, TableDef
from repro.errors import AccessMethodError, ConstraintError
from repro.storage.record import RID

Key = Tuple[Any, ...]


class HashIndex(AccessMethod):
    """Bucketed equality index over full key tuples."""

    kind = "hash"

    def __init__(self, table: TableDef, index: IndexDef):
        super().__init__(table, index)
        self._buckets: Dict[Key, List[RID]] = {}
        self._size = 0

    @property
    def supports_range(self) -> bool:
        return False

    @property
    def provides_order(self) -> bool:
        return False

    def before_insert(self, row: Tuple[Any, ...]) -> None:
        if self.index.unique:
            key = self.key_of(row)
            if None not in key and self._buckets.get(key):
                raise ConstraintError(
                    "unique index %s rejects duplicate key %r"
                    % (self.index.name, key)
                )

    def before_update(self, rid: RID, old_row: Tuple[Any, ...],
                      new_row: Tuple[Any, ...]) -> None:
        if self.index.unique:
            old_key = self.key_of(old_row)
            new_key = self.key_of(new_row)
            if new_key != old_key and None not in new_key and self._buckets.get(new_key):
                raise ConstraintError(
                    "unique index %s rejects duplicate key %r"
                    % (self.index.name, new_key)
                )

    def on_insert(self, rid: RID, row: Tuple[Any, ...]) -> None:
        self._buckets.setdefault(self.key_of(row), []).append(rid)
        self._size += 1

    def on_delete(self, rid: RID, row: Tuple[Any, ...]) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        try:
            bucket.remove(rid)
            self._size -= 1
        except ValueError:
            return
        if not bucket:
            del self._buckets[key]

    def probe(self, key: Key) -> List[RID]:
        if None in key:
            return []
        return list(self._buckets.get(key, []))

    def range_scan(self, low: Optional[Key] = None, high: Optional[Key] = None,
                   low_inclusive: bool = True,
                   high_inclusive: bool = True) -> Iterator[Tuple[Key, RID]]:
        raise AccessMethodError(
            "hash index %s cannot answer range scans" % self.index.name
        )

    def __len__(self) -> int:
        return self._size
