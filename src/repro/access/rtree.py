"""R-tree access method for 2-D spatial data ([GUTT84] in the paper).

The paper's example of a DBC-added access method is an R-tree; this module
provides one (quadratic-split Guttman R-tree) plus the attachment wrapper
that indexes a pair of numeric columns (x, y) as points and answers window
queries.  Externally defined point types can also be indexed by supplying a
``key_extractor``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, NamedTuple, Optional, Tuple

from repro.access.attachment import AccessMethod
from repro.catalog.schema import IndexDef, TableDef
from repro.errors import AccessMethodError
from repro.storage.record import RID


class Rect(NamedTuple):
    """An axis-aligned rectangle (min x, min y, max x, max y)."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    @classmethod
    def point(cls, x: float, y: float) -> "Rect":
        return cls(x, y, x, y)

    def union(self, other: "Rect") -> "Rect":
        return Rect(min(self.x_min, other.x_min), min(self.y_min, other.y_min),
                    max(self.x_max, other.x_max), max(self.y_max, other.y_max))

    def area(self) -> float:
        return (self.x_max - self.x_min) * (self.y_max - self.y_min)

    def enlargement(self, other: "Rect") -> float:
        return self.union(other).area() - self.area()

    def intersects(self, other: "Rect") -> bool:
        return (self.x_min <= other.x_max and other.x_min <= self.x_max and
                self.y_min <= other.y_max and other.y_min <= self.y_max)

    def contains(self, other: "Rect") -> bool:
        return (self.x_min <= other.x_min and other.x_max <= self.x_max and
                self.y_min <= other.y_min and other.y_max <= self.y_max)


class _RNode:
    __slots__ = ("is_leaf", "entries")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        #: leaf: (Rect, RID); interior: (Rect, _RNode)
        self.entries: List[Tuple[Rect, Any]] = []

    def mbr(self) -> Rect:
        rect = self.entries[0][0]
        for other, _ in self.entries[1:]:
            rect = rect.union(other)
        return rect


class RTree:
    """Guttman R-tree with quadratic split."""

    def __init__(self, max_entries: int = 8):
        if max_entries < 4:
            raise AccessMethodError("R-tree needs max_entries >= 4")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 2)
        self._root = _RNode(is_leaf=True)
        self._size = 0

    def insert(self, rect: Rect, rid: RID) -> None:
        split = self._insert(self._root, rect, rid)
        if split is not None:
            left, right = split
            new_root = _RNode(is_leaf=False)
            new_root.entries = [(left.mbr(), left), (right.mbr(), right)]
            self._root = new_root
        self._size += 1

    def _choose_child(self, node: _RNode, rect: Rect) -> int:
        best_index = 0
        best = (float("inf"), float("inf"))
        for index, (mbr, _) in enumerate(node.entries):
            candidate = (mbr.enlargement(rect), mbr.area())
            if candidate < best:
                best = candidate
                best_index = index
        return best_index

    def _insert(self, node: _RNode, rect: Rect,
                payload: Any) -> Optional[Tuple[_RNode, _RNode]]:
        if node.is_leaf:
            node.entries.append((rect, payload))
        else:
            index = self._choose_child(node, rect)
            mbr, child = node.entries[index]
            split = self._insert(child, rect, payload)
            if split is None:
                node.entries[index] = (mbr.union(rect), child)
            else:
                left, right = split
                node.entries[index] = (left.mbr(), left)
                node.entries.append((right.mbr(), right))
        if len(node.entries) > self.max_entries:
            return self._quadratic_split(node)
        return None

    def _quadratic_split(self, node: _RNode) -> Tuple[_RNode, _RNode]:
        entries = node.entries
        # Pick the two seeds wasting the most area if grouped together.
        worst = -1.0
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (entries[i][0].union(entries[j][0]).area()
                         - entries[i][0].area() - entries[j][0].area())
                if waste > worst:
                    worst = waste
                    seeds = (i, j)
        left = _RNode(node.is_leaf)
        right = _RNode(node.is_leaf)
        left.entries.append(entries[seeds[0]])
        right.entries.append(entries[seeds[1]])
        remaining = [e for k, e in enumerate(entries) if k not in seeds]
        for position, entry in enumerate(remaining):
            still_unassigned = len(remaining) - position
            # Honour the minimum fill: if one group needs every remaining
            # entry to reach min_entries, it takes them all.
            if self.min_entries - len(left.entries) >= still_unassigned:
                left.entries.append(entry)
                continue
            if self.min_entries - len(right.entries) >= still_unassigned:
                right.entries.append(entry)
                continue
            grow_left = left.mbr().enlargement(entry[0])
            grow_right = right.mbr().enlargement(entry[0])
            if grow_left <= grow_right:
                left.entries.append(entry)
            else:
                right.entries.append(entry)
        node.entries = left.entries
        node.is_leaf = left.is_leaf
        # Reuse `node` as the left node to keep the parent's reference valid.
        right_node = right
        return node, right_node

    def search(self, window: Rect) -> Iterator[Tuple[Rect, RID]]:
        """Yield (rect, RID) for every entry intersecting the window."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for rect, payload in node.entries:
                if not window.intersects(rect):
                    continue
                if node.is_leaf:
                    yield rect, payload
                else:
                    stack.append(payload)

    def delete(self, rect: Rect, rid: RID) -> bool:
        """Remove one entry (exact rect + RID match).  No re-balancing."""
        found = self._delete(self._root, rect, rid)
        if found:
            self._size -= 1
        return found

    def _delete(self, node: _RNode, rect: Rect, rid: RID) -> bool:
        if node.is_leaf:
            for index, (entry_rect, payload) in enumerate(node.entries):
                if entry_rect == rect and payload == rid:
                    del node.entries[index]
                    return True
            return False
        for index, (mbr, child) in enumerate(node.entries):
            if mbr.intersects(rect) and self._delete(child, rect, rid):
                if child.entries:
                    node.entries[index] = (child.mbr(), child)
                else:
                    del node.entries[index]
                return True
        return False

    def __len__(self) -> int:
        return self._size


class RTreeIndex(AccessMethod):
    """Attachment wrapper indexing two numeric columns as points.

    ``key_extractor`` may be supplied to index externally defined types
    (e.g. a POINT column) — it maps a row to a :class:`Rect`.
    """

    kind = "rtree"

    def __init__(self, table: TableDef, index: IndexDef,
                 key_extractor: Optional[Callable[[Tuple], Rect]] = None):
        super().__init__(table, index)
        if key_extractor is None and len(index.column_names) != 2:
            raise AccessMethodError(
                "rtree index %s needs exactly two numeric columns (x, y) "
                "or a key_extractor" % index.name
            )
        self._extract = key_extractor
        self.tree = RTree()

    def _rect_of(self, row: Tuple[Any, ...]) -> Optional[Rect]:
        if self._extract is not None:
            return self._extract(row)
        x, y = (row[p] for p in self.key_positions)
        if x is None or y is None:
            return None
        return Rect.point(float(x), float(y))

    def on_insert(self, rid: RID, row: Tuple[Any, ...]) -> None:
        rect = self._rect_of(row)
        if rect is not None:
            self.tree.insert(rect, rid)

    def on_delete(self, rid: RID, row: Tuple[Any, ...]) -> None:
        rect = self._rect_of(row)
        if rect is not None:
            self.tree.delete(rect, rid)

    def probe(self, key: Tuple[Any, ...]) -> List[RID]:
        if None in key:
            return []
        window = Rect.point(float(key[0]), float(key[1]))
        return [rid for _, rid in self.tree.search(window)]

    def window_query(self, window: Rect) -> List[RID]:
        """All RIDs whose point lies in the window (the R-tree speciality)."""
        return [rid for _, rid in self.tree.search(window)]

    def __len__(self) -> int:
        return len(self.tree)
