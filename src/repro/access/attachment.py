"""Attachment base classes and the access-method registry.

An :class:`Attachment` is notified of every change to its table.  Integrity
constraints validate the change *before* it is applied (and may veto it by
raising); access methods maintain auxiliary structures *after* it is applied
and expose probe/scan capabilities to the optimizer.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.catalog.schema import IndexDef, TableDef
from repro.errors import ExtensionError
from repro.storage.record import RID


class Attachment:
    """Base class: observes inserts, deletes and updates on one table."""

    def __init__(self, table: TableDef):
        self.table = table

    def before_insert(self, row: Tuple[Any, ...]) -> None:
        """Validate an insert; integrity constraints raise to veto."""

    def before_update(self, rid: RID, old_row: Tuple[Any, ...],
                      new_row: Tuple[Any, ...]) -> None:
        """Validate an update."""

    def before_delete(self, rid: RID, row: Tuple[Any, ...]) -> None:
        """Validate a delete (e.g. referential integrity)."""

    def on_insert(self, rid: RID, row: Tuple[Any, ...]) -> None:
        """Maintain auxiliary state after a successful insert."""

    def on_delete(self, rid: RID, row: Tuple[Any, ...]) -> None:
        """Maintain auxiliary state after a successful delete."""

    def on_update(self, old_rid: RID, new_rid: RID,
                  old_row: Tuple[Any, ...], new_row: Tuple[Any, ...]) -> None:
        """Maintain auxiliary state after a successful update.

        Default: delete + insert.
        """
        self.on_delete(old_rid, old_row)
        self.on_insert(new_rid, new_row)

    def rebuild(self, rows: Iterator[Tuple[RID, Tuple[Any, ...]]]) -> None:
        """Rebuild from scratch (index creation on a populated table).

        Existing rows are validated too, so creating a unique index on a
        table that already contains duplicates fails.
        """
        for rid, row in rows:
            self.before_insert(row)
            self.on_insert(rid, row)


class AccessMethod(Attachment):
    """An attachment that can also *find* rows: an index.

    The capability flags below are what the optimizer's STARs consult when
    deciding whether an index-scan alternative is applicable.
    """

    #: Registry kind name, e.g. ``"btree"``.
    kind = "abstract"

    def __init__(self, table: TableDef, index: IndexDef):
        super().__init__(table)
        self.index = index
        self.key_positions = [table.column_index(c) for c in index.column_names]

    # -- capabilities --------------------------------------------------------

    @property
    def key_columns(self) -> List[str]:
        return list(self.index.column_names)

    @property
    def supports_range(self) -> bool:
        """Can this index answer <, <=, >, >= probes on its first column?"""
        return False

    @property
    def provides_order(self) -> bool:
        """Does a full scan of this index yield key order?"""
        return False

    # -- probes ---------------------------------------------------------------

    def key_of(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        return tuple(row[p] for p in self.key_positions)

    def probe(self, key: Tuple[Any, ...]) -> List[RID]:
        """RIDs whose key equals ``key`` exactly."""
        raise NotImplementedError

    def range_scan(self, low: Optional[Tuple[Any, ...]] = None,
                   high: Optional[Tuple[Any, ...]] = None,
                   low_inclusive: bool = True,
                   high_inclusive: bool = True) -> Iterator[Tuple[Tuple[Any, ...], RID]]:
        """Yield (key, RID) in key order within the bounds (if supported)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class IntegrityConstraint(Attachment):
    """An attachment that exists to veto invalid changes."""

    kind = "constraint"


AccessFactory = Callable[[TableDef, IndexDef], AccessMethod]


class AccessMethodRegistry:
    """Maps access-method kind names to factories (DBC extension point)."""

    def __init__(self):
        self._factories: Dict[str, AccessFactory] = {}

    def register(self, kind: str, factory: AccessFactory,
                 replace: bool = False) -> None:
        key = kind.lower()
        if not replace and key in self._factories:
            raise ExtensionError("access method %s already registered" % kind)
        self._factories[key] = factory

    def create(self, table: TableDef, index: IndexDef) -> AccessMethod:
        factory = self._factories.get(index.kind.lower())
        if factory is None:
            raise ExtensionError(
                "index %s names unknown access method kind %s"
                % (index.name, index.kind)
            )
        return factory(table, index)

    def names(self) -> List[str]:
        return sorted(self._factories)

    def __contains__(self, kind: str) -> bool:
        return kind.lower() in self._factories


def default_access_registry() -> AccessMethodRegistry:
    """Registry with the built-in access methods (btree, hash, rtree)."""
    from repro.access.btree import BTreeIndex
    from repro.access.hashindex import HashIndex
    from repro.access.rtree import RTreeIndex

    registry = AccessMethodRegistry()
    registry.register("btree", BTreeIndex)
    registry.register("hash", HashIndex)
    registry.register("rtree", RTreeIndex)
    return registry
