"""Integrity-constraint attachments.

Constraints use the same attachment protocol as access methods (the paper's
point: attachments generalize both).  They validate changes in their
``before_*`` hooks and raise :class:`ConstraintError` to veto.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.access.attachment import IntegrityConstraint
from repro.catalog.schema import TableDef
from repro.errors import ConstraintError
from repro.storage.record import RID


class NotNullConstraint(IntegrityConstraint):
    """Rejects NULL in the named columns."""

    kind = "not_null"

    def __init__(self, table: TableDef, column_names: Sequence[str]):
        super().__init__(table)
        self.column_names = list(column_names)
        self._positions = [table.column_index(c) for c in column_names]

    def _check(self, row: Tuple[Any, ...]) -> None:
        for name, position in zip(self.column_names, self._positions):
            if row[position] is None:
                raise ConstraintError(
                    "column %s of table %s may not be NULL"
                    % (name, self.table.name)
                )

    def before_insert(self, row: Tuple[Any, ...]) -> None:
        self._check(row)

    def before_update(self, rid: RID, old_row: Tuple[Any, ...],
                      new_row: Tuple[Any, ...]) -> None:
        self._check(new_row)


class UniqueConstraint(IntegrityConstraint):
    """Enforces uniqueness of a column combination with its own lookup table.

    (Unique *indexes* also enforce uniqueness; this attachment exists for
    tables without an index on the key.)
    """

    kind = "unique"

    def __init__(self, table: TableDef, column_names: Sequence[str],
                 name: Optional[str] = None):
        super().__init__(table)
        self.name = name or "uniq_%s_%s" % (table.name, "_".join(column_names))
        self.column_names = list(column_names)
        self._positions = [table.column_index(c) for c in column_names]
        self._keys: Dict[Tuple[Any, ...], int] = {}

    def _key_of(self, row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple(row[p] for p in self._positions)

    def before_insert(self, row: Tuple[Any, ...]) -> None:
        key = self._key_of(row)
        if None not in key and self._keys.get(key, 0) > 0:
            raise ConstraintError(
                "%s: duplicate key %r" % (self.name, key)
            )

    def before_update(self, rid: RID, old_row: Tuple[Any, ...],
                      new_row: Tuple[Any, ...]) -> None:
        old_key = self._key_of(old_row)
        new_key = self._key_of(new_row)
        if new_key != old_key and None not in new_key and self._keys.get(new_key, 0) > 0:
            raise ConstraintError(
                "%s: duplicate key %r" % (self.name, new_key)
            )

    def on_insert(self, rid: RID, row: Tuple[Any, ...]) -> None:
        key = self._key_of(row)
        self._keys[key] = self._keys.get(key, 0) + 1

    def on_delete(self, rid: RID, row: Tuple[Any, ...]) -> None:
        key = self._key_of(row)
        count = self._keys.get(key, 0)
        if count <= 1:
            self._keys.pop(key, None)
        else:
            self._keys[key] = count - 1


class CheckConstraint(IntegrityConstraint):
    """Arbitrary row predicate supplied by the DBC as a Python callable.

    The callable receives the row as a dict keyed by column name and must
    return truthy for acceptable rows.  NULL-involving checks follow SQL:
    a check that returns None (unknown) does not reject the row.
    """

    kind = "check"

    def __init__(self, table: TableDef,
                 predicate: Callable[[Dict[str, Any]], Any],
                 name: Optional[str] = None):
        super().__init__(table)
        self.name = name or "check_%s" % table.name
        self.predicate = predicate
        self._names = table.column_names()

    def _check(self, row: Tuple[Any, ...]) -> None:
        named = dict(zip(self._names, row))
        verdict = self.predicate(named)
        if verdict is not None and not verdict:
            raise ConstraintError("%s violated by row %r" % (self.name, row))

    def before_insert(self, row: Tuple[Any, ...]) -> None:
        self._check(row)

    def before_update(self, rid: RID, old_row: Tuple[Any, ...],
                      new_row: Tuple[Any, ...]) -> None:
        self._check(new_row)


class ForeignKeyConstraint(IntegrityConstraint):
    """Referential integrity: child columns must match some parent row.

    The parent side is consulted through a callable so the constraint does
    not depend on the storage engine directly (the engine wires it up with
    a probe against the parent's storage or index).
    """

    kind = "foreign_key"

    def __init__(self, table: TableDef, column_names: Sequence[str],
                 parent_lookup: Callable[[Tuple[Any, ...]], bool],
                 name: Optional[str] = None):
        super().__init__(table)
        self.name = name or "fk_%s_%s" % (table.name, "_".join(column_names))
        self.column_names = list(column_names)
        self._positions = [table.column_index(c) for c in column_names]
        self._parent_lookup = parent_lookup

    def _check(self, row: Tuple[Any, ...]) -> None:
        key = tuple(row[p] for p in self._positions)
        if None in key:
            return  # SQL: NULL FK values are not checked
        if not self._parent_lookup(key):
            raise ConstraintError(
                "%s: no parent row for key %r" % (self.name, key)
            )

    def before_insert(self, row: Tuple[Any, ...]) -> None:
        self._check(row)

    def before_update(self, rid: RID, old_row: Tuple[Any, ...],
                      new_row: Tuple[Any, ...]) -> None:
        self._check(new_row)
