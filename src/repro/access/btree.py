"""B+-tree access method.

A textbook in-memory B+-tree: interior nodes hold separator keys and
children; leaves hold (key, [RID, ...]) pairs and are chained for range
scans.  Duplicate keys share one leaf entry.  The order (max children per
interior node) is configurable; the default of 32 gives realistic depth on
benchmark-sized tables.

Keys are tuples of column values.  NULLs sort after every non-NULL value
(SQL-ish; NULL keys are indexed so deletes can find them, but equality
probes never match NULL).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from repro.access.attachment import AccessMethod
from repro.catalog.schema import IndexDef, TableDef
from repro.errors import AccessMethodError, ConstraintError
from repro.storage.record import RID

Key = Tuple[Any, ...]


def _sortable(key: Key) -> Tuple:
    """Map a key to a tuple that orders NULLs after all non-NULL values."""
    return tuple((1, 0) if v is None else (0, v) for v in key)


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: List[Tuple] = []          # sortable forms
        self.children: List["_Node"] = []    # interior only
        self.values: List[Tuple[Key, List[RID]]] = []  # leaf only: (raw key, rids)
        self.next_leaf: Optional["_Node"] = None


class BPlusTree:
    """The tree structure itself, independent of the attachment protocol."""

    def __init__(self, order: int = 32):
        if order < 4:
            raise AccessMethodError("B+-tree order must be at least 4")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0  # number of (key, rid) pairs

    # -- search -----------------------------------------------------------------

    def _find_leaf(self, skey: Tuple) -> _Node:
        node = self._root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, skey)
            node = node.children[index]
        return node

    def search(self, key: Key) -> List[RID]:
        """RIDs stored under exactly ``key`` (empty list when absent)."""
        skey = _sortable(key)
        leaf = self._find_leaf(skey)
        index = bisect.bisect_left(leaf.keys, skey)
        if index < len(leaf.keys) and leaf.keys[index] == skey:
            return list(leaf.values[index][1])
        return []

    def items(self, low: Optional[Key] = None, high: Optional[Key] = None,
              low_inclusive: bool = True,
              high_inclusive: bool = True) -> Iterator[Tuple[Key, RID]]:
        """Yield (raw key, RID) pairs in key order within the bounds.

        A partial ``low``/``high`` (prefix of the full key) bounds only the
        leading columns, matching how a multi-column index is probed.
        """
        slow = _sortable(low) if low is not None else None
        shigh = _sortable(high) if high is not None else None
        if slow is not None:
            # Bisecting with a prefix tuple positions at the first full key
            # whose leading columns are >= the prefix (tuple comparison is
            # lexicographic, and a shorter tuple sorts before its extensions).
            leaf = self._find_leaf(slow)
            index = bisect.bisect_left(leaf.keys, slow)
        else:
            leaf = self._leftmost_leaf()
            index = 0
        while leaf is not None:
            while index < len(leaf.keys):
                skey = leaf.keys[index]
                if slow is not None and not low_inclusive:
                    if skey[: len(slow)] == slow:
                        index += 1
                        continue
                if shigh is not None:
                    prefix = skey[: len(shigh)]
                    if prefix > shigh or (prefix == shigh and not high_inclusive):
                        return
                raw_key, rids = leaf.values[index]
                for rid in rids:
                    yield raw_key, rid
                index += 1
            leaf = leaf.next_leaf
            index = 0

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    # -- insert -----------------------------------------------------------------

    def insert(self, key: Key, rid: RID) -> None:
        skey = _sortable(key)
        split = self._insert_into(self._root, skey, key, rid)
        if split is not None:
            sep, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert_into(self, node: _Node, skey: Tuple, key: Key,
                     rid: RID) -> Optional[Tuple[Tuple, _Node]]:
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, skey)
            if index < len(node.keys) and node.keys[index] == skey:
                node.values[index][1].append(rid)
                return None
            node.keys.insert(index, skey)
            node.values.insert(index, (key, [rid]))
            if len(node.keys) >= self.order:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, skey)
        split = self._insert_into(node.children[index], skey, key, rid)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(index, sep)
        node.children.insert(index + 1, right)
        if len(node.children) > self.order:
            return self._split_interior(node)
        return None

    def _split_leaf(self, node: _Node) -> Tuple[Tuple, _Node]:
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_interior(self, node: _Node) -> Tuple[Tuple, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1:]
        right.children = node.children[mid + 1:]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    # -- delete ------------------------------------------------------------------

    def delete(self, key: Key, rid: RID) -> bool:
        """Remove one (key, rid) pair.  Returns False when absent.

        Underfull leaves are tolerated (lazy deletion): range scans skip
        empty entries and the structural invariants checked by
        :meth:`check_invariants` still hold.
        """
        skey = _sortable(key)
        leaf = self._find_leaf(skey)
        index = bisect.bisect_left(leaf.keys, skey)
        if index >= len(leaf.keys) or leaf.keys[index] != skey:
            return False
        rids = leaf.values[index][1]
        try:
            rids.remove(rid)
        except ValueError:
            return False
        if not rids:
            del leaf.keys[index]
            del leaf.values[index]
        self._size -= 1
        return True

    def __len__(self) -> int:
        return self._size

    # -- invariants (for property-based tests) -------------------------------------

    def check_invariants(self) -> None:
        """Raise AccessMethodError if any B+-tree invariant is violated."""
        self._check_node(self._root, None, None, is_root=True)
        # Leaf chain must be sorted and cover all keys left-to-right.
        previous = None
        leaf = self._leftmost_leaf()
        while leaf is not None:
            for skey in leaf.keys:
                if previous is not None and skey <= previous:
                    raise AccessMethodError("leaf chain out of order")
                previous = skey
            leaf = leaf.next_leaf

    def _check_node(self, node: _Node, low, high, is_root: bool = False) -> int:
        if sorted(node.keys) != node.keys:
            raise AccessMethodError("node keys unsorted")
        for skey in node.keys:
            if low is not None and skey < low:
                raise AccessMethodError("key below subtree bound")
            if high is not None and skey >= high:
                raise AccessMethodError("key above subtree bound")
        if node.is_leaf:
            if len(node.keys) != len(node.values):
                raise AccessMethodError("leaf keys/values mismatch")
            return 1
        if len(node.children) != len(node.keys) + 1:
            raise AccessMethodError("interior fan-out mismatch")
        if not is_root and len(node.children) < 2:
            raise AccessMethodError("interior node underfull")
        depths = set()
        for index, child in enumerate(node.children):
            child_low = node.keys[index - 1] if index > 0 else low
            child_high = node.keys[index] if index < len(node.keys) else high
            depths.add(self._check_node(child, child_low, child_high))
        if len(depths) != 1:
            raise AccessMethodError("leaves at different depths")
        return depths.pop() + 1


class BTreeIndex(AccessMethod):
    """Attachment wrapper: maintains a BPlusTree under DML."""

    kind = "btree"

    def __init__(self, table: TableDef, index: IndexDef, order: int = 32):
        super().__init__(table, index)
        self.tree = BPlusTree(order=order)

    @property
    def supports_range(self) -> bool:
        return True

    @property
    def provides_order(self) -> bool:
        return True

    def before_insert(self, row: Tuple[Any, ...]) -> None:
        if self.index.unique:
            key = self.key_of(row)
            if None not in key and self.tree.search(key):
                raise ConstraintError(
                    "unique index %s rejects duplicate key %r"
                    % (self.index.name, key)
                )

    def before_update(self, rid: RID, old_row: Tuple[Any, ...],
                      new_row: Tuple[Any, ...]) -> None:
        if self.index.unique:
            old_key = self.key_of(old_row)
            new_key = self.key_of(new_row)
            if new_key != old_key and None not in new_key and self.tree.search(new_key):
                raise ConstraintError(
                    "unique index %s rejects duplicate key %r"
                    % (self.index.name, new_key)
                )

    def on_insert(self, rid: RID, row: Tuple[Any, ...]) -> None:
        self.tree.insert(self.key_of(row), rid)

    def on_delete(self, rid: RID, row: Tuple[Any, ...]) -> None:
        self.tree.delete(self.key_of(row), rid)

    def probe(self, key: Key) -> List[RID]:
        if None in key:
            return []  # SQL equality never matches NULL
        return self.tree.search(key)

    def range_scan(self, low: Optional[Key] = None, high: Optional[Key] = None,
                   low_inclusive: bool = True,
                   high_inclusive: bool = True) -> Iterator[Tuple[Key, RID]]:
        return self.tree.items(low, high, low_inclusive, high_inclusive)

    def __len__(self) -> int:
        return len(self.tree)
