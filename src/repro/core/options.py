"""Compile-time configuration as one first-class object.

Every knob the pipeline used to read ad-hoc from ``db.settings`` —
rewrite on/off, QGM validation, expression compilation, and the optimizer
search-strategy switches — lives here as a single immutable-by-convention
value that can be passed to :func:`repro.core.pipeline.compile_statement`
(and through ``Database.execute`` / ``Database.compile``) without mutating
the database.  The differential test harness compiles the same statement
under many ``CompileOptions`` and checks that every configuration computes
the same answer.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.optimizer.boxopt import OptimizerSettings

#: Legal values for :attr:`CompileOptions.forced_join_method`.
JOIN_METHODS = ("nl", "merge", "hash")

#: Legal values for :attr:`CompileOptions.join_enumeration`.
ENUMERATION_STRATEGIES = ("dp", "greedy")

#: Legal values for :attr:`CompileOptions.execution_mode`.  ``compiled``
#: selects the pipeline-fusion codegen backend where fusable (falling
#: back per subtree to batch, then tuple); ``auto`` lets refinement pick
#: per subtree, escalating large fusable plans to codegen.
EXECUTION_MODES = ("tuple", "batch", "compiled", "auto")

#: Legal values for :attr:`CompileOptions.parallelism`.  ``off`` never
#: splices Exchanges; ``auto`` parallelizes only when the cost model says
#: the scanned rows amortize worker startup; ``on`` bypasses the cost gate
#: (used by tests and the differential matrix on small tables).
PARALLELISM_MODES = ("off", "auto", "on")

#: Legal values for :attr:`CompileOptions.rewrite_strategy`.  ``default``
#: is the single forward-chaining pass; ``search`` explores alternative
#: rule-firing sequences under the engine budget and keeps the variant
#: with the lowest optimizer-estimated cost.
REWRITE_STRATEGIES = ("default", "search")


class CompileOptions:
    """One compilation's worth of pipeline configuration."""

    __slots__ = ("rewrite_enabled", "rewrite_strategy", "rewrite_only_rules",
                 "validate_qgm", "compile_expressions",
                 "allow_bushy", "allow_cartesian", "rank_cutoff",
                 "sort_by_rank", "naive_recursion", "forced_join_method",
                 "join_enumeration", "execution_mode", "batch_size",
                 "parallelism", "dop", "repartition", "analyze",
                 "plan_cache", "constant_parameterization", "label")

    def __init__(self,
                 rewrite_enabled: bool = True,
                 rewrite_strategy: str = "default",
                 rewrite_only_rules: Optional[Sequence[str]] = None,
                 validate_qgm: bool = True,
                 compile_expressions: bool = True,
                 allow_bushy: bool = False,
                 allow_cartesian: bool = False,
                 rank_cutoff: float = 100.0,
                 sort_by_rank: bool = True,
                 naive_recursion: bool = False,
                 forced_join_method: Optional[str] = None,
                 join_enumeration: str = "dp",
                 execution_mode: str = "tuple",
                 batch_size: int = 1024,
                 parallelism: str = "off",
                 dop: int = 4,
                 repartition: bool = True,
                 analyze: bool = False,
                 plan_cache: bool = True,
                 constant_parameterization: bool = False,
                 label: Optional[str] = None):
        if rewrite_strategy not in REWRITE_STRATEGIES:
            raise ValueError(
                "rewrite_strategy must be one of %r, got %r"
                % (REWRITE_STRATEGIES, rewrite_strategy))
        if forced_join_method is not None \
                and forced_join_method not in JOIN_METHODS:
            raise ValueError(
                "forced_join_method must be one of %r, got %r"
                % (JOIN_METHODS, forced_join_method))
        if join_enumeration not in ENUMERATION_STRATEGIES:
            raise ValueError(
                "join_enumeration must be one of %r, got %r"
                % (ENUMERATION_STRATEGIES, join_enumeration))
        if execution_mode not in EXECUTION_MODES:
            raise ValueError(
                "execution_mode must be one of %r, got %r"
                % (EXECUTION_MODES, execution_mode))
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1, got %r" % (batch_size,))
        if parallelism not in PARALLELISM_MODES:
            raise ValueError(
                "parallelism must be one of %r, got %r"
                % (PARALLELISM_MODES, parallelism))
        if dop < 1:
            raise ValueError("dop must be >= 1, got %r" % (dop,))
        self.rewrite_enabled = rewrite_enabled
        #: "default" (one forward-chaining pass) or "search" (budgeted
        #: cost-driven exploration of alternative firing sequences).
        self.rewrite_strategy = rewrite_strategy
        #: Restrict rewrite to the named rules regardless of class
        #: enabling — the rulecheck harness's forced-fire switch.
        self.rewrite_only_rules = (tuple(rewrite_only_rules)
                                   if rewrite_only_rules is not None
                                   else None)
        self.validate_qgm = validate_qgm
        self.compile_expressions = compile_expressions
        self.allow_bushy = allow_bushy
        self.allow_cartesian = allow_cartesian
        self.rank_cutoff = rank_cutoff
        self.sort_by_rank = sort_by_rank
        self.naive_recursion = naive_recursion
        self.forced_join_method = forced_join_method
        self.join_enumeration = join_enumeration
        self.execution_mode = execution_mode
        self.batch_size = batch_size
        #: Intra-query parallelism mode ("off" / "auto" / "on"); the glue
        #: phase splices Exchange LOLEPOPs when not "off".
        self.parallelism = parallelism
        #: Target degree of parallelism for spliced Exchanges.
        self.dop = dop
        #: Allow the glue phase to splice Repartition/PartitionGather
        #: exchanges (partition-wise joins and group-bys).  Off restricts
        #: parallelism to the Gather family — used to benchmark the
        #: shuffle against the gather-merge baseline.
        self.repartition = repartition
        #: Collect per-operator runtime probes (EXPLAIN ANALYZE).  A pure
        #: execution-time switch: the compiled plan is identical, so it is
        #: excluded from :meth:`cache_key` and analyzed runs share cached
        #: plans with unanalyzed ones.
        self.analyze = analyze
        #: Serve repeated statements from the database's plan cache
        #: (compile-once-execute-many); off forces a fresh compile.
        self.plan_cache = plan_cache
        #: Replace top-level comparison literals with synthetic parameters
        #: at fingerprint time, so ``WHERE id = 7`` and ``WHERE id = 9``
        #: share one cached plan.  Only meaningful with ``plan_cache``.
        self.constant_parameterization = constant_parameterization
        self.label = label

    @classmethod
    def from_settings(cls, settings) -> "CompileOptions":
        """Snapshot a database's ``Settings`` into one options value."""
        optimizer = settings.optimizer
        return cls(
            rewrite_enabled=settings.rewrite_enabled,
            rewrite_strategy=getattr(settings, "rewrite_strategy", "default"),
            validate_qgm=settings.validate_qgm,
            compile_expressions=settings.compile_expressions,
            allow_bushy=optimizer.allow_bushy,
            allow_cartesian=optimizer.allow_cartesian,
            rank_cutoff=optimizer.rank_cutoff,
            sort_by_rank=optimizer.sort_by_rank,
            naive_recursion=optimizer.naive_recursion,
            forced_join_method=getattr(optimizer, "forced_join_method", None),
            join_enumeration=getattr(optimizer, "join_enumeration", "dp"),
            execution_mode=getattr(settings, "execution_mode", "tuple"),
            batch_size=getattr(settings, "batch_size", 1024),
            parallelism=getattr(settings, "parallelism", "off"),
            dop=getattr(settings, "dop", 4),
            plan_cache=getattr(settings, "plan_cache_enabled", True),
            constant_parameterization=getattr(
                settings, "constant_parameterization", False),
        )

    def optimizer_settings(self) -> OptimizerSettings:
        """The optimizer's view of these options."""
        return OptimizerSettings(
            allow_bushy=self.allow_bushy,
            allow_cartesian=self.allow_cartesian,
            rank_cutoff=self.rank_cutoff,
            sort_by_rank=self.sort_by_rank,
            naive_recursion=self.naive_recursion,
            forced_join_method=self.forced_join_method,
            join_enumeration=self.join_enumeration,
        )

    def replace(self, **overrides) -> "CompileOptions":
        """A copy with some fields replaced."""
        values = {name: getattr(self, name) for name in self.__slots__}
        values.update(overrides)
        return CompileOptions(**values)

    def describe(self) -> str:
        """A short human-readable tag (used by the differential harness)."""
        if self.label:
            return self.label
        parts = []
        if not self.rewrite_enabled:
            parts.append("no-rewrite")
        if self.rewrite_strategy != "default":
            parts.append("rw-%s" % self.rewrite_strategy)
        if self.rewrite_only_rules is not None:
            parts.append("only[%s]" % ",".join(self.rewrite_only_rules))
        if not self.compile_expressions:
            parts.append("interpreted")
        if self.forced_join_method:
            parts.append("force-%s" % self.forced_join_method)
        if self.join_enumeration != "dp":
            parts.append(self.join_enumeration)
        if self.allow_bushy:
            parts.append("bushy")
        if self.allow_cartesian:
            parts.append("cartesian")
        if self.execution_mode != "tuple":
            parts.append(self.execution_mode)
            if self.batch_size != 1024:
                parts.append("bs%d" % self.batch_size)
        if self.parallelism != "off":
            parts.append("parallel" if self.parallelism == "on"
                         else "parallel-auto")
            parts.append("dop%d" % self.dop)
            if not self.repartition:
                parts.append("no-repartition")
        if self.analyze:
            parts.append("analyze")
        if not self.plan_cache:
            parts.append("no-plancache")
        if self.constant_parameterization:
            parts.append("constparam")
        return "+".join(parts) if parts else "default"

    def cache_key(self) -> tuple:
        """The canonical plan-cache key contribution of these options.

        Excludes ``label`` (cosmetic), ``plan_cache`` (whether to consult
        the cache, not what to compile), ``constant_parameterization``
        (already folded into the statement fingerprint, so an explicitly
        parameterized query and an auto-parameterized one share a plan)
        and ``analyze`` (a runtime switch — the compiled plan is the same,
        so analyzed executions reuse plans cached by unanalyzed ones).
        """
        return tuple(
            getattr(self, name) for name in self.__slots__
            if name not in ("label", "plan_cache",
                            "constant_parameterization", "analyze"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<CompileOptions %s>" % self.describe()
