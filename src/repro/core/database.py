"""The Database facade: Corona + Core wired together.

Creates the registries for every extension point the paper names:

- data types (``register_type``),
- scalar / aggregate / table / set-predicate functions,
- storage managers and access methods (Core's attachment architecture),
- table operations (e.g. enabling LEFT OUTER JOIN),
- query rewrite rules and rule classes,
- STARs / plan-generator alternatives,
- join kinds for the execution system.

``execute`` runs one Hydrogen statement (autocommit unless a transaction is
supplied); ``compile`` returns a reusable compiled statement; ``explain``
renders QGM (before/after rewrite) and the chosen plan.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.access.attachment import Attachment
from repro.catalog.catalog import Catalog
from repro.catalog.schema import ColumnDef, IndexDef, TableDef, ViewDef
from repro.datatypes.registry import TypeRegistry
from repro.datatypes.types import DataType
from repro.errors import ExecutionError, SemanticError
from repro.executor.context import ExecutionContext
from repro.executor.kinds import default_join_kinds
from repro.executor.run import execute_plan
from repro.functions.builtins import register_builtins
from repro.functions.registry import (
    AggregateFunction,
    FunctionRegistry,
    ScalarFunction,
    SetPredicateFunction,
    TableFunction,
)
from repro.language import ast
from repro.language.parser import parse_statement
from repro.obs.metrics import MetricsRegistry
from repro.optimizer.boxopt import OptimizerSettings
from repro.optimizer.stars import STAR, Alternative, default_star_array
from repro.core.options import CompileOptions
from repro.core.pipeline import CompiledStatement, compile_statement
from repro.core.plancache import (
    Fingerprint,
    PlanCache,
    Prepared,
    fingerprint_statement,
    prepare_statement,
)
from repro.errors import LexerError
from repro.storage.engine import StorageEngine


class Settings:
    """Per-database behaviour switches."""

    def __init__(self):
        #: Query rewrite can be "bypassed for faster query compilation at
        #: the expense of potentially lower runtime performance" (Fig. 1).
        self.rewrite_enabled = True
        #: "default" (one forward-chaining pass) or "search" (budgeted
        #: cost-driven exploration of alternative firing sequences).
        self.rewrite_strategy = "default"
        self.optimizer = OptimizerSettings()
        #: Validate QGM after parse and rewrite (debug aid; cheap).
        self.validate_qgm = True
        #: Plan refinement compiles subquery-free expressions to closures.
        self.compile_expressions = True
        #: Execution backend: "tuple" (stream interpreter), "batch"
        #: (vectorized where supported), "compiled" (pipeline-fusion
        #: codegen where fusable), or "auto" (refinement decides per
        #: subtree).
        self.execution_mode = "tuple"
        #: Rows per batch for the vectorized backend.
        self.batch_size = 1024
        #: Serve repeated statements from the plan cache ("the result of
        #: the compilation stage can be stored for future use").
        self.plan_cache_enabled = True
        #: Maximum number of cached plans (LRU beyond that).
        self.plan_cache_capacity = 512
        #: Auto-parameterize top-level comparison literals at fingerprint
        #: time (off by default: ad-hoc queries keep literal-aware plans).
        self.constant_parameterization = False
        #: Intra-query parallelism: "off", "auto" (cost-gated) or "on"
        #: (parallelize every eligible subtree).  Requires the fork start
        #: method; degrades to serial execution elsewhere.
        self.parallelism = "off"
        #: Degree of parallelism for Exchange operators.
        self.dop = 4

    def compile_options(self) -> CompileOptions:
        """Snapshot these settings as a :class:`CompileOptions` value."""
        return CompileOptions.from_settings(self)


class Result:
    """The outcome of one statement."""

    def __init__(self, columns: Sequence[str],
                 rows: List[Tuple[Any, ...]],
                 rowcount: Optional[int] = None,
                 timings=None, stats=None, profile=None):
        self.columns = list(columns)
        self.rows = rows
        self.rowcount = rowcount if rowcount is not None else len(rows)
        self.timings = timings
        self.stats = stats
        #: Per-operator runtime probes (:class:`repro.obs.PlanProfile`)
        #: when the statement ran with ``options.analyze``; None otherwise.
        self.profile = profile

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ExecutionError(
                "scalar() needs exactly one row and one column, got %dx%d"
                % (len(self.rows), len(self.columns)))
        return self.rows[0][0]

    def first(self) -> Optional[Tuple[Any, ...]]:
        return self.rows[0] if self.rows else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Result %d row(s), columns=%s>" % (len(self.rows),
                                                   self.columns)


class Database:
    """One Starburst-reproduction database instance."""

    def __init__(self, pool_capacity: int = 256):
        self.catalog = Catalog()
        self.types = TypeRegistry.with_builtins()
        self.functions = register_builtins(FunctionRegistry())
        self.engine = StorageEngine(self.catalog, pool_capacity=pool_capacity)
        self.join_kinds = default_join_kinds()
        #: Enabled table operations (DBC extensions, e.g. left_outer_join).
        self.operations: set = set()
        self.settings = Settings()
        self.plan_cache = PlanCache(self.settings.plan_cache_capacity)
        self.stars = default_star_array()
        # The rewrite engine is attached lazily to avoid a hard dependency
        # cycle; repro.rewrite installs the default rule set.
        from repro.rewrite.engine import RewriteEngine
        from repro.rewrite.rules import install_default_rules

        self.rewrite_engine = RewriteEngine(self)
        install_default_rules(self.rewrite_engine)
        #: Lazily created morsel-parallel worker-pool manager.
        self._parallel_runtime = None
        self._parallel_runtime_lock = threading.Lock()
        #: Process-level metrics fed by the execute/serve paths; scrape
        #: with :meth:`metrics_snapshot` or ``metrics.exposition()``.
        self.metrics = MetricsRegistry(prefix="repro_")
        self._m_statements = self.metrics.counter(
            "statements_total", "Statements executed")
        self._m_rows = self.metrics.counter(
            "rows_returned_total", "Rows returned to clients")
        self._m_cache_hits = self.metrics.counter(
            "plan_cache_hits_total", "Plan-cache lookups served")
        self._m_cache_misses = self.metrics.counter(
            "plan_cache_misses_total", "Plan-cache lookups compiled fresh")
        self._m_parallel_fallbacks = self.metrics.counter(
            "parallel_fallbacks_total",
            "Exchanges degraded to serial execution")
        self._m_compile_ms = self.metrics.histogram(
            "compile_ms", "Compile phases wall time (ms)")
        self._m_execute_ms = self.metrics.histogram(
            "execute_ms", "Statement execution wall time (ms)")
        self._m_cache_entries = self.metrics.gauge(
            "plan_cache_entries", "Plans currently cached")
        from repro.executor.parallel import available_cores

        self.metrics.gauge(
            "worker_cores",
            "CPUs available to the parallel worker pool "
            "(sched_getaffinity)").set(available_cores())

    def parallel_runtime(self):
        """The per-database parallel runtime (created on first use)."""
        if self._parallel_runtime is None:
            from repro.executor.parallel import ParallelRuntime

            with self._parallel_runtime_lock:
                if self._parallel_runtime is None:
                    self._parallel_runtime = ParallelRuntime(self)
        return self._parallel_runtime

    def close(self) -> None:
        """Release external resources (the parallel worker pool)."""
        if self._parallel_runtime is not None:
            self._parallel_runtime.close()

    def reinit_locks_after_fork(self) -> None:
        """Replace every lock this instance owns with a fresh one.

        Called by forked snapshot workers (``repro.serve``) right after
        ``fork()``: any parent *thread* could have held one of these
        locks at fork time, and the child inherits it locked with no
        owner to release it.  The child is single-threaded at this point
        so swapping the locks is safe.
        """
        self._parallel_runtime_lock = threading.Lock()
        self.metrics.reinit_locks()
        self.catalog.reinit_locks()
        self.plan_cache.reinit_locks()
        self.engine.pool.reinit_locks()
        self.engine.log.reinit_locks()
        self.engine.locks.reinit_locks()
        from repro.core import plancache
        from repro.executor import codegen

        plancache.reinit_locks()
        codegen.reinit_locks()

    # ==== metrics ===============================================================

    def metrics_snapshot(self) -> dict:
        """Every metric's current value (gauges refreshed first)."""
        self._m_cache_entries.set(len(self.plan_cache))
        return self.metrics.snapshot()

    def metrics_reset(self) -> None:
        """Zero all metrics, keeping registrations."""
        self.metrics.reset()

    # ==== statement execution ===================================================

    def execute(self, sql: str, params: Sequence[Any] = (),
                txn=None,
                options: Optional[CompileOptions] = None,
                tracer=None) -> Result:
        """Parse, compile and run one Hydrogen statement.

        ``options`` overrides the database's settings for this statement
        only (the differential harness compiles one query many ways).
        ``tracer`` is an optional :class:`repro.obs.spans.RequestTrace`;
        when present the cache lookup, compile phases and execution each
        record a span (every site guards ``tracer is not None``).
        """
        stripped = sql.strip()
        if options is None:
            options = self.settings.compile_options()
        if options.plan_cache:
            fingerprint = self._fingerprint(stripped, options)
            if fingerprint is not None and fingerprint.cacheable:
                return self._serve(stripped, fingerprint, options, params,
                                   txn, tracer=tracer)
        statement = parse_statement(stripped)
        if isinstance(statement, ast.ExplainStmt):
            return self._explain_text(stripped, statement=statement,
                                      options=options, tracer=tracer)
        if isinstance(statement, (ast.CreateTableStmt, ast.CreateIndexStmt,
                                  ast.CreateViewStmt, ast.DropStmt)):
            if tracer is not None:
                with tracer.span("ddl", statement=type(statement).__name__):
                    return self._execute_ddl(statement)
            return self._execute_ddl(statement)
        compiled = self._timed_compile(stripped, options, tracer=tracer)
        return self.run_compiled(compiled, params, txn, options=options,
                                 tracer=tracer)

    def _fingerprint(self, sql: str,
                     options: CompileOptions) -> Optional[Fingerprint]:
        try:
            return fingerprint_statement(
                sql,
                parameterize_constants=options.constant_parameterization)
        except LexerError:
            # Unscannable text: let the ordinary compile path raise the
            # error through the usual channel.
            return None

    def _serve(self, sql: str, fingerprint: Fingerprint,
               options: CompileOptions, params: Sequence[Any],
               txn, tracer=None) -> Result:
        """The compile-once-execute-many path shared by ``execute`` (on a
        cacheable statement) and :class:`Prepared`."""
        key = (fingerprint.key, options.cache_key())
        if tracer is not None:
            with tracer.span("plancache.lookup",
                             fingerprint=fingerprint.key[:12]) as span:
                entry = self.plan_cache.lookup(self.catalog, key)
                span.set(hit=entry is not None)
        else:
            entry = self.plan_cache.lookup(self.catalog, key)
        if entry is not None:
            self._m_cache_hits.inc()
            entry.compiled.timings.pipeline = "cached"
            return self.run_compiled(entry.compiled,
                                     fingerprint.recipe.bind(params), txn,
                                     options=options, tracer=tracer)
        self._m_cache_misses.inc()
        if fingerprint.rewritten:
            # Validate the original text before compiling the
            # parameterized form: lifted literals become untyped
            # parameters, so errors that depend on a literal's type
            # (VARCHAR column < 3) would otherwise go undetected.
            # The type class is part of the fingerprint, so every
            # statement sharing this key validates identically.
            if tracer is not None:
                with tracer.span("compile.validate"):
                    compile_statement(self, sql, options=options)
            else:
                compile_statement(self, sql, options=options)
        compiled = self._timed_compile(fingerprint.compile_text(sql),
                                       options, tracer=tracer)
        compiled.timings.pipeline = "compiled"
        # Cost-aware admission: one-off bulk DML executes uncached.
        self.plan_cache.admit(self.catalog, key, compiled)
        return self.run_compiled(compiled,
                                 fingerprint.recipe.bind(params), txn,
                                 options=options, tracer=tracer)

    def prepare(self, sql: str,
                options: Optional[CompileOptions] = None) -> Prepared:
        """Prepare a statement for repeated execution.

            ready = db.prepare("SELECT * FROM parts WHERE partno = ?")
            ready.execute([7])
            ready.execute([9])   # same plan, zero compile phases

        Compilation happens once (eagerly); later ``execute`` calls only
        revalidate the catalog epochs the plan was compiled under.
        """
        if options is None:
            options = self.settings.compile_options()
        return prepare_statement(self, sql.strip(), options)

    def cache_stats(self) -> dict:
        """Plan-cache counters plus per-entry hit/invalidation detail.

        Includes the codegen backend's cross-statement pipeline cache
        under ``codegen``: generated pipeline functions are keyed by
        their source text (a structural fingerprint), so ``hits`` counts
        pipelines that reused a code object compiled for a structurally
        identical pipeline — possibly from a different statement.
        """
        stats = self.plan_cache.stats(self.catalog)
        from repro.executor.codegen import codegen_cache_stats

        stats["codegen"] = codegen_cache_stats()
        return stats

    def compile(self, sql: str,
                options: Optional[CompileOptions] = None,
                trace=None) -> CompiledStatement:
        """Compile without executing (compilation is storable/reusable).

        ``trace`` is an optional :class:`repro.obs.Trace` that collects
        rewrite firings and optimizer decisions during this compile.
        """
        return self._timed_compile(sql.strip(), options, trace=trace)

    def _timed_compile(self, sql: str,
                       options: Optional[CompileOptions],
                       trace=None, tracer=None) -> CompiledStatement:
        if tracer is not None:
            # Record a compile span whose children are the Figure-1
            # phases, bridged from the pipeline's TraceEvent phase
            # events (a Trace is supplied just for the bridge when the
            # caller didn't ask for one).
            from repro.obs.spans import bridge_phase_events
            from repro.obs.trace import Trace

            bridge = trace if trace is not None else Trace()
            with tracer.span("compile") as span:
                compiled = compile_statement(self, sql, options=options,
                                             trace=bridge)
            bridge_phase_events(span, bridge, compiled.timings)
        else:
            compiled = compile_statement(self, sql, options=options,
                                         trace=trace)
        self._m_compile_ms.observe(compiled.timings.compile_total() * 1e3)
        return compiled

    def run_compiled(self, compiled: CompiledStatement,
                     params: Sequence[Any] = (), txn=None,
                     options: Optional[CompileOptions] = None,
                     tracer=None) -> Result:
        """Execute a compiled statement.

        ``options`` carries this *execution's* runtime switches (today:
        ``analyze``).  A cached plan's ``compiled.options`` reflects the
        compile that produced it — which may have run with a different
        analyze flag, since analyze is excluded from the cache key — so
        callers serving cached plans pass their call-time options here.
        Plan-shaping settings (batch size, parallelism) always come from
        ``compiled.options``: they are baked into the plan.
        """
        run_options = options if options is not None else compiled.options
        started = time.perf_counter()
        ctx = ExecutionContext(self.engine, self.functions, params, txn)
        ctx.join_kinds = self.join_kinds
        ctx.compiled = compiled
        profile = None
        if run_options is not None and run_options.analyze \
                and compiled.plan is not None:
            from repro.obs.profile import PlanProfile

            profile = PlanProfile(compiled.plan)
            ctx.profile = profile
        if compiled.options is not None:
            ctx.batch_size = compiled.options.batch_size
            if compiled.options.parallelism != "off":
                from repro.executor.parallel import (
                    available_cores, disabled_reason, fork_available)

                if fork_available():
                    ctx.parallel = self.parallel_runtime()
                    cores = available_cores()
                    if compiled.options.dop > cores:
                        # Informational, not a fallback: the pool runs,
                        # sized down to the affinity mask.
                        ctx.stats.parallel_reasons.append(
                            "requested dop=%d exceeds %d available "
                            "core(s); pool clamped to %d"
                            % (compiled.options.dop, cores, cores))
                else:
                    ctx.stats.parallel_fallbacks += 1
                    ctx.stats.parallel_reasons.append(disabled_reason())
        exec_span = None
        if tracer is not None:
            ctx.trace = tracer
            exec_span = tracer.begin("execute")
        own_txn = None
        if txn is None and not compiled.is_query:
            own_txn = self.engine.begin()
            ctx.txn = own_txn
        try:
            rows = list(execute_plan(compiled.plan, ctx))
        except BaseException:
            if own_txn is not None:
                self.engine.abort(own_txn)
            if exec_span is not None:
                exec_span.set(error=True)
                tracer.end(exec_span)
            raise
        if own_txn is not None:
            self.engine.commit(own_txn)
        compiled.timings.execute = time.perf_counter() - started
        if exec_span is not None:
            exec_span.set(rows=len(rows))
            if profile is not None:
                # One identifier from wire to operator: the profile (and
                # its EXPLAIN ANALYZE rendering) carries the trace_id,
                # and the execute span points back at the profile.
                profile.trace_id = tracer.trace_id
                exec_span.set(profiled_ops=len(profile._probes))
            tracer.end(exec_span)
        visible = compiled.qgm.visible_columns if compiled.qgm else None
        if visible is not None:
            rows = [row[:visible] for row in rows]
        self._m_statements.inc()
        self._m_rows.inc(len(rows))
        self._m_execute_ms.observe(compiled.timings.execute * 1e3)
        if ctx.stats.parallel_fallbacks:
            self._m_parallel_fallbacks.inc(ctx.stats.parallel_fallbacks)
        return Result(compiled.output_columns(), rows,
                      rowcount=ctx.rowcount, timings=compiled.timings,
                      stats=ctx.stats, profile=profile)

    def begin(self):
        """Start an explicit transaction (pass it to execute)."""
        return self.engine.begin()

    def commit(self, txn) -> None:
        self.engine.commit(txn)

    def rollback(self, txn) -> None:
        self.engine.abort(txn)

    # ==== EXPLAIN ==================================================================

    def explain(self, sql: str,
                options: Optional[CompileOptions] = None,
                analyze: bool = False,
                trace: bool = False,
                tracer=None) -> str:
        """QGM before/after rewrite plus the chosen plan, as text.

        ``options`` (e.g. a non-default ``execution_mode``) flows through
        the whole pipeline, so the rendered plan shows exactly what that
        configuration would run — including per-node backend marks.

        ``analyze`` executes the statement and renders the plan annotated
        with actual per-operator rows and time (est-vs-actual).
        ``trace`` appends the structured compile trace (rewrite firings,
        optimizer decisions); with ``analyze`` it also forces a fresh
        compile, since a cache hit has no compile phases to trace.
        """
        from repro.qgm.display import render_qgm

        if analyze:
            return self._explain_analyze(sql, options, trace,
                                         tracer=tracer)

        trace_obj = None
        if trace:
            from repro.obs.trace import Trace

            trace_obj = Trace()
        compiled = self.compile(sql, options=options, trace=trace_obj)
        parts = []
        if compiled.qgm_before_rewrite:
            parts.append("=== QGM (before rewrite) ===")
            parts.append(compiled.qgm_before_rewrite.rstrip())
        parts.append("=== QGM ===")
        parts.append(render_qgm(compiled.qgm).rstrip())
        if compiled.rewrite_report is not None:
            parts.append("=== rewrite: %s ===" % compiled.rewrite_report)
        parts.append("=== plan ===")
        parts.append(compiled.plan.explain())
        parts.append(self._cache_status_line(sql.strip(),
                                             compiled.options))
        if trace_obj is not None:
            parts.append("=== trace (%d event(s)) ===" % len(trace_obj))
            parts.append(trace_obj.render_text())
        return "\n".join(parts) + "\n"

    def _explain_analyze(self, sql: str,
                         options: Optional[CompileOptions],
                         trace: bool, tracer=None) -> str:
        from repro.executor.parallel import available_cores
        from repro.obs.render import render_analyze

        if options is None:
            options = self.settings.compile_options()
        run_options = options if options.analyze \
            else options.replace(analyze=True)

        trace_obj = None
        if trace:
            from repro.obs.trace import Trace

            trace_obj = Trace()
            compiled = self.compile(sql, options=run_options,
                                    trace=trace_obj)
            result = self.run_compiled(compiled, options=run_options,
                                       tracer=tracer)
        else:
            # The normal execute path: cache-aware, so EXPLAIN ANALYZE of
            # a cached statement reports this run's actuals.
            result = self.execute(sql, options=run_options,
                                  tracer=tracer)
        if result.profile is None:
            raise SemanticError(
                "EXPLAIN ANALYZE needs a plan-producing statement")
        text = render_analyze(result.profile, result.timings, result.stats,
                              options=run_options, cores=available_cores())
        if trace_obj is not None:
            text += "\n=== trace (%d event(s)) ===\n" % len(trace_obj)
            text += trace_obj.render_text()
        return text + "\n"

    def _cache_status_line(self, sql: str, options: CompileOptions) -> str:
        """One line of plan-cache status, so EXPLAIN output (and the
        differential repros that embed it) discloses whether an execution
        of this statement would reuse a cached plan."""
        epochs = "schema_epoch=%d, stats_epoch=%d" % (
            self.catalog.schema_epoch, self.catalog.stats_epoch)
        if options is None or not options.plan_cache:
            return "plan: cache off, %s" % epochs
        fingerprint = self._fingerprint(sql, options)
        if fingerprint is None or not fingerprint.cacheable:
            return "plan: not cacheable, %s" % epochs
        entry = self.plan_cache.peek(
            self.catalog, (fingerprint.key, options.cache_key()))
        if entry is None:
            return "plan: not cached, %s" % epochs
        return "plan: cached, epoch=%d, hits=%d, %s" % (
            entry.schema_epoch, entry.hits, epochs)

    def _explain_text(self, sql: str, statement=None,
                      options: Optional[CompileOptions] = None,
                      tracer=None) -> Result:
        inner = sql.strip()
        # strip the leading EXPLAIN keyword (and ANALYZE when present)
        inner = inner[len("explain"):].lstrip()
        analyze = statement is not None and statement.analyze
        if analyze and inner[:len("analyze")].lower() == "analyze":
            inner = inner[len("analyze"):].lstrip()
        text = self.explain(inner, options=options, analyze=analyze,
                            tracer=tracer)
        rows = [(line,) for line in text.rstrip("\n").split("\n")]
        return Result(["plan"], rows)

    # ==== DDL =========================================================================

    def _execute_ddl(self, statement: ast.Statement) -> Result:
        if isinstance(statement, ast.CreateTableStmt):
            self._create_table(statement)
        elif isinstance(statement, ast.CreateIndexStmt):
            self.engine.create_index(IndexDef(
                statement.name, statement.table_name, statement.column_names,
                kind=statement.kind, unique=statement.unique))
        elif isinstance(statement, ast.CreateViewStmt):
            self._create_view(statement)
        elif isinstance(statement, ast.DropStmt):
            if statement.kind == "table":
                self.engine.drop_table(statement.name)
            elif statement.kind == "view":
                self.catalog.drop_view(statement.name)
            else:
                self.engine.drop_index(statement.name)
        return Result([], [], rowcount=0)

    def _create_table(self, statement: ast.CreateTableStmt) -> None:
        columns = []
        primary_key = list(statement.primary_key or [])
        for spec in statement.columns:
            dtype = self.types.lookup(spec.type_name, spec.type_length)
            columns.append(ColumnDef(spec.name, dtype,
                                     nullable=not spec.not_null))
            if spec.primary_key:
                primary_key.append(spec.name)
        table = TableDef(statement.name, columns,
                         storage_manager=statement.storage_manager or "heap",
                         site=statement.site or "local",
                         primary_key=primary_key or None,
                         partition_by=statement.partition_by,
                         partitions=statement.partitions or 0)
        self.engine.create_table(table)
        if primary_key:
            self.engine.create_index(IndexDef(
                "pk_%s" % table.name, table.name, primary_key,
                kind="btree", unique=True))
        for index, check in enumerate(statement.checks +
                                      [s.check for s in statement.columns
                                       if s.check is not None]):
            self._attach_check(table, check, index)

    def _attach_check(self, table: TableDef, check_ast: ast.Expr,
                      number: int) -> None:
        """Compile a CHECK expression into a constraint attachment."""
        from repro.access.constraints import CheckConstraint
        from repro.executor.evaluator import Evaluator
        from repro.language.translator import Scope, SourceBinding, Translator
        from repro.qgm.model import QGM as QGMGraph

        translator = Translator(self)
        translator.qgm = QGMGraph()
        base = translator.qgm.base_table(table)
        quantifier = translator.qgm.new_quantifier("F", base,
                                                   name=table.name)
        scope = Scope()
        scope.define(table.name, SourceBinding(quantifier))
        expr = translator._translate_expr(check_ast, None, scope,
                                          allow_aggregates=False)

        def predicate(named_row: dict) -> Optional[bool]:
            ctx = ExecutionContext(self.engine, self.functions)
            row = tuple(named_row[c.name] for c in table.columns)
            return Evaluator(ctx).eval_bool(expr, {quantifier: row})

        self.engine.add_constraint(
            table.name,
            CheckConstraint(table, predicate,
                            name="check_%s_%d" % (table.name, number)))

    def _create_view(self, statement: ast.CreateViewStmt) -> None:
        # Validate the view body now (names, types) by translating it once.
        from repro.language.translator import translate

        translate(statement.query, self)
        self.catalog.create_view(ViewDef(
            statement.name, statement.text, ast=statement.query,
            column_names=statement.column_names))

    # ==== DBC extension API ==============================================================

    def register_type(self, dtype: DataType, replace: bool = False) -> DataType:
        """Externally defined column type."""
        registered = self.types.register(dtype, replace=replace)
        self.catalog.bump_schema_epoch()
        return registered

    def register_scalar_function(self, name: str, fn, return_type,
                                 arity: Optional[int] = None,
                                 min_arity: Optional[int] = None,
                                 max_arity: Optional[int] = None,
                                 handles_null: bool = False) -> ScalarFunction:
        function = self.functions.register_scalar(ScalarFunction(
            name, fn, return_type, arity=arity, min_arity=min_arity,
            max_arity=max_arity, handles_null=handles_null))
        self.catalog.bump_schema_epoch()
        return function

    def register_aggregate_function(self, name: str, factory,
                                    return_type) -> AggregateFunction:
        function = self.functions.register_aggregate(
            AggregateFunction(name, factory, return_type))
        self.catalog.bump_schema_epoch()
        return function

    def register_table_function(self, name: str, fn,
                                table_inputs: int = 1) -> TableFunction:
        function = self.functions.register_table_function(
            TableFunction(name, fn, table_inputs=table_inputs))
        self.catalog.bump_schema_epoch()
        return function

    def register_set_predicate(self, name: str, combine,
                               quantifier_type: Optional[str] = None
                               ) -> SetPredicateFunction:
        function = self.functions.register_set_predicate(
            SetPredicateFunction(name, combine,
                                 quantifier_type=quantifier_type))
        self.catalog.bump_schema_epoch()
        return function

    def register_storage_manager(self, name: str, factory,
                                 replace: bool = False) -> None:
        self.engine.storage_managers.register(name, factory, replace=replace)
        self.catalog.bump_schema_epoch()

    def register_access_method(self, kind: str, factory,
                               replace: bool = False) -> None:
        self.engine.access_methods_registry.register(kind, factory,
                                                     replace=replace)
        self.catalog.bump_schema_epoch()

    def add_constraint(self, table_name: str,
                       constraint: Attachment) -> Attachment:
        return self.engine.add_constraint(table_name, constraint)

    def enable_operation(self, name: str) -> None:
        """Enable a DBC table operation (e.g. 'left_outer_join')."""
        self.operations.add(name)
        self.catalog.bump_schema_epoch()

    def register_rewrite_rule(self, rule, rule_class: str = "user") -> None:
        self.rewrite_engine.add_rule(rule, rule_class)
        self.catalog.bump_schema_epoch()

    def register_star(self, star: STAR, replace: bool = False) -> None:
        if star.name in self.stars and not replace:
            raise SemanticError("STAR %s already defined" % star.name)
        self.stars[star.name] = star
        self.catalog.bump_schema_epoch()

    def add_star_alternative(self, star_name: str,
                             alternative: Alternative) -> None:
        self.stars[star_name].alternatives.append(alternative)
        self.catalog.bump_schema_epoch()

    def register_join_kind(self, kind, replace: bool = False) -> None:
        self.join_kinds.register(kind, replace=replace)
        self.catalog.bump_schema_epoch()

    # ==== maintenance ====================================================================

    def analyze(self, table_name: Optional[str] = None) -> None:
        """Recompute exact statistics (RUNSTATS)."""
        if table_name is not None:
            self.engine.recompute_statistics(table_name)
            return
        for table in self.catalog.tables():
            self.engine.recompute_statistics(table.name)
