"""The compile pipeline: the phases of Figure 1.

    query text → tokens → parse (+ semantic analysis) → QGM
               → query rewrite → plan optimization → plan refinement
               → execution

Compilation and execution are separate stages: a
:class:`CompiledStatement` can be kept and executed many times with
different parameters ("the result of the compilation stage can be stored
for future use").  ``PhaseTimings`` records per-phase wall-clock time so
benchmark F1 can regenerate the figure as a measured table.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.core.options import CompileOptions
from repro.errors import SemanticError
from repro.language import ast
from repro.language.parser import parse_statement
from repro.language.translator import translate
from repro.optimizer.boxopt import Optimizer
from repro.optimizer.plans import PlanOp
from repro.qgm.model import QGM
from repro.qgm.validate import validate_qgm


class PhaseTimings:
    """Seconds spent in each compile phase (Figure 1 reproduction)."""

    __slots__ = ("parse", "rewrite", "optimize", "refine", "codegen",
                 "execute", "pipeline")

    def __init__(self):
        self.parse = 0.0
        self.rewrite = 0.0
        self.optimize = 0.0
        self.refine = 0.0
        #: Pipeline-fusion code generation (execution_mode "compiled" /
        #: "auto"): emitting and ``compile()``ing the fused per-pipeline
        #: functions.  Paid once per cached plan.
        self.codegen = 0.0
        self.execute = 0.0
        #: How the plan reached the executor: "compiled" for a fresh run
        #: of the Figure-1 phases, "cached" when the plan cache served it
        #: (EXPLAIN and benchmarks render the latter as ``(cached)``).
        self.pipeline = "compiled"

    def compile_total(self) -> float:
        return (self.parse + self.rewrite + self.optimize + self.refine
                + self.codegen)

    def as_dict(self) -> dict:
        return {
            "parse": self.parse,
            "rewrite": self.rewrite,
            "optimize": self.optimize,
            "refine": self.refine,
            "codegen": self.codegen,
            "execute": self.execute,
            "pipeline": self.pipeline,
        }


class CompiledStatement:
    """A compiled query: QGM snapshots, the plan, and phase timings."""

    def __init__(self, text: str, statement: ast.Statement,
                 qgm: Optional[QGM], plan: Optional[PlanOp],
                 timings: PhaseTimings,
                 qgm_before_rewrite: Optional[str] = None,
                 rewrite_report=None):
        self.text = text
        self.statement = statement
        self.qgm = qgm
        self.plan = plan
        self.timings = timings
        self.qgm_before_rewrite = qgm_before_rewrite
        self.rewrite_report = rewrite_report
        self.options: Optional[CompileOptions] = None
        self.refiner = None
        #: Relation names (base tables and expanded views) this statement
        #: ranges over — the plan cache's invalidation dependency set.
        self.dependencies: frozenset = frozenset()

    @property
    def is_query(self) -> bool:
        from repro.qgm.model import DeleteBox, InsertBox, UpdateBox

        if self.qgm is None or self.qgm.root is None:
            return False
        return not isinstance(self.qgm.root,
                              (InsertBox, UpdateBox, DeleteBox))

    def output_columns(self) -> List[str]:
        if self.qgm is None or self.qgm.root is None:
            return []
        names = self.qgm.root.head.column_names()
        if self.qgm.visible_columns is not None:
            names = names[: self.qgm.visible_columns]
        return names


def compile_statement(db, text: str, validate: Optional[bool] = None,
                      options: Optional[CompileOptions] = None,
                      trace=None) -> CompiledStatement:
    """Run the compile-time phases against a database's registries.

    ``options`` carries the whole pipeline configuration; when omitted it
    is snapshotted from ``db.settings``.  ``validate`` (kept for backward
    compatibility) overrides ``options.validate_qgm`` when given.
    ``trace`` is an optional :class:`repro.obs.Trace` collecting rewrite
    firings and optimizer decisions as structured events.
    """
    from repro.qgm.display import render_qgm

    if options is None:
        options = CompileOptions.from_settings(db.settings)
    if validate is not None and validate != options.validate_qgm:
        options = options.replace(validate_qgm=validate)

    timings = PhaseTimings()

    started = time.perf_counter()
    statement = parse_statement(text)
    if isinstance(statement, ast.ExplainStmt):
        raise SemanticError("EXPLAIN must be handled by Database.execute")
    if _is_ddl(statement):
        timings.parse = time.perf_counter() - started
        return CompiledStatement(text, statement, None, None, timings)
    qgm = translate(statement, db)
    if options.validate_qgm:
        validate_qgm(qgm)
    # Dependency extraction happens before rewrite: view merging may erase
    # range edges, and a superset of the post-rewrite dependencies is the
    # conservative (correct) invalidation set.
    dependencies = _qgm_dependencies(qgm)
    timings.parse = time.perf_counter() - started

    qgm_before = None
    rewrite_report = None
    started = time.perf_counter()
    if options.rewrite_enabled and db.rewrite_engine is not None:
        qgm_before = render_qgm(qgm)
        rewrite_report = db.rewrite_engine.run(
            qgm, trace=trace,
            only_rules=options.rewrite_only_rules,
            strategy=options.rewrite_strategy,
            optimizer_settings=options.optimizer_settings())
        if options.validate_qgm:
            validate_qgm(qgm)
    timings.rewrite = time.perf_counter() - started
    if trace is not None:
        trace.event("phase", name="rewrite", seconds=timings.rewrite,
                    fired=(rewrite_report.fired
                           if rewrite_report is not None else 0))

    started = time.perf_counter()
    optimizer = Optimizer(db.catalog, engine=db.engine,
                          settings=options.optimizer_settings(),
                          functions=db.functions,
                          stars=db.stars,
                          trace=trace)
    plan = optimizer.optimize(qgm)
    timings.optimize = time.perf_counter() - started
    if trace is not None:
        trace.event("phase", name="optimize", seconds=timings.optimize)

    # Plan refinement (QEP → executable QEP): verify every operator has an
    # interpreter and compile subquery-free expressions to closures (the
    # [FREY86] compilation the paper points at).
    started = time.perf_counter()
    _refine_check(plan)
    refiner = None
    if options.compile_expressions:
        from repro.executor.compiled import refine_plan

        refiner = refine_plan(plan, db.functions)
    if options.execution_mode != "tuple":
        # Backend selection is a refinement too: the ExecBackend STAR
        # marks each subtree for the vectorized engine where supported;
        # the codegen selector additionally offers the fused backend for
        # whole pipelines (and attaches the batch closures it can always
        # fall back to).
        if options.execution_mode in ("compiled", "auto"):
            from repro.executor.codegen import select_backends
        else:
            from repro.executor.vectorized import select_backends

        select_backends(plan, optimizer.generator, db.functions,
                        db.join_kinds, options)
    if options.parallelism != "off":
        # Parallel glue: the Parallelism STAR splices Exchange LOLEPOPs
        # over eligible subtrees (morsel-parallel scan pyramids).
        from repro.optimizer.stars import parallelize_plan

        plan = parallelize_plan(plan, optimizer.generator, options)
    timings.refine = time.perf_counter() - started
    if trace is not None:
        trace.event("phase", name="refine", seconds=timings.refine)

    if options.execution_mode in ("compiled", "auto") and plan is not None:
        # Program generation runs after the parallel glue: exchange
        # splices reshape the tree, and regions they break demote to the
        # batch engine here rather than fusing a stale shape.
        from repro.executor.codegen import generate_programs

        started = time.perf_counter()
        pipelines = generate_programs(plan, db.functions, options,
                                      trace=trace)
        timings.codegen = time.perf_counter() - started
        if trace is not None:
            trace.event("phase", name="codegen", seconds=timings.codegen,
                        pipelines=pipelines)

    compiled = CompiledStatement(text, statement, qgm, plan, timings,
                                 qgm_before, rewrite_report)
    compiled._optimizer = optimizer  # for EXPLAIN / benchmarks
    compiled.options = options
    compiled.refiner = refiner
    compiled.dependencies = dependencies
    return compiled


def _qgm_dependencies(qgm: QGM) -> frozenset:
    """Relation names the query ranges over, read off the QGM range edges:
    base-table boxes, DML target tables, and expanded view names (the
    translator annotates the box it built for each view reference)."""
    names = set()
    for box in qgm.boxes:
        table = getattr(box, "table", None)
        if table is not None:
            names.add(table.name)
        view_name = box.annotations.get("view")
        if view_name:
            names.add(view_name)
    return frozenset(names)


def _refine_check(plan: PlanOp) -> None:
    """Verify every operator in the plan has an interpreter (QEP → QEP)."""
    from repro.executor.run import _ENV_OPS, _ROW_OPS

    for node in plan.walk():
        if type(node) not in _ROW_OPS and type(node) not in _ENV_OPS:
            raise SemanticError(
                "plan operator %s has no interpreter" % node.op_name)


def _is_ddl(statement: ast.Statement) -> bool:
    return isinstance(statement, (ast.CreateTableStmt, ast.CreateIndexStmt,
                                  ast.CreateViewStmt, ast.DropStmt))
