"""Corona: the language processor facade.

:class:`~repro.core.database.Database` is the public entry point: it owns
the catalog, the Core storage engine, the registries for every DBC
extension point, and the compile pipeline (parse → QGM → rewrite → optimize
→ execute) of the paper's Figure 1.
"""

from repro.core.database import Database, Result
from repro.core.options import CompileOptions
from repro.core.pipeline import CompiledStatement, PhaseTimings

__all__ = ["Database", "Result", "CompileOptions", "CompiledStatement",
           "PhaseTimings"]
