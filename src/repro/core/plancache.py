"""Compile-once-execute-many: the parameterized plan cache.

The paper separates compilation from execution precisely so that "the
result of the compilation stage can be stored for future use"; this module
is that store.  Three pieces:

- :func:`fingerprint_statement` — a canonical key for a statement text,
  computed from the lexer's token stream so whitespace, comments, keyword
  case and ``?`` vs ``:name`` marker style all map to one entry.  With
  ``parameterize_constants`` it additionally lifts top-level comparison
  literals into synthetic parameters (``WHERE id = 7`` and ``WHERE id = 9``
  share a plan), recording a :class:`BindingRecipe` that interleaves user
  parameters and extracted constants back into one parameter vector.

- :class:`PlanCache` — an LRU of :class:`CacheEntry` objects keyed on
  (statement fingerprint, canonical ``CompileOptions`` hash).  Entries
  record the catalog epochs and per-relation dependency set they were
  compiled under; a schema-epoch change drops dependent entries, a
  statistics-epoch change forces a recompile of exactly the plans whose
  dependency set intersects the changed tables.

- :class:`Prepared` — the serving path: ``Database.prepare(sql)``
  fingerprints and compiles once, ``Prepared.execute(params)`` skips even
  tokenization on every subsequent call and revalidates only the epochs.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, SemanticError
from repro.language.lexer import KEYWORDS, Token, TokenType, tokenize

#: Comparison operators whose literal operands auto-parameterization lifts.
_COMPARISONS = frozenset(("=", "<>", "!=", "<", "<=", ">", ">="))

#: First keywords of statements the cache must not serve: DDL changes the
#: world the cache indexes, and EXPLAIN is a meta-statement.
_UNCACHEABLE_HEADS = frozenset(("create", "drop", "explain"))


class BindingRecipe:
    """How to build the executed parameter vector for a normalized text.

    One step per parameter marker in the normalized statement, in textual
    order: ``("user", i)`` takes the caller's *i*-th parameter, while
    ``("const", value)`` re-binds a literal that auto-parameterization
    lifted out of the text.
    """

    __slots__ = ("steps", "user_params")

    def __init__(self, steps: Sequence[Tuple[str, Any]]):
        self.steps = tuple(steps)
        self.user_params = sum(1 for kind, _ in steps if kind == "user")

    @property
    def identity(self) -> bool:
        return self.user_params == len(self.steps)

    def bind(self, params: Sequence[Any]) -> Sequence[Any]:
        """Merge user parameters and extracted constants."""
        if self.identity:
            return params
        merged: List[Any] = []
        for kind, value in self.steps:
            merged.append(params[value] if kind == "user" else value)
        return merged


class Fingerprint:
    """The cache-relevant identity of one statement text."""

    __slots__ = ("key", "cacheable", "recipe", "_tokens", "_rewritten")

    def __init__(self, key: str, cacheable: bool, recipe: BindingRecipe,
                 tokens: Optional[List[Token]], rewritten: bool):
        self.key = key
        self.cacheable = cacheable
        self.recipe = recipe
        self._tokens = tokens
        self._rewritten = rewritten

    @property
    def rewritten(self) -> bool:
        """Did auto-parameterization substitute literals?  When true, a
        cold compile must *validate* the original text first (see
        ``Database._serve``): parameters are untyped, so compile-time
        errors that hinge on a literal's type would otherwise vanish."""
        return self._rewritten

    def compile_text(self, original: str) -> str:
        """The text to hand the compiler: the original statement unless
        auto-parameterization substituted literals, in which case the
        normalized rendering (literals replaced by ``?``)."""
        if not self._rewritten:
            return original
        return _render(self._tokens)


#: Statement-text → Fingerprint memo.  Fingerprinting is a pure function
#: of (text, parameterize_constants) — no catalog state — so one global
#: LRU is safe across Database instances, and it keeps the serving path
#: from re-tokenizing a hot statement on every execution.
_FINGERPRINT_MEMO: "OrderedDict[Tuple[str, bool], Fingerprint]" = \
    OrderedDict()
_FINGERPRINT_MEMO_CAPACITY = 2048
#: Serving sessions fingerprint concurrently; the memo's LRU reorder and
#: trim are multi-step and need the lock (fingerprints themselves are
#: immutable, so returning one outside the lock is safe).
_FINGERPRINT_LOCK = threading.Lock()


def reinit_locks() -> None:
    """Fresh module lock after ``fork()`` (a parent thread may have held
    the old one at fork time)."""
    global _FINGERPRINT_LOCK
    _FINGERPRINT_LOCK = threading.Lock()


def fingerprint_statement(sql: str,
                          parameterize_constants: bool = False
                          ) -> Fingerprint:
    """Fingerprint one statement off the lexer's token stream.

    May raise :class:`repro.errors.LexerError` on unscannable input — the
    caller falls back to the ordinary compile path, which reports the
    error through the usual channel.
    """
    memo_key = (sql, parameterize_constants)
    with _FINGERPRINT_LOCK:
        memoized = _FINGERPRINT_MEMO.get(memo_key)
        if memoized is not None:
            _FINGERPRINT_MEMO.move_to_end(memo_key)
            return memoized
    fingerprint = _fingerprint_uncached(sql, parameterize_constants)
    with _FINGERPRINT_LOCK:
        _FINGERPRINT_MEMO[memo_key] = fingerprint
        while len(_FINGERPRINT_MEMO) > _FINGERPRINT_MEMO_CAPACITY:
            _FINGERPRINT_MEMO.popitem(last=False)
    return fingerprint


def _fingerprint_uncached(sql: str,
                          parameterize_constants: bool) -> Fingerprint:
    tokens = tokenize(sql)
    body = [t for t in tokens if t.type is not TokenType.EOF]
    while body and body[-1].type is TokenType.PUNCT and body[-1].text == ";":
        body.pop()
    head = body[0] if body else None
    cacheable = (head is not None
                 and not (head.type is TokenType.KEYWORD
                          and head.text in _UNCACHEABLE_HEADS))

    stream: List[Tuple[str, str]] = []
    steps: List[Tuple[str, Any]] = []
    normalized: List[Token] = []
    user_index = 0
    rewritten = False
    for position, token in enumerate(body):
        if token.type is TokenType.PARAM:
            stream.append(("param", "?"))
            steps.append(("user", user_index))
            user_index += 1
            normalized.append(token)
            continue
        if (parameterize_constants and cacheable
                and token.type in (TokenType.NUMBER, TokenType.STRING)
                and _is_comparison_operand(body, position)):
            # The literal's *type class* stays in the key: `id = 7` and
            # `id = 9` share a plan, but `c < 3` and `c < 'x'` must not —
            # whether the statement even type-checks depends on it.
            stream.append(("param", type(token.value).__name__))
            steps.append(("const", token.value))
            normalized.append(Token(TokenType.PARAM, "?", None,
                                    token.line, token.column))
            rewritten = True
            continue
        normalized.append(token)
        if token.type is TokenType.NUMBER:
            # Hash the value, not the spelling: 1.0 and 1.00 are the same
            # DOUBLE (but 1 stays INTEGER — repr keeps the type apart).
            stream.append(("num", repr(token.value)))
        elif token.type is TokenType.STRING:
            stream.append(("str", token.value))
        elif token.type is TokenType.OPERATOR:
            stream.append(("op", "<>" if token.text == "!=" else token.text))
        elif token.type is TokenType.KEYWORD:
            stream.append(("kw", token.text))
        elif token.type is TokenType.IDENT:
            stream.append(("id", token.value))
        else:
            stream.append(("punct", token.text))

    digest = hashlib.sha256(repr(stream).encode("utf-8")).hexdigest()
    return Fingerprint(digest, cacheable, BindingRecipe(steps),
                       normalized if rewritten else None, rewritten)


def _is_comparison_operand(tokens: List[Token], position: int) -> bool:
    """Is the literal at ``position`` a direct operand of a comparison?

    Literal-vs-literal comparisons are left alone (the rewrite engine
    folds them), as is a literal preceded by unary minus (it is not the
    comparison's direct operand at the token level)."""
    before = tokens[position - 1] if position > 0 else None
    after = tokens[position + 1] if position + 1 < len(tokens) else None
    literalish = (TokenType.NUMBER, TokenType.STRING)
    if before is not None and before.type is TokenType.OPERATOR \
            and before.text in _COMPARISONS:
        two_back = tokens[position - 2] if position > 1 else None
        if two_back is None or two_back.type not in literalish:
            return True
    if after is not None and after.type is TokenType.OPERATOR \
            and after.text in _COMPARISONS:
        two_ahead = tokens[position + 2] \
            if position + 2 < len(tokens) else None
        if two_ahead is None or two_ahead.type not in literalish:
            return True
    return False


_IDENT_OK = frozenset("abcdefghijklmnopqrstuvwxyz0123456789_")


def _render(tokens: Sequence[Token]) -> str:
    """Render a token list back to parseable Hydrogen text."""
    parts: List[str] = []
    for token in tokens:
        if token.type is TokenType.PARAM:
            parts.append("?")
        elif token.type is TokenType.STRING:
            parts.append("'%s'" % token.value.replace("'", "''"))
        elif token.type is TokenType.IDENT:
            text = token.value
            plain = (text and text[0].isalpha() and not text[0].isupper()
                     and all(ch in _IDENT_OK for ch in text)
                     and text not in KEYWORDS)
            parts.append(text if plain else '"%s"' % text)
        else:
            parts.append(token.text)
    return " ".join(parts)


def normalized_text(sql: str) -> str:
    """The statement with *every* literal replaced by ``?`` — the
    display form for statement stats and the slow-query log, which must
    never leak raw constants.  (Fingerprinting lifts only comparison
    operands because only those may bind as typed parameters; display
    text has no such constraint, so VALUES literals are masked too.)

    May raise :class:`repro.errors.LexerError` on unscannable input.
    """
    out: List[Token] = []
    for token in tokenize(sql):
        if token.type is TokenType.EOF:
            continue
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            out.append(Token(TokenType.PARAM, "?", None,
                             token.line, token.column))
        else:
            out.append(token)
    return _render(out)


class CacheEntry:
    """One cached plan plus the world it was compiled against."""

    __slots__ = ("key", "compiled", "dependencies", "schema_epoch",
                 "stats_epoch", "hits", "recompiles")

    def __init__(self, key, compiled, catalog):
        self.key = key
        self.compiled = compiled
        self.dependencies = compiled.dependencies
        self.schema_epoch = catalog.schema_epoch
        self.stats_epoch = catalog.stats_epoch
        self.hits = 0
        self.recompiles = 0

    def schema_valid(self, catalog) -> bool:
        if catalog.schema_floor() > self.schema_epoch:
            return False
        return all(catalog.schema_epoch_of(name) <= self.schema_epoch
                   for name in self.dependencies)

    def stats_valid(self, catalog) -> bool:
        return all(catalog.stats_epoch_of(name) <= self.stats_epoch
                   for name in self.dependencies)

    def describe(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.key[0][:12],
            "options": self.compiled.options.describe()
            if self.compiled.options else "default",
            "statement": self.compiled.text,
            "dependencies": sorted(self.dependencies),
            "schema_epoch": self.schema_epoch,
            "stats_epoch": self.stats_epoch,
            "hits": self.hits,
            "recompiles": self.recompiles,
        }


#: Estimated affected rows beyond which a non-query statement is treated
#: as one-off bulk DML by cache admission.  A bulk INSERT..SELECT or an
#: unqualified UPDATE/DELETE spends its time executing, not compiling;
#: caching its plan saves ~nothing and evicts entries that do repeat.
BULK_DML_CARD_FLOOR = 256.0


class PlanCache:
    """LRU cache of compiled statements with epoch-based invalidation.

    Mutation — the LRU reorder on lookup, eviction on insert, stale-entry
    drops — is guarded by one re-entrant lock so concurrent serving
    sessions can share a cache without losing updates or corrupting the
    OrderedDict.  Entries are immutable once inserted (their per-entry
    counters are plain int bumps), so returning them outside the lock is
    safe.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, CacheEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.schema_invalidations = 0
        self.stats_invalidations = 0
        self.admissions_rejected = 0
        #: Keys dropped for stale statistics, so the replacement entry can
        #: carry a per-entry recompile count.
        self._recompiled_keys: Dict[Tuple, int] = {}

    def reinit_locks(self) -> None:
        """Fresh lock after ``fork()`` (a parent thread may have held the
        old one at fork time)."""
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, catalog, key) -> Optional[CacheEntry]:
        """The serving-path lookup: returns a valid entry or None (counted
        as a miss; stale entries are dropped on the way)."""
        with self._lock:
            entry = self._peek_valid(catalog, key, count=True)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            entry.hits += 1
            return entry

    def peek(self, catalog, key) -> Optional[CacheEntry]:
        """Validity check without touching counters or LRU order (EXPLAIN
        uses this to report cache status without perturbing it)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or not entry.schema_valid(catalog) \
                    or not entry.stats_valid(catalog):
                return None
            return entry

    def _peek_valid(self, catalog, key, count: bool) -> Optional[CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        if not entry.schema_valid(catalog):
            del self._entries[key]
            if count:
                self.schema_invalidations += 1
            return None
        if not entry.stats_valid(catalog):
            # Stale statistics don't make a plan wrong, only possibly
            # slow: drop it so the caller recompiles against fresh costs.
            del self._entries[key]
            if count:
                self.stats_invalidations += 1
                self._recompiled_keys[key] = entry.recompiles + 1
            return None
        return entry

    def admissible(self, compiled) -> bool:
        """Cost-aware admission check.  Queries always qualify; DML
        qualifies only when its estimated affected cardinality is small
        (a parameterized point write that plausibly repeats), keeping
        one-off bulk loads from churning the LRU."""
        if compiled.is_query:
            return True
        plan = compiled.plan
        card = plan.props.card if plan is not None else 0.0
        return card < BULK_DML_CARD_FLOOR

    def admit(self, catalog, key, compiled) -> Optional[CacheEntry]:
        """Insert through the admission policy; None means rejected (the
        caller still executes the compiled statement, uncached)."""
        if not self.admissible(compiled):
            with self._lock:
                self.admissions_rejected += 1
            return None
        return self.insert(catalog, key, compiled)

    def insert(self, catalog, key, compiled) -> CacheEntry:
        with self._lock:
            entry = CacheEntry(key, compiled, catalog)
            entry.recompiles = self._recompiled_keys.pop(key, 0)
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self, catalog=None) -> Dict[str, Any]:
        with self._lock:
            report: Dict[str, Any] = {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "schema_invalidations": self.schema_invalidations,
                "stats_invalidations": self.stats_invalidations,
                "admissions_rejected": self.admissions_rejected,
            }
            if catalog is not None:
                report["schema_epoch"] = catalog.schema_epoch
                report["stats_epoch"] = catalog.stats_epoch
            report["per_entry"] = [entry.describe()
                                   for entry in self._entries.values()]
            return report


class Prepared:
    """A prepared statement: fingerprinted once, re-executable forever.

    ``execute`` serves from the database's plan cache; when DDL or a
    statistics refresh invalidates the plan underneath it, the next
    ``execute`` transparently recompiles.
    """

    def __init__(self, db, sql: str, options, fingerprint: Fingerprint):
        self.db = db
        self.sql = sql
        self.options = options
        self._fingerprint = fingerprint
        self._key = (fingerprint.key, options.cache_key())

    @property
    def parameter_count(self) -> int:
        """How many parameter markers the caller must bind."""
        return self._fingerprint.recipe.user_params

    def execute(self, params: Sequence[Any] = (), txn=None):
        recipe = self._fingerprint.recipe
        if len(params) != recipe.user_params:
            raise ExecutionError(
                "prepared statement takes %d parameter(s), got %d"
                % (recipe.user_params, len(params)))
        return self.db._serve(self.sql, self._fingerprint, self.options,
                              params, txn)

    def explain(self) -> str:
        return self.db.explain(self._fingerprint.compile_text(self.sql),
                               options=self.options)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Prepared %r params=%d>" % (self.sql, self.parameter_count)


def prepare_statement(db, sql: str, options) -> Prepared:
    """Build a :class:`Prepared` (see ``Database.prepare``), compiling
    eagerly so bad SQL fails at prepare time, not first execute."""
    fingerprint = fingerprint_statement(
        sql, parameterize_constants=options.constant_parameterization)
    if not fingerprint.cacheable:
        raise SemanticError(
            "cannot prepare DDL or EXPLAIN statements: %r" % sql)
    key = (fingerprint.key, options.cache_key())
    if db.plan_cache.peek(db.catalog, key) is None:
        if fingerprint.rewritten:
            db.compile(sql, options=options)  # type-validate the original
        compiled = db.compile(fingerprint.compile_text(sql), options=options)
        db.plan_cache.insert(db.catalog, key, compiled)
    return Prepared(db, sql, options, fingerprint)
