"""A process-level metrics registry: counters, gauges, histograms.

The registry lives on :class:`repro.core.database.Database` and is fed by
the execute/serve paths (statement counts, compile/execute latency, rows,
plan-cache hits and misses, parallel fallbacks).  ``snapshot()`` returns a
plain dict for programmatic scraping; ``exposition()`` renders the
Prometheus text format so an HTTP handler can serve ``/metrics`` with a
one-liner.  No dependencies; one lock per registry, shared by all its
metrics, because the serving layer updates them from many session
threads at once (``value += amount`` is a read-modify-write and loses
updates without it).  Forked snapshot workers call
:meth:`MetricsRegistry.reinit_locks` because a parent thread may hold
the lock at fork time.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: Default latency buckets, in milliseconds (also fine for row counts —
#: callers pass their own buckets when the shape differs).
DEFAULT_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
                   100.0, 250.0, 500.0, 1000.0, 2500.0)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help_text: str = "",
                 lock: Optional[threading.Lock] = None):
        self.name = name
        self.help = help_text
        self.value = 0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; got %r" % (amount,))
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self):
        return self.value


class Gauge:
    """A value that goes up and down (pool sizes, cache entries)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help_text: str = "",
                 lock: Optional[threading.Lock] = None):
        self.name = name
        self.help = help_text
        self.value = 0
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self.value -= amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self):
        return self.value


class Histogram:
    """A latency/size distribution with fixed upper-bound buckets.

    ``counts[i]`` is the number of observations <= ``buckets[i]`` and
    > the previous bound (non-cumulative internally; the exposition
    renders the cumulative Prometheus form with a ``+Inf`` bucket).
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "overflow", "sum",
                 "count", "_lock")

    def __init__(self, name: str, help_text: str = "",
                 buckets: Optional[Sequence[float]] = None,
                 lock: Optional[threading.Lock] = None):
        self.name = name
        self.help = help_text
        self.buckets: Tuple[float, ...] = tuple(
            sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not self.buckets:
            raise ValueError("histogram %s needs at least one bucket"
                             % name)
        self.counts = [0] * len(self.buckets)
        self.overflow = 0
        self.sum = 0.0
        self.count = 0
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            if index < len(self.counts):
                self.counts[index] += 1
            else:
                self.overflow += 1
            self.sum += value
            self.count += 1

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * len(self.buckets)
            self.overflow = 0
            self.sum = 0.0
            self.count = 0

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self.counts)
            total = self.count
            total_sum = self.sum
        cumulative = 0
        out = OrderedDict()
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            out[bound] = cumulative
        return {"count": total, "sum": total_sum, "buckets": out}

    def quantile(self, q: float) -> float:
        """Bucket-resolution upper-bound estimate of the ``q``-quantile:
        the smallest bucket bound whose cumulative count covers the
        quantile.  Observations past the last bound clamp to it (the
        estimate is then a lower bound — the tail's true shape is gone).
        Returns 0.0 with no observations."""
        with self._lock:
            total = self.count
            counts = list(self.counts)
        if total == 0:
            return 0.0
        threshold = q * total
        cumulative = 0
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            if cumulative >= threshold:
                return bound
        return self.buckets[-1]


class MetricsRegistry:
    """Named metrics, created on first use and stable thereafter.

    All metrics in one registry share one re-entrant lock (update rates
    are modest, contention is cheaper than a lock per metric, and the
    exposition path can hold it across a consistent render).
    """

    def __init__(self, prefix: str = ""):
        self.prefix = prefix
        self._lock = threading.RLock()
        self._metrics: "OrderedDict[str, object]" = OrderedDict()

    def reinit_locks(self) -> None:
        """Replace the shared lock after ``fork()``: another thread may
        have held it at fork time, leaving the child's copy locked
        forever."""
        self._lock = threading.RLock()
        for metric in self._metrics.values():
            metric._lock = self._lock

    def _register(self, name: str, kind, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, kind):
                    raise ValueError(
                        "metric %s already registered as a %s"
                        % (name, type(metric).kind))
                return metric
            metric = kind(name, lock=self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(name, Counter, help_text=help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(name, Gauge, help_text=help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._register(name, Histogram, help_text=help_text,
                              buckets=buckets)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return list(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """Every metric's current value as a plain dict."""
        with self._lock:
            return {name: metric.snapshot()
                    for name, metric in self._metrics.items()}

    def reset(self) -> None:
        """Zero every metric, keeping registrations (and help text)."""
        with self._lock:
            for metric in self._metrics.values():
                metric.reset()

    def exposition(self) -> str:
        """Prometheus text exposition format, one block per metric."""
        lines: List[str] = []
        with self._lock:
            metrics = list(self._metrics.items())
        for name, metric in metrics:
            full = self.prefix + name
            if metric.help:
                lines.append("# HELP %s %s" % (full, metric.help))
            lines.append("# TYPE %s %s" % (full, metric.kind))
            if isinstance(metric, Histogram):
                cumulative = 0
                for bound, count in zip(metric.buckets, metric.counts):
                    cumulative += count
                    lines.append('%s_bucket{le="%s"} %d'
                                 % (full, _fmt(bound), cumulative))
                lines.append('%s_bucket{le="+Inf"} %d'
                             % (full, metric.count))
                lines.append("%s_sum %s" % (full, _fmt(metric.sum)))
                lines.append("%s_count %d" % (full, metric.count))
            else:
                lines.append("%s %s" % (full, _fmt(metric.value)))
        return "\n".join(lines) + "\n"


def _fmt(value: Union[int, float]) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
