"""Per-operator runtime instrumentation (the ANALYZE half of EXPLAIN).

A :class:`PlanProfile` is attached to the :class:`ExecutionContext` as
``ctx.profile`` only when ``CompileOptions.analyze`` is set; every
dispatch site (``rows_iter``/``env_iter`` in the tuple interpreter, the
batch-stream adapters in the vectorized engine) checks ``ctx.profile is
not None`` and only then routes the operator's stream through a timing
wrapper — with analyze off, no wrapper generators or probe objects are
ever constructed.

Timing is inclusive (a node's time contains its children's, the
PostgreSQL EXPLAIN ANALYZE convention) and measured with
``perf_counter_ns`` around each ``next()`` so consumer time between pulls
is never attributed to the producer.

Parallel workers build their own ``PlanProfile`` over their own compiled
copy of the plan; :meth:`PlanProfile.export` flattens the probes to
``plan.walk()`` indices (structurally identical across the fork
boundary), and the coordinator folds them back in with
:meth:`PlanProfile.merge_worker`, so ``EXPLAIN ANALYZE`` shows the rows
and time spent below a Gather/MergeGather even though those operators ran
in other processes.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Dict, Iterator, Optional, Tuple


class OpProbe:
    """One operator's runtime counters."""

    __slots__ = ("rows", "batches", "loops", "time_ns",
                 "worker_rows", "worker_batches", "worker_time_ns",
                 "worker_tasks")

    def __init__(self):
        #: Items the operator yielded on the coordinator: rows for row
        #: streams, bindings for binding streams, live rows for batches.
        self.rows = 0
        self.batches = 0
        #: Times the operator was opened (a re-opened join inner counts
        #: once per outer binding).
        self.loops = 0
        #: Inclusive wall time spent producing, in nanoseconds.
        self.time_ns = 0
        #: The same counters accumulated across parallel worker tasks.
        self.worker_rows = 0
        self.worker_batches = 0
        self.worker_time_ns = 0
        self.worker_tasks = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class PlanProfile:
    """Runtime probes for every executed operator of one plan."""

    def __init__(self, plan):
        self.plan = plan
        self._probes: Dict[int, OpProbe] = {}
        #: id(node) → node, keeping probed nodes alive and renderable.
        self._nodes: Dict[int, Any] = {}
        #: id(exchange) → {"morsels": n, "workers": n, "runs": n}.
        self.exchanges: Dict[int, Dict[str, int]] = {}
        #: The request trace this profile ran under (set by the execute
        #: path when the statement is both analyzed and traced), so the
        #: rendered plan and the span tree share one identifier.
        self.trace_id: Optional[str] = None

    # -- probe access --------------------------------------------------------

    def probe(self, node) -> OpProbe:
        key = id(node)
        probe = self._probes.get(key)
        if probe is None:
            probe = OpProbe()
            self._probes[key] = probe
            self._nodes[key] = node
        return probe

    def probe_for(self, node) -> Optional[OpProbe]:
        return self._probes.get(id(node))

    def __len__(self) -> int:
        return len(self._probes)

    # -- stream wrappers -----------------------------------------------------

    def iter_stream(self, plan, handler, ctx, env) -> Iterator[Any]:
        """Wrap a row/binding stream, timing each pull and counting
        yields.  ``handler`` is only invoked inside, so eager handlers
        (e.g. a sort that materializes on open) bill their setup here."""
        probe = self.probe(plan)
        probe.loops += 1
        spent = 0
        t0 = perf_counter_ns()
        try:
            stream = handler(plan, ctx, env)
            while True:
                try:
                    item = next(stream)
                except StopIteration:
                    spent += perf_counter_ns() - t0
                    break
                spent += perf_counter_ns() - t0
                probe.rows += 1
                yield item
                t0 = perf_counter_ns()
        finally:
            probe.time_ns += spent

    def iter_batches(self, plan, stream) -> Iterator[Any]:
        """Wrap an already-created batch stream (EnvBatch/RowBatch),
        counting batches and live rows per batch."""
        probe = self.probe(plan)
        probe.loops += 1
        spent = 0
        t0 = perf_counter_ns()
        try:
            while True:
                try:
                    batch = next(stream)
                except StopIteration:
                    spent += perf_counter_ns() - t0
                    break
                spent += perf_counter_ns() - t0
                probe.batches += 1
                probe.rows += (len(batch.sel) if batch.sel is not None
                               else batch.n)
                yield batch
                t0 = perf_counter_ns()
        finally:
            probe.time_ns += spent

    # -- parallel-worker merge ----------------------------------------------

    def note_exchange(self, exchange, morsels: int, workers: int,
                      worker_times=None, worker_ids=None,
                      wire_bytes: int = 0) -> None:
        """Record fan-out detail for one Exchange execution.

        ``worker_times`` — per-task wall seconds, for the EXPLAIN
        ANALYZE skew view (min/median/max); ``worker_ids`` — the worker
        process that ran each task, aligned with ``worker_times``, for
        the per-worker wall-time view (several tasks can land on one
        worker); ``wire_bytes`` — measured inter-process bytes for
        Repartition/Ship exchanges.
        """
        key = id(exchange)
        detail = self.exchanges.get(key)
        if detail is None:
            detail = {"morsels": 0, "workers": workers, "runs": 0,
                      "worker_times": [], "worker_ids": [],
                      "wire_bytes": 0}
            self.exchanges[key] = detail
            self._nodes.setdefault(key, exchange)
        detail["morsels"] += morsels
        detail["workers"] = workers
        detail["runs"] += 1
        if worker_times:
            detail["worker_times"].extend(worker_times)
            ids = (list(worker_ids)
                   if worker_ids and len(worker_ids) == len(worker_times)
                   else [None] * len(worker_times))
            detail["worker_ids"].extend(ids)
        detail["wire_bytes"] += int(wire_bytes)

    def export(self) -> Dict[int, Tuple[int, int, int, int]]:
        """Flatten probes to ``plan.walk()`` indices for the trip back
        across the fork boundary (worker → coordinator)."""
        index_of = {id(node): index
                    for index, node in enumerate(self.plan.walk())}
        out: Dict[int, Tuple[int, int, int, int]] = {}
        for key, probe in self._probes.items():
            index = index_of.get(key)
            if index is not None:
                out[index] = (probe.rows, probe.batches, probe.loops,
                              probe.time_ns)
        return out

    def merge_worker(self, exported: Dict[int, Tuple[int, int, int, int]]
                     ) -> None:
        """Fold one worker task's exported probes into this profile,
        mapping walk indices back onto the coordinator's plan nodes."""
        nodes = list(self.plan.walk())
        for index, (rows, batches, loops, time_ns) in exported.items():
            if 0 <= index < len(nodes):
                probe = self.probe(nodes[index])
                probe.worker_rows += rows
                probe.worker_batches += batches
                probe.worker_time_ns += time_ns
                probe.worker_tasks += 1 if loops else 0


def export_stats(stats) -> Dict[str, int]:
    """Snapshot an ``ExecutionStats``'s integer counters for shipping a
    worker's activity back to the coordinator."""
    return {name: value for name, value in vars(stats).items()
            if isinstance(value, int) and not isinstance(value, bool)}


def merge_stats(stats, exported: Dict[str, int]) -> None:
    """Add a worker's exported counters onto the coordinator's stats."""
    for name, value in exported.items():
        setattr(stats, name, getattr(stats, name, 0) + value)
