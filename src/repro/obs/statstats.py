"""Per-statement aggregate statistics (the ``pg_stat_statements`` idea).

One :class:`StatementStats` store per server aggregates every executed
statement by the plan-cache fingerprint machinery's *literal-free
rendering* (:func:`repro.core.plancache.normalized_text` — the same
tokenizer-canonical form the fingerprint is built from, with every
literal lifted, not only the comparison operands auto-parameterization
rewrites), so ``WHERE id = 7`` and ``WHERE id = 9`` land in one entry
and so do ``VALUES (1)`` and ``VALUES (2)``: calls, errors, rows,
total/mean latency and a p95 estimate (reusing :class:`repro.obs.
metrics.Histogram`), plan-cache hits, snapshot-vs-live read counts, and
degradation reasons (snapshot pool lost, parallel fallback, shed).

The displayed statement text comes from the fingerprint normalizer with
*every* literal replaced by ``?`` (:func:`repro.core.plancache.
normalized_text`) — raw constants never appear in ``SHOW STATEMENTS``
output, ``GET /statements`` JSON, or the slow-query log.

Unlike tracing, the store is always on: one dict hit, one lock, and a
handful of integer bumps per request — the aggregates must be complete
for ``SHOW STATEMENTS`` to be trustworthy, sampling would falsify them.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import LexerError
from repro.obs.metrics import Histogram

#: Latency buckets for the per-entry p95 estimate: finer than the
#: registry default at the fast end, since served statements cluster
#: under a millisecond.
LATENCY_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
                   50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0)


class StatementStat:
    """Aggregates for one statement fingerprint."""

    __slots__ = ("key", "statement", "calls", "errors", "rows",
                 "total_ms", "cache_hits", "cache_misses",
                 "snapshot_reads", "live_reads", "writes",
                 "degradations", "latency")

    def __init__(self, key: str, statement: str):
        self.key = key
        self.statement = statement
        self.calls = 0
        self.errors = 0
        self.rows = 0
        self.total_ms = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.snapshot_reads = 0
        self.live_reads = 0
        self.writes = 0
        self.degradations: Dict[str, int] = {}
        self.latency = Histogram("statement_ms",
                                 buckets=LATENCY_BUCKETS)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.calls if self.calls else 0.0

    @property
    def p95_ms(self) -> float:
        return self.latency.quantile(0.95)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.key[:12],
            "statement": self.statement,
            "calls": self.calls,
            "errors": self.errors,
            "rows": self.rows,
            "total_ms": round(self.total_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
            "p95_ms": self.p95_ms,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "snapshot_reads": self.snapshot_reads,
            "live_reads": self.live_reads,
            "writes": self.writes,
            "degradations": dict(self.degradations),
        }


class StatementStats:
    """LRU-bounded store of :class:`StatementStat` entries.

    Thread-safe: serving sessions record concurrently.  Normalization
    (tokenize + render) is memoized per statement text, so the steady
    state per record is one memo hit and one entry update under the lock.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("statement stats capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, StatementStat]" = OrderedDict()
        self._norm_memo: "OrderedDict[str, Tuple[str, str]]" = \
            OrderedDict()

    def _normalize(self, sql: str) -> Tuple[str, str]:
        """(fingerprint key, display text) for one statement text.

        The key is the hash of the literal-free canonical rendering, so
        every literal variant of a statement shares one entry — a
        superset of plan-cache auto-parameterization, which only lifts
        comparison operands (``VALUES (1)`` vs ``VALUES (2)`` must not
        split the aggregate).
        """
        with self._lock:
            memoized = self._norm_memo.get(sql)
            if memoized is not None:
                self._norm_memo.move_to_end(sql)
                return memoized
        from repro.core.plancache import normalized_text

        try:
            display = normalized_text(sql)
            key = hashlib.sha256(display.encode("utf-8")).hexdigest()
        except LexerError:
            # Unscannable text has no token stream to normalize; key it
            # by its own hash and show it verbatim (it never compiled,
            # so it carries no bound constants worth hiding — it *is*
            # the error).
            key = hashlib.sha256(sql.encode("utf-8")).hexdigest()
            display = sql
        with self._lock:
            self._norm_memo[sql] = (key, display)
            while len(self._norm_memo) > 4 * self.capacity:
                self._norm_memo.popitem(last=False)
        return key, display

    def record(self, sql: str, latency_ms: float, rows: int = 0,
               cache_hit: Optional[bool] = None,
               source: Optional[str] = None,
               degraded: Optional[str] = None,
               error: bool = False) -> StatementStat:
        """Fold one execution into its fingerprint's aggregates.

        ``source`` is where the statement ran: ``"snapshot"``,
        ``"live"``, ``"write"``, ``"ddl"``, ``"txn"`` or None (unknown —
        e.g. it failed before routing resolved).
        """
        key, display = self._normalize(sql)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = StatementStat(key, display)
                self._entries[key] = entry
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
            self._entries.move_to_end(key)
            entry.calls += 1
            entry.rows += rows
            entry.total_ms += latency_ms
            if error:
                entry.errors += 1
            if cache_hit is True:
                entry.cache_hits += 1
            elif cache_hit is False:
                entry.cache_misses += 1
            if source == "snapshot":
                entry.snapshot_reads += 1
            elif source in ("live", "txn"):
                entry.live_reads += 1
            elif source in ("write", "ddl"):
                entry.writes += 1
            if degraded:
                entry.degradations[degraded] = \
                    entry.degradations.get(degraded, 0) + 1
        entry.latency.observe(latency_ms)
        return entry

    def display_text(self, sql: str) -> str:
        """The literal-free rendering of one statement (for slow-log
        lines and anything else that must not leak constants)."""
        return self._normalize(sql)[1]

    def get(self, sql: str) -> Optional[StatementStat]:
        key, _ = self._normalize(sql)
        with self._lock:
            return self._entries.get(key)

    def report(self) -> List[Dict[str, Any]]:
        """Every entry as a dict, heaviest total time first."""
        with self._lock:
            entries = list(self._entries.values())
        return sorted((entry.as_dict() for entry in entries),
                      key=lambda row: row["total_ms"], reverse=True)

    def result_rows(self):
        """(columns, rows) for the ``SHOW STATEMENTS`` meta command."""
        columns = ["fingerprint", "statement", "calls", "errors", "rows",
                   "total_ms", "mean_ms", "p95_ms", "cache_hits",
                   "cache_misses", "snapshot_reads", "live_reads",
                   "writes", "degradations"]
        rows = []
        for entry in self.report():
            degradations = ";".join(
                "%s x%d" % (reason, count)
                for reason, count in sorted(
                    entry["degradations"].items())) or None
            rows.append((entry["fingerprint"], entry["statement"],
                         entry["calls"], entry["errors"], entry["rows"],
                         entry["total_ms"], entry["mean_ms"],
                         entry["p95_ms"], entry["cache_hits"],
                         entry["cache_misses"], entry["snapshot_reads"],
                         entry["live_reads"], entry["writes"],
                         degradations))
        return columns, rows

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
