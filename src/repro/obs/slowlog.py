"""The slow-query log: one structured JSON line per slow statement.

A statement whose server-side latency crosses ``threshold_ms`` emits a
single JSON object: wall-clock timestamp, the literal-free statement
text (via the fingerprint normalizer — raw constants never appear),
latency, route, session source, error class if any, and — when the
request was traced — its ``trace_id`` and the completed span tree, so
one log line answers *where the time went* without a second lookup.

Lines go to a bounded in-memory ring (``lines()``, for tests and the
stats endpoint) and, when ``path`` is set, are appended to a file —
one JSON object per line, greppable and ``jq``-able.

``threshold_ms=None`` disables the log entirely: ``maybe_log`` is one
attribute compare on the hot path.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional


class SlowQueryLog:
    def __init__(self, threshold_ms: Optional[float] = None,
                 path: Optional[str] = None, keep: int = 256):
        self.threshold_ms = threshold_ms
        self.path = path
        self._lock = threading.Lock()
        self._lines: "deque[str]" = deque(maxlen=max(1, keep))

    @property
    def enabled(self) -> bool:
        return self.threshold_ms is not None

    def maybe_log(self, statement: str, latency_ms: float,
                  trace=None, route: Optional[str] = None,
                  source: Optional[str] = None,
                  error: Optional[BaseException] = None,
                  **extras: Any) -> Optional[str]:
        """Emit a line if ``latency_ms`` crosses the threshold.

        ``statement`` must already be the normalized (literal-free)
        text — the caller owns the normalizer.  Returns the emitted
        line, or None when below threshold / disabled.
        """
        threshold = self.threshold_ms
        if threshold is None or latency_ms < threshold:
            return None
        record: Dict[str, Any] = {
            "ts": round(time.time(), 3),
            "statement": statement,
            "latency_ms": round(latency_ms, 3),
            "threshold_ms": threshold,
        }
        if route is not None:
            record["route"] = route
        if source is not None:
            record["source"] = source
        if error is not None:
            record["error"] = type(error).__name__
        if trace is not None:
            record["trace_id"] = trace.trace_id
            record["spans"] = trace.root.as_dict()
        record.update(extras)
        line = json.dumps(record, default=repr, separators=(",", ":"))
        with self._lock:
            self._lines.append(line)
            if self.path is not None:
                try:
                    with open(self.path, "a") as handle:
                        handle.write(line + "\n")
                except OSError:
                    pass  # the ring still has the line
        return line

    def lines(self) -> List[str]:
        with self._lock:
            return list(self._lines)

    def records(self) -> List[Dict[str, Any]]:
        return [json.loads(line) for line in self.lines()]

    def clear(self) -> None:
        with self._lock:
            self._lines.clear()
