"""Render a :class:`PlanProfile` as ``EXPLAIN ANALYZE`` text.

The layout mirrors ``PlanOp.explain`` (same indentation, same static
marks for order/backend/dop/fallback) with each operator line extended by
its runtime: actual rows vs the optimizer's estimate, inclusive wall time
and its share of total execution, loop and batch counts, and — below an
Exchange — the rows/time the parallel workers spent producing the subtree
in other processes.  A trailing summary reports worker-pool capacity,
Figure-1 phase timings, and the execution-stats counters.
"""

from __future__ import annotations

from typing import List, Optional


def _ms(nanoseconds: int) -> str:
    return "%.3f" % (nanoseconds / 1e6)


def _worker_walls(detail) -> List[float]:
    """Per-worker wall seconds for one exchange, sorted ascending: each
    worker's task times summed by the worker id recorded alongside them.
    Empty when ids are missing (an old export or a single-task ship with
    no id), which suppresses the wall view rather than mislabeling."""
    times = detail.get("worker_times") or ()
    ids = detail.get("worker_ids") or ()
    if not times or len(ids) != len(times) or any(
            worker_id is None for worker_id in ids):
        return []
    by_worker: dict = {}
    for worker_id, elapsed in zip(ids, times):
        by_worker[worker_id] = by_worker.get(worker_id, 0.0) + elapsed
    return sorted(by_worker.values())


def _node_line(node, profile, total_ns: int, depth: int) -> str:
    static = "cost=%.2f est=%.1f" % (node.props.cost, node.props.card)
    marks = ""
    if node.props.order:
        marks += " order=" + str(list(node.props.order))
    if node.exec_backend != "tuple":
        marks += " backend=%s" % node.exec_backend
    program = getattr(node, "codegen_program", None)
    if program is not None:
        marks += " fused=%d" % program.n_pipelines
    if node.props.dop > 1:
        marks += " dop=%d" % node.props.dop
    if getattr(node, "fallback_mark", None):
        marks += " fallback=%s" % node.fallback_mark

    probe = profile.probe_for(node)
    if probe is None or probe.loops == 0 and probe.worker_tasks == 0:
        actual = "(never executed)"
    else:
        pieces = ["rows=%d" % probe.rows]
        if probe.batches:
            pieces.append("batches=%d" % probe.batches)
        if probe.loops > 1:
            pieces.append("loops=%d" % probe.loops)
        pieces.append("time=%sms" % _ms(probe.time_ns))
        if total_ns > 0:
            pieces.append("%.1f%%" % (100.0 * probe.time_ns / total_ns))
        if probe.worker_tasks:
            worker = "workers(rows=%d time=%sms tasks=%d" % (
                probe.worker_rows, _ms(probe.worker_time_ns),
                probe.worker_tasks)
            if probe.worker_batches:
                worker += " batches=%d" % probe.worker_batches
            pieces.append(worker + ")")
        actual = "actual " + " ".join(pieces)

    detail = profile.exchanges.get(id(node))
    exchange = ""
    if detail is not None:
        extra = ""
        times = sorted(detail.get("worker_times") or ())
        if times:
            # Per-task wall-time skew: with a hot hash partition (or one
            # giant morsel) max pulls far away from the median.
            median = times[len(times) // 2]
            extra += (" skew(min=%.1fms median=%.1fms max=%.1fms)"
                      % (times[0] * 1e3, median * 1e3, times[-1] * 1e3))
        walls = _worker_walls(detail)
        if walls:
            # Per-worker wall time (all of a worker's tasks summed): a
            # balanced task histogram can still hide one overloaded
            # worker when the pool is smaller than the task count.
            median = walls[len(walls) // 2]
            extra += (" wall(workers=%d min=%.1fms median=%.1fms"
                      " max=%.1fms)"
                      % (len(walls), walls[0] * 1e3, median * 1e3,
                         walls[-1] * 1e3))
        if detail.get("wire_bytes"):
            extra += " wire=%dB" % detail["wire_bytes"]
        exchange = " exchange(morsels=%d workers=%d runs=%d%s)" % (
            detail["morsels"], detail["workers"], detail["runs"], extra)

    return "%s%s  (%s%s) (%s)%s" % ("  " * depth, node.describe(), static,
                                    marks, actual, exchange)


def _render_tree(node, profile, total_ns: int, depth: int,
                 lines: List[str]) -> None:
    lines.append(_node_line(node, profile, total_ns, depth))
    for child in node.children:
        _render_tree(child, profile, total_ns, depth + 1, lines)
    for binding in getattr(node, "subplans", []):
        lines.append("%s[subquery %s:%s]" % ("  " * (depth + 1),
                                             binding.quantifier.name,
                                             binding.quantifier.qtype))
        _render_tree(binding.plan, profile, total_ns, depth + 2, lines)


def render_analyze(profile, timings=None, stats=None, options=None,
                   cores: Optional[int] = None) -> str:
    """Text report for one analyzed execution.

    ``profile`` is the populated :class:`PlanProfile`; ``timings`` the
    :class:`PhaseTimings` (``execute`` supplies the denominator for
    per-operator percentages), ``stats`` the :class:`ExecutionStats`,
    ``cores`` the effective worker-pool capacity to report.
    """
    total_ns = int(timings.execute * 1e9) if timings is not None else 0

    title = "=== EXPLAIN ANALYZE ==="
    if options is not None:
        described = options.describe()
        if described:
            title = "=== EXPLAIN ANALYZE (%s) ===" % described
    lines = [title]
    if getattr(profile, "trace_id", None):
        lines.append("trace: %s" % profile.trace_id)
    _render_tree(profile.plan, profile, total_ns, 0, lines)

    if cores is not None:
        requested = getattr(options, "dop", None) if options is not None \
            else None
        note = "worker pool: %d core(s) available" % cores
        if requested and requested > cores:
            note += (" (requested dop=%d exceeds cores; pool clamped "
                     "to %d)" % (requested, cores))
        lines.append(note)

    if timings is not None:
        codegen = ""
        if getattr(timings, "codegen", 0.0):
            codegen = " codegen=%.3fms" % (timings.codegen * 1e3)
        lines.append(
            "phases: parse=%.3fms rewrite=%.3fms optimize=%.3fms "
            "refine=%.3fms%s execute=%.3fms (%s)"
            % (timings.parse * 1e3, timings.rewrite * 1e3,
               timings.optimize * 1e3, timings.refine * 1e3,
               codegen, timings.execute * 1e3, timings.pipeline))

    if stats is not None:
        pipelines = ""
        if getattr(stats, "codegen_pipelines", 0):
            pipelines = " pipelines=%d" % stats.codegen_pipelines
        movement = ""
        if getattr(stats, "exchange_bytes", 0):
            movement += " exchange_bytes=%d" % stats.exchange_bytes
        if getattr(stats, "partitions_pruned", 0):
            movement += " partitions_pruned=%d" % stats.partitions_pruned
        lines.append(
            "execution: scanned=%d emitted=%d batches=%d fallbacks=%d%s "
            "exchanges=%d morsels=%d parallel_fallbacks=%d%s"
            % (stats.rows_scanned, stats.rows_emitted, stats.batches,
               stats.fallbacks, pipelines, stats.parallel_exchanges,
               stats.morsels, stats.parallel_fallbacks, movement))
        for reason in stats.parallel_reasons:
            lines.append("parallel note: %s" % reason)

    return "\n".join(lines)
