"""Observability: runtime profiles, compile traces, process metrics.

Three independent pieces, all opt-in and all zero-cost when unused:

- :mod:`repro.obs.profile` — per-operator runtime instrumentation behind
  ``CompileOptions.analyze`` (rows, batches, wall time per LOLEPOP on the
  tuple, batch and parallel execution paths),
- :mod:`repro.obs.trace` — structured compile-phase tracing (rewrite rule
  firings, STAR expansions, optimizer pruning and winner decisions),
- :mod:`repro.obs.metrics` — a process-level metrics registry (counters,
  gauges, latency histograms) with Prometheus-style text exposition,
- :mod:`repro.obs.spans` — request-scoped span trees for the serving
  layer (sampled, zero-allocation when off, fork-mergeable fragments),
- :mod:`repro.obs.statstats` — per-fingerprint statement aggregates
  (``SHOW STATEMENTS`` / ``GET /statements``),
- :mod:`repro.obs.slowlog` — the slow-query log (one JSON line per slow
  statement, literal-free text, attached span tree when traced).

:mod:`repro.obs.render` turns a profile into ``EXPLAIN ANALYZE`` text.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import OpProbe, PlanProfile
from repro.obs.render import render_analyze
from repro.obs.slowlog import SlowQueryLog
from repro.obs.spans import RequestTrace, Span, SpanRecorder
from repro.obs.statstats import StatementStat, StatementStats
from repro.obs.trace import Trace, TraceEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OpProbe",
    "PlanProfile",
    "RequestTrace",
    "SlowQueryLog",
    "Span",
    "SpanRecorder",
    "StatementStat",
    "StatementStats",
    "Trace",
    "TraceEvent",
    "render_analyze",
]
