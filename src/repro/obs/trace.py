"""Structured compile-phase tracing.

A :class:`Trace` is a list of typed :class:`TraceEvent` records emitted
by the rewrite engine (rule firings: rule name, rule class, box, budget
spent) and the optimizer (STAR expansions, glue insertions, plans pruned
with their losing costs, per-box winners with a cost breakdown).  Events
render as one-line text (``Trace.render_text``) or JSON
(``Trace.to_json``) — the raw material for auditing which rules fired on
which boxes and why the optimizer chose what it chose.

Tracing is opt-in: every emit site is guarded by ``trace is not None``,
so the default compile path allocates nothing.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional


class TraceEvent:
    """One typed event: a kind plus kind-specific fields.

    Kinds in use today (extensible — DBC code may emit its own):

    - ``phase``            — one Figure-1 compile phase completed,
    - ``rewrite.fire``     — a rewrite rule fired on a box,
    - ``rewrite.budget``   — the rewrite budget was exhausted,
    - ``rewrite.search``   — search-mode progress: ``phase`` is
      ``baseline`` (sequential fixpoint costed), ``explore`` (one
      alternative firing tried on a snapshot), ``fire`` (a firing of the
      adopted sequence) or ``done`` (summary: chosen variant, cost),
    - ``codegen.pipeline`` — the codegen backend emitted one fused
      pipeline function (region, table, build/sink kind, whether the
      code object was shared from the cross-statement cache),
    - ``star``             — a STAR expansion produced plans,
    - ``glue.parallel``    — the parallel glue spliced an Exchange,
    - ``optimizer.prune``  — plans pruned with their losing costs,
    - ``optimizer.winner`` — a box's winning plan and cost,
    - ``optimizer.plan``   — the final plan's cost breakdown.
    """

    __slots__ = ("kind", "data")

    def __init__(self, kind: str, **data: Any):
        self.kind = kind
        self.data = data

    def as_dict(self) -> Dict[str, Any]:
        out = {"kind": self.kind}
        out.update(self.data)
        return out

    def render(self) -> str:
        fields = " ".join("%s=%s" % (key, _compact(value))
                          for key, value in self.data.items())
        return "%-16s %s" % (self.kind, fields) if fields else self.kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<TraceEvent %s>" % self.render()


def _compact(value: Any) -> str:
    if isinstance(value, float):
        return "%.3f" % value
    if isinstance(value, str):
        return value if " " not in value else repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_compact(v) for v in value) + "]"
    return repr(value)


class Trace:
    """An append-only event log for one compilation."""

    def __init__(self):
        self.events: List[TraceEvent] = []

    def event(self, kind: str, **data: Any) -> TraceEvent:
        record = TraceEvent(kind, **data)
        self.events.append(record)
        return record

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def render_text(self, limit: Optional[int] = None) -> str:
        """One line per event, in emission order."""
        events = self.events if limit is None else self.events[:limit]
        lines = [event.render() for event in events]
        if limit is not None and len(self.events) > limit:
            lines.append("... (%d more event(s))"
                         % (len(self.events) - limit))
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps([event.as_dict() for event in self.events],
                          indent=indent, default=repr)
