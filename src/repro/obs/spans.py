"""Request-scoped tracing for the serving layer.

A :class:`RequestTrace` is a tree of :class:`Span` records covering one
wire request end to end — wire read to response flush — keyed by a
per-request ``trace_id``.  Spans carry ``time.monotonic_ns`` timestamps;
on Linux ``CLOCK_MONOTONIC`` is system-wide, so timestamps recorded
inside forked snapshot/parallel workers are directly comparable to the
parent's and a worker-side span *fragment* can be grafted into the
parent tree with no clock translation (:meth:`RequestTrace.
attach_worker_fragments` groups fragments by worker pid).

The discipline matches :class:`repro.obs.profile.PlanProfile`: every
instrumentation site guards on ``trace is not None``, and the
:class:`SpanRecorder`'s sampling decision (``maybe_start``) returns
``None`` without allocating when tracing is off or this request lost the
sampling draw — the untraced hot path pays one attribute read and one
``is not None`` branch per site.

Sampling is deterministic (a modular counter, not ``random``): ``"off"``
never traces, ``"always"`` traces every request, a ratio ``0 < r < 1``
traces every ``round(1/r)``-th request — reproducible in tests and free
of RNG state that would differ across forks.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from collections import deque
from contextlib import contextmanager
from time import monotonic_ns
from typing import Any, Dict, List, Optional, Tuple


class Span:
    """One timed region: name, monotonic-ns bounds, attrs, children."""

    __slots__ = ("name", "start_ns", "end_ns", "attrs", "children")

    def __init__(self, name: str, start_ns: Optional[int] = None):
        self.name = name
        self.start_ns = start_ns if start_ns is not None else monotonic_ns()
        self.end_ns: Optional[int] = None
        self.attrs: Dict[str, Any] = {}
        self.children: List["Span"] = []

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self) -> "Span":
        if self.end_ns is None:
            self.end_ns = monotonic_ns()
        return self

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None else monotonic_ns()
        return end - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def child(self, name: str) -> "Span":
        span = Span(name)
        self.children.append(span)
        return span

    def find(self, name: str) -> Optional["Span"]:
        """First span with ``name`` in this subtree (depth-first)."""
        if self.name == name:
            return self
        for sub in self.children:
            found = sub.find(name)
            if found is not None:
                return found
        return None

    def export(self) -> Tuple:
        """A picklable nested tuple — the cross-process fragment format:
        ``(name, start_ns, end_ns, attrs, (child exports...))``."""
        return (self.name, self.start_ns,
                self.end_ns if self.end_ns is not None else self.start_ns,
                dict(self.attrs),
                tuple(sub.export() for sub in self.children))

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name,
                               "start_ns": self.start_ns,
                               "ms": round(self.duration_ns / 1e6, 4)}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [sub.as_dict() for sub in self.children]
        return out

    def render(self, depth: int = 0) -> str:
        attrs = " ".join("%s=%s" % (key, value)
                         for key, value in self.attrs.items())
        line = "%s%s %.3fms%s" % ("  " * depth, self.name,
                                  self.duration_ns / 1e6,
                                  (" " + attrs) if attrs else "")
        parts = [line]
        parts.extend(sub.render(depth + 1) for sub in self.children)
        return "\n".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Span %s %.3fms children=%d>" % (
            self.name, self.duration_ns / 1e6, len(self.children))


def import_fragment(export) -> Span:
    """Rebuild a :class:`Span` subtree from :meth:`Span.export` output.

    Raises ``ValueError`` on a malformed export; callers that must not
    fail (fragment merging) catch it and record the degradation instead.
    """
    try:
        name, start_ns, end_ns, attrs, children = export
        if not isinstance(name, str) or not isinstance(start_ns, int) \
                or not isinstance(end_ns, int) \
                or not isinstance(attrs, dict):
            raise TypeError
        span = Span(name, start_ns=start_ns)
        span.end_ns = end_ns
        span.attrs = dict(attrs)
        span.children = [import_fragment(sub) for sub in children]
        return span
    except (TypeError, ValueError) as exc:
        raise ValueError("malformed span fragment: %r" % (export,)) \
            from exc


class RequestTrace:
    """The span tree of one request, with a span stack for nesting.

    Not thread-safe by design: a session serializes its own statements,
    so exactly one thread drives a trace at a time.
    """

    __slots__ = ("trace_id", "root", "_stack")

    def __init__(self, trace_id: str, name: str = "request"):
        self.trace_id = trace_id
        self.root = Span(name)
        self._stack: List[Span] = [self.root]

    def current(self) -> Span:
        return self._stack[-1]

    def begin(self, name: str, **attrs: Any) -> Span:
        """Open a child of the current span and make it current.  Pair
        with :meth:`end`; use :meth:`span` where a ``with`` block fits."""
        span = self.current().child(name)
        if attrs:
            span.attrs.update(attrs)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        span.finish()
        # Strict nesting is the invariant; if an error path skipped an
        # inner end(), close the orphans rather than corrupt the stack.
        while len(self._stack) > 1:
            top = self._stack.pop()
            if top is span:
                return
            top.finish().set(abandoned=True)

    @contextmanager
    def span(self, name: str, **attrs: Any):
        span = self.begin(name, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    def attach_worker_fragments(self, parent: Span, fragments) -> int:
        """Graft worker-exported span fragments under ``parent``, grouped
        by worker pid into one ``worker`` span per process.

        ``fragments`` is an iterable of :meth:`Span.export` tuples whose
        root attrs carry ``pid``.  Malformed fragments never raise: the
        degradation is recorded on ``parent`` (``fragment_errors``) and
        the rest of the tree stays intact.
        """
        by_pid: Dict[Any, List[Span]] = {}
        errors = 0
        for export in fragments:
            if export is None:
                continue
            try:
                span = import_fragment(export)
            except ValueError:
                errors += 1
                continue
            by_pid.setdefault(span.attrs.get("pid"), []).append(span)
        for pid in sorted(by_pid, key=lambda p: (p is None, p)):
            spans = by_pid[pid]
            group = Span("worker",
                         start_ns=min(s.start_ns for s in spans))
            group.end_ns = max(s.end_ns for s in spans)
            group.attrs["pid"] = pid
            group.children = spans
            parent.children.append(group)
        if errors:
            parent.set(fragment_errors=errors,
                       degraded="worker fragment(s) unreadable; "
                                "parent-only trace")
        return len(by_pid)

    def finish(self) -> Span:
        while self._stack:
            self._stack.pop().finish()
        self._stack = [self.root]
        return self.root

    @property
    def duration_ns(self) -> int:
        return self.root.duration_ns

    @property
    def duration_ms(self) -> float:
        return self.root.duration_ns / 1e6

    def to_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id,
                "ms": round(self.root.duration_ns / 1e6, 4),
                "spans": self.root.as_dict()}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), default=repr,
                          separators=(",", ":"))

    def render_text(self) -> str:
        return "trace %s\n%s" % (self.trace_id, self.root.render())


class SpanRecorder:
    """Per-server sampling decision plus a ring of completed traces.

    ``sample`` is ``"off"`` (default), ``"always"``, or a ratio in
    (0, 1) — also accepted as a string like ``"0.25"``.  ``maybe_start``
    is the single gate every request passes: it returns ``None``
    (allocating nothing) for unsampled requests and a fresh
    :class:`RequestTrace` otherwise.
    """

    def __init__(self, sample="off", keep: int = 128):
        self._period = 0  # 0 = off, 1 = always, N = every Nth
        self.set_sample(sample)
        self._counter = itertools.count()
        self._completed: "deque[RequestTrace]" = deque(maxlen=max(1, keep))
        self._lock = threading.Lock()
        self._seq = itertools.count(1)

    def set_sample(self, sample) -> None:
        if sample in (None, False, 0, "off", ""):
            self._period = 0
            return
        if sample in (True, "always"):
            self._period = 1
            return
        ratio = float(sample)
        if ratio >= 1.0:
            self._period = 1
        elif ratio <= 0.0:
            self._period = 0
        else:
            self._period = max(1, int(round(1.0 / ratio)))

    @property
    def enabled(self) -> bool:
        return self._period > 0

    def describe_sample(self) -> str:
        if self._period == 0:
            return "off"
        if self._period == 1:
            return "always"
        return "1/%d" % self._period

    def maybe_start(self, name: str = "request") -> Optional[RequestTrace]:
        period = self._period
        if period == 0:
            return None
        if period > 1 and next(self._counter) % period:
            return None
        trace_id = "t%x-%x" % (os.getpid(), next(self._seq))
        return RequestTrace(trace_id, name=name)

    def finish(self, trace: RequestTrace) -> RequestTrace:
        trace.finish()
        with self._lock:
            self._completed.append(trace)
        return trace

    def completed(self) -> List[RequestTrace]:
        with self._lock:
            return list(self._completed)

    def find(self, trace_id: str) -> Optional[RequestTrace]:
        with self._lock:
            for trace in self._completed:
                if trace.trace_id == trace_id:
                    return trace
        return None

    def clear(self) -> None:
        with self._lock:
            self._completed.clear()


def bridge_phase_events(span: Span, trace, timings=None) -> None:
    """Turn a compile :class:`repro.obs.trace.Trace`'s ``phase`` events
    into child spans of ``span`` (the ``compile`` span).

    Phase events record durations, not timestamps; the children are laid
    end to end from ``span.start_ns`` (a ``parse`` phase synthesized
    from ``timings`` first — the pipeline emits no event for it), which
    preserves durations and order exactly and positions within a
    microsecond of truth.
    """
    cursor = span.start_ns
    phases = []
    if timings is not None and getattr(timings, "parse", 0.0):
        phases.append(("parse", timings.parse, {}))
    for event in trace.of_kind("phase"):
        data = dict(event.data)
        name = data.pop("name", "?")
        seconds = data.pop("seconds", 0.0)
        phases.append((name, seconds, data))
    for name, seconds, attrs in phases:
        child = Span(name, start_ns=cursor)
        cursor += int(seconds * 1e9)
        child.end_ns = cursor
        if attrs:
            child.attrs.update(attrs)
        span.children.append(child)
