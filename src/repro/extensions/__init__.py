"""Contrib extensions: complete DBC extension modules.

Each module here plays the role of the paper's *database customizer*: it
adds function to the system exclusively through the public extension
registries — new LOLEPOPs with interpreters, new STARs, new rewrite rules
— without modifying any base-system module.  They double as worked
examples of the extension API and as test subjects for the "independent
extensions must not conflict" question the paper raises.

- :mod:`repro.extensions.bloomjoin` — Bloom-join filtration (§6 names
  "filtration methods such as semi-joins and Bloom-joins [MACK86]" among
  the strategies STARs can express).
"""

from repro.extensions.bloomjoin import BloomFilter, BloomJoin, install_bloom_join

__all__ = ["BloomFilter", "BloomJoin", "install_bloom_join"]
