"""Bloom-join: a filtration join method added as a pure DBC extension.

Section 6 claims the STAR formalism can express "filtration methods such
as semi-joins and Bloom-joins [MACK86]".  This module proves it by adding
the strategy without touching a single base module:

1. a :class:`BloomFilter` (bit array + k hash functions),
2. a :class:`BloomJoin` LOLEPOP whose property function models the
   filtration benefit: the *outer* stream is pre-filtered against a Bloom
   filter built from the inner join keys before the (hash) join — the win
   of [MACK86]'s Bloom-joins is shipping/joining fewer outer rows,
3. an interpreter for the LOLEPOP, registered with the QES,
4. a STAR alternative appended to the join-method array.

Install into a database with :func:`install_bloom_join`; the optimizer
then generates Bloom-join alternatives automatically wherever an equi-join
has a filtered inner, and picks them when the cost model says the
filtration pays (selective inner, expensive outer rows).
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterator, List, Sequence

from repro.executor.context import ExecutionContext
from repro.executor.evaluator import Evaluator
from repro.executor.run import (
    _join_key,
    _scan_preds_ok,
    env_iter,
    register_env_operator,
)
from repro.optimizer.cost import CPU_WEIGHT, CostModel
from repro.optimizer.plans import PlanOp, _join_props
from repro.optimizer.stars import Alternative, PlanGenerator
from repro.qgm import expressions as qe
from repro.qgm.model import Predicate


class BloomFilter:
    """A classic Bloom filter over hashable keys."""

    def __init__(self, bits: int = 8192, hashes: int = 3):
        self.bits = bits
        self.hashes = hashes
        self._words = bytearray((bits + 7) // 8)
        self.added = 0

    def _positions(self, key: Any) -> List[int]:
        digest = hashlib.blake2b(repr(key).encode(), digest_size=16).digest()
        positions = []
        for index in range(self.hashes):
            chunk = digest[index * 4: index * 4 + 4]
            positions.append(int.from_bytes(chunk, "little") % self.bits)
        return positions

    def add(self, key: Any) -> None:
        for position in self._positions(key):
            self._words[position // 8] |= 1 << (position % 8)
        self.added += 1

    def might_contain(self, key: Any) -> bool:
        return all(self._words[p // 8] & (1 << (p % 8))
                   for p in self._positions(key))

    def false_positive_rate(self) -> float:
        """Theoretical FP rate for the current fill."""
        if self.added == 0:
            return 0.0
        fill = 1.0 - (1.0 - 1.0 / self.bits) ** (self.hashes * self.added)
        return fill ** self.hashes


class BloomJoin(PlanOp):
    """Hash join with a Bloom pre-filter on the outer stream.

    The property function credits the filtration: outer rows that cannot
    match are dropped for a bit-test instead of a hash probe (and, when
    the outer comes from another site, before they would be shipped).
    """

    op_name = "BLOOMJOIN"

    def __init__(self, cm: CostModel, outer: PlanOp, inner: PlanOp,
                 kind: str, outer_keys: Sequence[qe.QExpr],
                 inner_keys: Sequence[qe.QExpr],
                 preds: Sequence[Predicate],
                 residual: Sequence[Predicate] = ()):
        self.kind = kind
        self.outer_keys = list(outer_keys)
        self.inner_keys = list(inner_keys)
        self.preds = list(preds)
        self.residual = list(residual)
        # Survivors of the filter ~ rows that actually join (+ noise).
        selectivity = 1.0
        for predicate in list(preds) + list(residual):
            selectivity *= cm.selectivity(predicate)
        surviving = max(1.0, outer.props.card * inner.props.card
                        * selectivity / max(inner.props.card, 1.0))
        cost = (outer.props.cost + inner.props.cost
                + cm.hash_cost(inner.props.card, surviving)
                + outer.props.card * CPU_WEIGHT * 0.3)  # bit tests
        props = _join_props(cm, outer, inner, kind,
                            list(preds) + list(residual), cost,
                            outer.props.order)
        super().__init__((outer, inner), props)

    def describe(self) -> str:
        return "BLOOMJOIN[%s](%s)" % (
            self.kind,
            ", ".join("%r=%r" % (o, i)
                      for o, i in zip(self.outer_keys, self.inner_keys)))


def _run_bloom_join(plan: BloomJoin, ctx: ExecutionContext,
                    env) -> Iterator:
    evaluator = Evaluator(ctx)
    outer_plan, inner_plan = plan.children

    # Build side: hash table + Bloom filter over the inner keys.
    bloom = BloomFilter()
    table = {}
    for inner_env in env_iter(inner_plan, ctx, env):
        key = _join_key(evaluator, plan.inner_keys, inner_env)
        if key is not None:
            bloom.add(key)
            table.setdefault(key, []).append(inner_env)

    filtered = 0
    for outer_env in env_iter(outer_plan, ctx, env):
        key = _join_key(evaluator, plan.outer_keys, outer_env)
        if key is None:
            continue
        if not bloom.might_contain(key):
            filtered += 1
            continue
        for inner_env in table.get(key, ()):
            merged = {**outer_env, **inner_env}
            if _scan_preds_ok(evaluator, plan.residual, merged):
                yield merged
    ctx.stats.__dict__.setdefault("bloom_filtered", 0)
    ctx.stats.__dict__["bloom_filtered"] += filtered


def _bloom_join_alternative(gen: PlanGenerator, args) -> List[PlanOp]:
    """The STAR alternative: applicable to equi-joins with a *selective*
    inner (otherwise the filter rejects nothing)."""
    outer, inner = args["outer"], args["inner"]
    kind = args.get("kind", "regular")
    if kind != "regular":
        return []
    outer_keys: List[qe.QExpr] = []
    inner_keys: List[qe.QExpr] = []
    key_preds: List[Predicate] = []
    residual: List[Predicate] = []
    for predicate in args["preds"]:
        pair = qe.is_column_equality(predicate.expr)
        if pair is not None:
            left, right = pair
            if (left.quantifier in outer.props.quantifiers
                    and right.quantifier in inner.props.quantifiers):
                outer_keys.append(left)
                inner_keys.append(right)
                key_preds.append(predicate)
                continue
            if (right.quantifier in outer.props.quantifiers
                    and left.quantifier in inner.props.quantifiers):
                outer_keys.append(right)
                inner_keys.append(left)
                key_preds.append(predicate)
                continue
        residual.append(predicate)
    if not outer_keys:
        return []
    return [BloomJoin(gen.cm, outer, inner, kind, outer_keys, inner_keys,
                      key_preds, residual)]


def install_bloom_join(db) -> None:
    """Register the Bloom-join extension with a database.

    Purely additive: one STAR alternative on the join-method expansion and
    one interpreter registration — exactly the touch points the paper's
    extension architecture prescribes.
    """
    already = any(a.name == "Bloom"
                  for a in db.stars["JoinRoot"].alternatives)
    if not already:
        db.add_star_alternative("JoinRoot", Alternative(
            "Bloom", _bloom_join_alternative, rank=1.6))
    register_env_operator(BloomJoin, _run_bloom_join)
