"""Admission control: bounded inflight statements, bounded wait queue.

Overload must degrade to *fast rejection*, not collapse: once
``max_inflight`` statements are executing, up to ``max_queue`` more may
wait ``timeout_s`` for a slot, and everything beyond that is shed
immediately with :class:`repro.errors.ServerOverloaded`.  The controller
feeds the database's :class:`~repro.obs.metrics.MetricsRegistry` so the
``/metrics`` endpoint shows queue depth and shed counts live.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import monotonic

from repro.errors import ServerOverloaded


class AdmissionController:
    """A counting gate in front of statement execution.

    ``with controller.admitted():`` either acquires an execution slot
    (possibly after a bounded wait) or raises
    :class:`~repro.errors.ServerOverloaded`; the slot is released when
    the block exits.
    """

    def __init__(self, max_inflight: int, max_queue: int,
                 timeout_s: float, metrics=None):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.timeout_s = timeout_s
        self._cond = threading.Condition()
        self._inflight = 0
        self._waiting = 0
        if metrics is not None:
            self._g_inflight = metrics.gauge(
                "serve_inflight", "Statements currently executing")
            self._g_queue = metrics.gauge(
                "serve_queue_depth",
                "Statements waiting for an execution slot")
            self._c_admitted = metrics.counter(
                "serve_admitted_total", "Statements admitted")
            self._c_shed = metrics.counter(
                "serve_shed_total",
                "Statements rejected by admission control")
            self._h_queue_wait = metrics.histogram(
                "serve_queue_wait_ms",
                "Milliseconds statements spent queued for an execution "
                "slot (queued statements only; the fast path never "
                "observes)")
        else:
            self._g_inflight = self._g_queue = None
            self._c_admitted = self._c_shed = None
            self._h_queue_wait = None

    # The gauges mirror _inflight/_waiting, which only change under
    # self._cond — publishing them after the mutation keeps them exact.

    def _publish(self) -> None:
        if self._g_inflight is not None:
            self._g_inflight.set(self._inflight)
            self._g_queue.set(self._waiting)

    def acquire(self) -> float:
        """Take one execution slot or raise ServerOverloaded.

        Returns the seconds spent queued (0.0 on the uncontended fast
        path); queued outcomes — admitted-after-wait and shed alike —
        feed the ``serve_queue_wait_ms`` histogram.
        """
        with self._cond:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self._publish()
                if self._c_admitted is not None:
                    self._c_admitted.inc()
                return 0.0
            if self._waiting >= self.max_queue:
                if self._c_shed is not None:
                    self._c_shed.inc()
                raise ServerOverloaded(
                    "server at max_inflight=%d with %d already queued; "
                    "statement shed" % (self.max_inflight, self._waiting))
            self._waiting += 1
            self._publish()
            entered = monotonic()
            deadline = entered + self.timeout_s
            try:
                while self._inflight >= self.max_inflight:
                    remaining = deadline - monotonic()
                    if remaining <= 0:
                        if self._c_shed is not None:
                            self._c_shed.inc()
                        if self._h_queue_wait is not None:
                            self._h_queue_wait.observe(
                                (monotonic() - entered) * 1e3)
                        # A release() may have elected us for the slot;
                        # pass the wakeup on so shedding never strands
                        # a freed slot behind still-live waiters.
                        self._cond.notify()
                        raise ServerOverloaded(
                            "server at max_inflight=%d; no slot freed "
                            "within %.2fs; statement shed"
                            % (self.max_inflight, self.timeout_s))
                    self._cond.wait(remaining)
            finally:
                self._waiting -= 1
                self._publish()
            self._inflight += 1
            self._publish()
            waited = monotonic() - entered
            if self._h_queue_wait is not None:
                self._h_queue_wait.observe(waited * 1e3)
            if self._c_admitted is not None:
                self._c_admitted.inc()
            return waited

    def republish(self) -> None:
        """Re-publish the live gauges (after a registry-wide reset)."""
        with self._cond:
            self._publish()

    def release(self) -> None:
        with self._cond:
            self._inflight -= 1
            self._publish()
            # Wake every waiter, not one: a single notify can land on a
            # waiter whose deadline already passed, which sheds without
            # passing the wakeup on — leaving the freed slot idle until
            # another waiter's own timeout fires.  The herd is bounded
            # by max_queue; losers re-wait.
            self._cond.notify_all()

    @contextmanager
    def admitted(self):
        self.acquire()
        try:
            yield
        finally:
            self.release()

    def snapshot(self) -> dict:
        with self._cond:
            return {"inflight": self._inflight, "waiting": self._waiting,
                    "max_inflight": self.max_inflight,
                    "max_queue": self.max_queue}
