"""Per-client sessions: the thread-safe statement surface.

A session serializes its own statements (one client, one ordered
stream) behind a per-session lock; *across* sessions everything runs
concurrently, gated only by admission control.  Dispatch per statement:

- reads go to a forked snapshot pool when one is fresh enough —
  fresh means the pool's schema epoch is current and its dml_clock has
  caught up with this session's own last write (read-your-writes) —
  and run live with a short shared-lock transaction otherwise;
- writes run in the server process through the striped write gate,
  autocommitting through the engine's ordinary 2PL path;
- DDL and explicit write transactions escalate to every stripe;
- ``SNAPSHOT BEGIN`` pins the current data version: until ``SNAPSHOT
  END`` every read in the session sees exactly the rows committed at
  the pin, no matter what other sessions commit meanwhile.

Control statements (BEGIN/COMMIT/ROLLBACK/SNAPSHOT BEGIN/SNAPSHOT END/
SHOW STATEMENTS/STATS RESET) are accepted through
:meth:`Session.execute` too, so a wire client speaks one uniform
statement channel.

Every statement feeds the server's per-fingerprint
:class:`~repro.obs.statstats.StatementStats` and — past the configured
threshold — the slow-query log; when the server's
:class:`~repro.obs.spans.SpanRecorder` samples a request, the whole
journey (admission wait, routing, gate/snapshot waits, compile phases,
execution, worker fragments) lands in one span tree.
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Any, Optional, Sequence

from repro import errors as errors_module
from repro.core.database import Result
from repro.errors import (
    ExecutionError,
    ReproError,
    ServeError,
    SessionClosed,
)


def rebuild_error(class_name: str, message: str) -> ReproError:
    """Reconstruct an engine error that crossed a process or wire
    boundary as (class name, message); unknown names degrade to
    ExecutionError so nothing is swallowed."""
    cls = getattr(errors_module, class_name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    return ExecutionError("%s: %s" % (class_name, message))


class _RequestNote:
    """Mutable routing detail threaded through one statement's dispatch
    so the recording epilogue can feed :class:`StatementStats` and the
    slow-query log without re-deriving how the statement traveled."""

    __slots__ = ("route", "source", "cache_hit", "degraded")

    def __init__(self):
        #: Route kind ("read"/"write"/"ddl"/"meta") or "control".
        self.route: Optional[str] = None
        #: Where it ran: "snapshot", "live", "txn", "write", "ddl",
        #: "control".
        self.source: Optional[str] = None
        #: Worker-side plan-cache hit (snapshot reads only; None when
        #: unknown).
        self.cache_hit: Optional[bool] = None
        #: Why a snapshot read degraded to a live read, when it did.
        self.degraded: Optional[str] = None


class Session:
    """One client's handle on a :class:`~repro.serve.server.Server`."""

    def __init__(self, server):
        self.server = server
        self.db = server.db
        self._lock = threading.RLock()
        self._txn = None
        #: The write gate held for the whole explicit transaction, once
        #: it issues its first write/DDL (entered lazily, exited at
        #: commit/rollback).
        self._txn_gate = None
        self._pinned = None
        self._last_write_clock = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._txn is not None:
                try:
                    self.db.rollback(self._txn)
                finally:
                    self._txn = None
                    self._exit_txn_gate()
            if self._pinned is not None:
                self.server.snapshots.unpin(self._pinned)
                self._pinned = None
            self.server._session_closed()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosed("session is closed")

    # -- transactions --------------------------------------------------------

    def begin(self) -> None:
        with self._lock:
            self._check_open()
            if self._txn is not None:
                raise ServeError("transaction already open")
            self._txn = self.db.begin()

    def commit(self) -> None:
        with self._lock:
            self._check_open()
            if self._txn is None:
                raise ServeError("no open transaction")
            try:
                self.db.commit(self._txn)
            finally:
                self._txn = None
                self._exit_txn_gate()
            self._last_write_clock = self.db.catalog.dml_clock

    def rollback(self) -> None:
        with self._lock:
            self._check_open()
            if self._txn is None:
                raise ServeError("no open transaction")
            try:
                self.db.rollback(self._txn)
            finally:
                self._txn = None
                self._exit_txn_gate()

    def _enter_txn_gate(self) -> None:
        if self._txn_gate is None:
            gate = self.server.write_gate.quiesced()
            gate.__enter__()
            self._txn_gate = gate

    def _exit_txn_gate(self) -> None:
        if self._txn_gate is not None:
            gate, self._txn_gate = self._txn_gate, None
            gate.__exit__(None, None, None)

    # -- snapshots -----------------------------------------------------------

    def begin_snapshot(self) -> None:
        """Pin the current data version for every read until
        :meth:`end_snapshot`.  Where fork() is unavailable this degrades
        to live reads (still consistent per statement via shared locks,
        but not repeatable across statements).

        Rejected inside an explicit transaction: the pin would be
        meaningless (in-txn reads run live under the transaction's own
        2PL scope, never against a pool) and pinning may fork — which
        deadlocks against the write stripes this very thread holds for
        the transaction, and would capture its uncommitted writes in
        the copy-on-write image besides.
        """
        with self._lock:
            self._check_open()
            if self._txn is not None:
                raise ServeError(
                    "SNAPSHOT BEGIN inside an explicit transaction is "
                    "not supported; COMMIT or ROLLBACK first")
            if self._pinned is not None:
                raise ServeError("snapshot already pinned")
            if self.server.snapshots is None:
                return
            self._pinned = self.server.snapshots.pin()

    def end_snapshot(self) -> None:
        with self._lock:
            self._check_open()
            if self._pinned is not None:
                self.server.snapshots.unpin(self._pinned)
                self._pinned = None

    @property
    def snapshot_version(self):
        """The pinned (schema_epoch, stats_epoch, dml_clock), or None."""
        pool = self._pinned
        return pool.version if pool is not None else None

    # -- statements ----------------------------------------------------------

    #: Control statements handled by the session itself, uniform with
    #: SQL so the wire loop needs one channel.
    _CONTROL = {
        "begin": "begin",
        "commit": "commit",
        "rollback": "rollback",
        "snapshot begin": "begin_snapshot",
        "snapshot end": "end_snapshot",
        "show statements": "show_statements",
        "stats reset": "stats_reset",
    }

    def show_statements(self) -> Result:
        """``SHOW STATEMENTS``: the per-fingerprint aggregate report."""
        columns, rows = self.server.statements.result_rows()
        return Result(columns, rows, rowcount=len(rows))

    def stats_reset(self) -> None:
        """``STATS RESET``: zero counters, histograms, and the
        per-statement aggregates (gauges keep their live values)."""
        self.server.reset_stats()

    def execute(self, sql: str, params: Sequence[Any] = (),
                trace=None, managed: bool = False) -> Result:
        """Run one statement (or control command) and return its result.

        Thread-safe: a session serializes its own statements; different
        sessions run concurrently up to the admission limits.

        ``trace`` is an already-open :class:`~repro.obs.spans.
        RequestTrace` whose lifecycle the caller owns (the wire loop
        passes one so its write span is part of the tree); ``managed``
        says the caller owns the sampling decision and slow-query
        logging even when its decision was "don't trace" — otherwise a
        None trace would make the session re-sample and double-log.
        When neither is given, the session asks the server's recorder
        itself and owns finish + slow-query logging.  Either way the
        statement lands in the per-fingerprint stats.
        """
        stripped = sql.strip().rstrip(";").strip()
        owns_trace = trace is None and not managed
        if owns_trace:
            trace = self.server.tracing.maybe_start()
        note = _RequestNote()
        started = perf_counter()
        error: Optional[BaseException] = None
        result: Optional[Result] = None
        try:
            result = self._statement(stripped, params, trace, note)
            if trace is not None:
                # A dynamic attribute: Result stays oblivious, callers
                # (wire encoding, EXPLAIN ANALYZE correlation) getattr.
                result.trace_id = trace.trace_id
            return result
        except BaseException as exc:
            error = exc
            raise
        finally:
            latency_ms = (perf_counter() - started) * 1e3
            self.server.statements.record(
                stripped, latency_ms,
                rows=result.rowcount if result is not None else 0,
                cache_hit=note.cache_hit, source=note.source,
                degraded=note.degraded, error=error is not None)
            if owns_trace:
                if trace is not None:
                    self.server.tracing.finish(trace)
                self.server.maybe_slowlog(
                    statement=stripped, latency_ms=latency_ms,
                    trace=trace, route=note.route, source=note.source,
                    error=error)

    def _statement(self, sql: str, params, trace, note) -> Result:
        control = self._CONTROL.get(sql.lower())
        if control is not None:
            note.route = note.source = "control"
            if trace is not None:
                trace.root.set(route="control")
                # The span covers e.g. SNAPSHOT BEGIN's pin (which may
                # fork a pool) — real time a client waits on.
                with trace.span("control", command=sql.lower()):
                    out = getattr(self, control)()
            else:
                out = getattr(self, control)()
            return out if isinstance(out, Result) \
                else Result([], [], rowcount=0)
        with self._lock:
            self._check_open()
            if trace is not None:
                with trace.span("admission.wait") as span:
                    waited = self.server.admission.acquire()
                    span.set(queued=waited > 0.0)
            else:
                self.server.admission.acquire()
            try:
                return self._dispatch(sql, params, trace, note)
            finally:
                self.server.admission.release()

    def _dispatch(self, sql: str, params: Sequence[Any], trace=None,
                  note=None) -> Result:
        if note is None:
            note = _RequestNote()
        route = self.server.route_for(sql)
        note.route = route.kind
        if trace is not None:
            trace.current().set(route=route.kind)
        if self._txn is not None:
            # Explicit transaction: everything runs live under the
            # engine transaction's own 2PL scope.
            note.source = "txn"
            if route.kind in ("write", "ddl"):
                self._enter_txn_gate()
                result = self.db.execute(sql, params, txn=self._txn,
                                         tracer=trace)
                self.server._c_writes.inc()
                return result
            self.server._c_live_reads.inc()
            with self.server.read_gate.shared():
                return self.db.execute(sql, params, txn=self._txn,
                                       tracer=trace)
        if route.kind == "write":
            note.source = "write"
            return self._write(sql, params, route, trace)
        if route.kind == "ddl":
            note.source = "ddl"
            return self._ddl(sql, params, trace)
        if route.kind == "read":
            return self._read(sql, params, trace, note)
        # meta: EXPLAIN and unparseable text, live in the server.
        note.source = "live"
        self.server._c_live_reads.inc()
        with self.server.read_gate.shared():
            return self.db.execute(sql, params, tracer=trace)

    # -- write path ----------------------------------------------------------

    def _write(self, sql: str, params, route, trace=None) -> Result:
        gate = self.server.write_gate
        indexes = gate.stripe_indexes(route)
        gate_span = None
        if trace is not None:
            # Opened before, closed right after stripe entry: the span
            # is the wait, not the write.
            gate_span = trace.begin("gate.wait", stripes=len(indexes))
        with gate.held(indexes):
            if gate_span is not None:
                trace.end(gate_span)
            result = self.db.execute(sql, params, tracer=trace)
        self._last_write_clock = self.db.catalog.dml_clock
        self.server._c_writes.inc()
        return result

    def _ddl(self, sql: str, params, trace=None) -> Result:
        gate_span = None
        if trace is not None:
            gate_span = trace.begin("gate.wait", stripes="all")
        with self.server.write_gate.quiesced():
            if gate_span is not None:
                trace.end(gate_span)
            result = self.db.execute(sql, params, tracer=trace)
        self._last_write_clock = self.db.catalog.dml_clock
        self.server._c_writes.inc()
        return result

    # -- read path -----------------------------------------------------------

    def _read(self, sql: str, params, trace=None, note=None) -> Result:
        pool = self._pinned
        pinned = pool is not None
        reason = None
        if pool is None and self.server.snapshots is not None:
            candidate = self.server.snapshots.current_pool()
            # Read-your-writes: only serve from a pool that already
            # contains this session's own last committed write.
            if (candidate is not None
                    and candidate.version[2] >= self._last_write_clock):
                pool = candidate
            elif candidate is None:
                reason = "no fresh snapshot pool"
            else:
                reason = ("read-your-writes: pool lags this session's "
                          "last committed write")
        elif pool is None:
            reason = (self.server.snapshot_fallback_reason
                      or "snapshots disabled")
        if trace is not None:
            with trace.span("snapshot.pick") as span:
                span.set(source="snapshot" if pool is not None
                         else "live", pinned=pinned)
                if pool is not None:
                    span.set(version=list(pool.version))
                if reason:
                    span.set(reason=reason)
        if pool is not None:
            result = self._pool_read(pool, sql, params, trace, note)
            if result is not None:
                if note is not None:
                    note.source = "snapshot"
                return result
        if note is not None:
            note.source = "live"
        return self._live_read(sql, params, trace)

    def _pool_read(self, pool, sql, params, trace=None,
                   note=None) -> Optional[Result]:
        options = self.db.settings.compile_options()
        if options.parallelism != "off":
            # Snapshot workers are processes already; forking a morsel
            # pool per worker would stack process trees.
            options = options.replace(parallelism="off")
        span = None
        if trace is not None:
            span = trace.begin("snapshot.execute", workers=len(pool))
        try:
            reply = pool.execute(sql, params, options,
                                 trace_on=trace is not None)
        except ServeError as exc:
            if note is not None:
                note.degraded = str(exc)
            if span is not None:
                span.set(degraded=str(exc))
                trace.end(span)
            if self._pinned is pool:
                # The pinned image is gone; losing the pin is worse
                # than a live read is — surface it.
                raise
            return None
        if reply[0] == "ok":
            _, columns, rows, rowcount, cached, fragment = reply
            if note is not None:
                note.cache_hit = cached
            if span is not None:
                span.set(cached=cached)
                if fragment is not None:
                    trace.attach_worker_fragments(span, [fragment])
                trace.end(span)
            self.server._c_snapshot_reads.inc()
            return Result(columns, rows, rowcount=rowcount)
        if span is not None:
            span.set(error=True)
            trace.end(span)
        _, class_name, message = reply
        raise rebuild_error(class_name, message)

    def _live_read(self, sql: str, params, trace=None) -> Result:
        """Read in the server process under a short shared-lock
        transaction: consistent against concurrent writers (their
        exclusive locks exclude us mid-statement) at the cost of
        possibly waiting for one.  Holds the read gate shared so a
        snapshot fork never captures this statement mid-flight."""
        self.server._c_live_reads.inc()
        with self.server.read_gate.shared():
            txn = self.db.begin()
            try:
                result = self.db.execute(sql, params, txn=txn,
                                         tracer=trace)
            except BaseException:
                self.db.rollback(txn)
                raise
            self.db.commit(txn)
            return result
