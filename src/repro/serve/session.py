"""Per-client sessions: the thread-safe statement surface.

A session serializes its own statements (one client, one ordered
stream) behind a per-session lock; *across* sessions everything runs
concurrently, gated only by admission control.  Dispatch per statement:

- reads go to a forked snapshot pool when one is fresh enough —
  fresh means the pool's schema epoch is current and its dml_clock has
  caught up with this session's own last write (read-your-writes) —
  and run live with a short shared-lock transaction otherwise;
- writes run in the server process through the striped write gate,
  autocommitting through the engine's ordinary 2PL path;
- DDL and explicit write transactions escalate to every stripe;
- ``SNAPSHOT BEGIN`` pins the current data version: until ``SNAPSHOT
  END`` every read in the session sees exactly the rows committed at
  the pin, no matter what other sessions commit meanwhile.

Control statements (BEGIN/COMMIT/ROLLBACK/SNAPSHOT BEGIN/SNAPSHOT END)
are accepted through :meth:`Session.execute` too, so a wire client
speaks one uniform statement channel.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Sequence

from repro import errors as errors_module
from repro.core.database import Result
from repro.errors import (
    ExecutionError,
    ReproError,
    ServeError,
    SessionClosed,
)


def rebuild_error(class_name: str, message: str) -> ReproError:
    """Reconstruct an engine error that crossed a process or wire
    boundary as (class name, message); unknown names degrade to
    ExecutionError so nothing is swallowed."""
    cls = getattr(errors_module, class_name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    return ExecutionError("%s: %s" % (class_name, message))


class Session:
    """One client's handle on a :class:`~repro.serve.server.Server`."""

    def __init__(self, server):
        self.server = server
        self.db = server.db
        self._lock = threading.RLock()
        self._txn = None
        #: The write gate held for the whole explicit transaction, once
        #: it issues its first write/DDL (entered lazily, exited at
        #: commit/rollback).
        self._txn_gate = None
        self._pinned = None
        self._last_write_clock = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._txn is not None:
                try:
                    self.db.rollback(self._txn)
                finally:
                    self._txn = None
                    self._exit_txn_gate()
            if self._pinned is not None:
                self.server.snapshots.unpin(self._pinned)
                self._pinned = None
            self.server._session_closed()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosed("session is closed")

    # -- transactions --------------------------------------------------------

    def begin(self) -> None:
        with self._lock:
            self._check_open()
            if self._txn is not None:
                raise ServeError("transaction already open")
            self._txn = self.db.begin()

    def commit(self) -> None:
        with self._lock:
            self._check_open()
            if self._txn is None:
                raise ServeError("no open transaction")
            try:
                self.db.commit(self._txn)
            finally:
                self._txn = None
                self._exit_txn_gate()
            self._last_write_clock = self.db.catalog.dml_clock

    def rollback(self) -> None:
        with self._lock:
            self._check_open()
            if self._txn is None:
                raise ServeError("no open transaction")
            try:
                self.db.rollback(self._txn)
            finally:
                self._txn = None
                self._exit_txn_gate()

    def _enter_txn_gate(self) -> None:
        if self._txn_gate is None:
            gate = self.server.write_gate.quiesced()
            gate.__enter__()
            self._txn_gate = gate

    def _exit_txn_gate(self) -> None:
        if self._txn_gate is not None:
            gate, self._txn_gate = self._txn_gate, None
            gate.__exit__(None, None, None)

    # -- snapshots -----------------------------------------------------------

    def begin_snapshot(self) -> None:
        """Pin the current data version for every read until
        :meth:`end_snapshot`.  Where fork() is unavailable this degrades
        to live reads (still consistent per statement via shared locks,
        but not repeatable across statements).

        Rejected inside an explicit transaction: the pin would be
        meaningless (in-txn reads run live under the transaction's own
        2PL scope, never against a pool) and pinning may fork — which
        deadlocks against the write stripes this very thread holds for
        the transaction, and would capture its uncommitted writes in
        the copy-on-write image besides.
        """
        with self._lock:
            self._check_open()
            if self._txn is not None:
                raise ServeError(
                    "SNAPSHOT BEGIN inside an explicit transaction is "
                    "not supported; COMMIT or ROLLBACK first")
            if self._pinned is not None:
                raise ServeError("snapshot already pinned")
            if self.server.snapshots is None:
                return
            self._pinned = self.server.snapshots.pin()

    def end_snapshot(self) -> None:
        with self._lock:
            self._check_open()
            if self._pinned is not None:
                self.server.snapshots.unpin(self._pinned)
                self._pinned = None

    @property
    def snapshot_version(self):
        """The pinned (schema_epoch, stats_epoch, dml_clock), or None."""
        pool = self._pinned
        return pool.version if pool is not None else None

    # -- statements ----------------------------------------------------------

    #: Control statements handled by the session itself, uniform with
    #: SQL so the wire loop needs one channel.
    _CONTROL = {
        "begin": "begin",
        "commit": "commit",
        "rollback": "rollback",
        "snapshot begin": "begin_snapshot",
        "snapshot end": "end_snapshot",
    }

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Result:
        """Run one statement (or control command) and return its result.

        Thread-safe: a session serializes its own statements; different
        sessions run concurrently up to the admission limits.
        """
        stripped = sql.strip().rstrip(";").strip()
        control = self._CONTROL.get(stripped.lower())
        if control is not None:
            getattr(self, control)()
            return Result([], [], rowcount=0)
        with self._lock:
            self._check_open()
            with self.server.admission.admitted():
                return self._dispatch(stripped, params)

    def _dispatch(self, sql: str, params: Sequence[Any]) -> Result:
        route = self.server.route_for(sql)
        if self._txn is not None:
            # Explicit transaction: everything runs live under the
            # engine transaction's own 2PL scope.
            if route.kind in ("write", "ddl"):
                self._enter_txn_gate()
                result = self.db.execute(sql, params, txn=self._txn)
                self.server._c_writes.inc()
                return result
            self.server._c_live_reads.inc()
            with self.server.read_gate.shared():
                return self.db.execute(sql, params, txn=self._txn)
        if route.kind == "write":
            return self._write(sql, params, route)
        if route.kind == "ddl":
            return self._ddl(sql, params)
        if route.kind == "read":
            return self._read(sql, params)
        # meta: EXPLAIN and unparseable text, live in the server.
        self.server._c_live_reads.inc()
        with self.server.read_gate.shared():
            return self.db.execute(sql, params)

    # -- write path ----------------------------------------------------------

    def _write(self, sql: str, params, route) -> Result:
        gate = self.server.write_gate
        with gate.held(gate.stripe_indexes(route)):
            result = self.db.execute(sql, params)
        self._last_write_clock = self.db.catalog.dml_clock
        self.server._c_writes.inc()
        return result

    def _ddl(self, sql: str, params) -> Result:
        with self.server.write_gate.quiesced():
            result = self.db.execute(sql, params)
        self._last_write_clock = self.db.catalog.dml_clock
        self.server._c_writes.inc()
        return result

    # -- read path -----------------------------------------------------------

    def _read(self, sql: str, params) -> Result:
        pool = self._pinned
        if pool is None and self.server.snapshots is not None:
            candidate = self.server.snapshots.current_pool()
            # Read-your-writes: only serve from a pool that already
            # contains this session's own last committed write.
            if (candidate is not None
                    and candidate.version[2] >= self._last_write_clock):
                pool = candidate
        if pool is not None:
            result = self._pool_read(pool, sql, params)
            if result is not None:
                return result
        return self._live_read(sql, params)

    def _pool_read(self, pool, sql, params) -> Optional[Result]:
        options = self.db.settings.compile_options()
        if options.parallelism != "off":
            # Snapshot workers are processes already; forking a morsel
            # pool per worker would stack process trees.
            options = options.replace(parallelism="off")
        try:
            reply = pool.execute(sql, params, options)
        except ServeError:
            if self._pinned is pool:
                # The pinned image is gone; losing the pin is worse
                # than a live read is — surface it.
                raise
            return None
        if reply[0] == "ok":
            _, columns, rows, rowcount = reply
            self.server._c_snapshot_reads.inc()
            return Result(columns, rows, rowcount=rowcount)
        _, class_name, message = reply
        raise rebuild_error(class_name, message)

    def _live_read(self, sql: str, params) -> Result:
        """Read in the server process under a short shared-lock
        transaction: consistent against concurrent writers (their
        exclusive locks exclude us mid-statement) at the cost of
        possibly waiting for one.  Holds the read gate shared so a
        snapshot fork never captures this statement mid-flight."""
        self.server._c_live_reads.inc()
        with self.server.read_gate.shared():
            txn = self.db.begin()
            try:
                result = self.db.execute(sql, params, txn=txn)
            except BaseException:
                self.db.rollback(txn)
                raise
            self.db.commit(txn)
            return result
