"""The line-protocol wire loop.

One TCP connection = one session.  Requests are single lines of UTF-8
text — a SQL statement, or a control statement (``BEGIN``, ``COMMIT``,
``ROLLBACK``, ``SNAPSHOT BEGIN``, ``SNAPSHOT END``, ``QUIT``).  A
response is::

    OK <rowcount>
    *col1<TAB>col2
    v1<TAB>v2
    ...
    .

or ``ERR <ErrorClass> <escaped message>`` on failure.  Values — and
column names, which an alias can lace with tabs — are tab-separated
with ``\\t``/``\\n``/``\\r``/``\\\\`` escapes and ``\\N`` for NULL, so
any value round-trips through one line.

The same loop answers ``GET /metrics`` (detected from the first line of
a connection) with the database's Prometheus text exposition, so one
port serves both clients and scrapes.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import List, Optional, Tuple

_ESCAPES = [("\\", "\\\\"), ("\t", "\\t"), ("\n", "\\n"), ("\r", "\\r")]


def escape_value(value) -> str:
    """One result value as one tab-field."""
    if value is None:
        return "\\N"
    text = value if isinstance(value, str) else str(value)
    for raw, escaped in _ESCAPES:
        text = text.replace(raw, escaped)
    return text


def unescape_value(field: str) -> Optional[str]:
    if field == "\\N":
        return None
    out: List[str] = []
    index = 0
    while index < len(field):
        char = field[index]
        if char == "\\" and index + 1 < len(field):
            nxt = field[index + 1]
            out.append({"\\": "\\", "t": "\t", "n": "\n",
                        "r": "\r"}.get(nxt, nxt))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def encode_result(result) -> str:
    status = "OK %d" % result.rowcount
    trace_id = getattr(result, "trace_id", None)
    if trace_id:
        # Sampled requests advertise their trace so a client can
        # correlate its own latency with the server-side span tree.
        status += " trace=%s" % trace_id
    lines = [status,
             "*" + "\t".join(escape_value(name)
                             for name in result.columns)]
    for row in result.rows:
        lines.append("\t".join(escape_value(value) for value in row))
    lines.append(".")
    return "\n".join(lines) + "\n"


def encode_error(exc: BaseException) -> str:
    message = escape_value(str(exc)) or "-"
    return "ERR %s %s\n" % (type(exc).__name__, message)


class TCPServer:
    """Thread-per-connection line-protocol front end for a
    :class:`repro.serve.server.Server`."""

    def __init__(self, server, host: str = "127.0.0.1", port: int = 0):
        self.server = server
        self.host = host
        self.port = port
        self._sock: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: List[socket.socket] = []
        self._conns_lock = threading.Lock()
        self._stopping = threading.Event()

    def start(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.host, self.port))
        sock.listen(128)
        self.port = sock.getsockname()[1]
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True)
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                break
            with self._conns_lock:
                self._conns.append(conn)
            threading.Thread(target=self._serve_connection,
                             args=(conn,), daemon=True).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        session = None
        reader = conn.makefile("r", encoding="utf-8", newline="\n")
        writer = conn.makefile("w", encoding="utf-8", newline="\n")
        try:
            session = self.server.session()
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("GET "):
                    self._serve_http(writer, line)
                    return
                if line.upper() == "QUIT":
                    writer.write("OK 0\n.\n")
                    writer.flush()
                    return
                # The wire loop owns the trace so the response
                # write/flush is inside the tree; the session records
                # statement stats either way.
                trace = self.server.tracing.maybe_start()
                started = time.perf_counter()
                error = None
                try:
                    result = session.execute(line, trace=trace,
                                             managed=True)
                    payload = encode_result(result)
                except Exception as exc:
                    error = exc
                    payload = encode_error(exc)
                if trace is not None:
                    with trace.span("wire.write",
                                    bytes=len(payload)):
                        writer.write(payload)
                        writer.flush()
                    self.server.tracing.finish(trace)
                else:
                    writer.write(payload)
                    writer.flush()
                self.server.maybe_slowlog(
                    statement=line,
                    latency_ms=(time.perf_counter() - started) * 1e3,
                    trace=trace, error=error)
        except (BrokenPipeError, ConnectionResetError, OSError,
                ValueError):
            pass  # client went away mid-statement
        finally:
            if session is not None:
                session.close()
            for handle in (reader, writer):
                try:
                    handle.close()
                except OSError:
                    pass
            try:
                conn.close()
            except OSError:
                pass
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _serve_http(self, writer, request_line: str) -> None:
        """Minimal one-shot HTTP: ``GET /metrics`` gets the Prometheus
        exposition, ``GET /statements`` the per-fingerprint aggregates
        as JSON, anything else a 404.  The connection closes after the
        response (HTTP/1.0 semantics)."""
        import json

        path = request_line.split()[1] if len(
            request_line.split()) > 1 else "/"
        path = path.split("?")[0]
        if path == "/metrics":
            body = self.server.metrics_exposition()
            status = "200 OK"
            content_type = "text/plain; version=0.0.4"
        elif path == "/statements":
            body = json.dumps(self.server.statements.report(),
                              default=repr) + "\n"
            status = "200 OK"
            content_type = "application/json"
        else:
            body = "only /metrics and /statements live here\n"
            status = "404 Not Found"
            content_type = "text/plain"
        writer.write(
            "HTTP/1.0 %s\r\nContent-Type: %s\r\n"
            "Content-Length: %d\r\nConnection: close\r\n\r\n%s"
            % (status, content_type, len(body.encode("utf-8")), body))
        writer.flush()

    def serve_until_interrupt(self) -> None:  # pragma: no cover - CLI
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass

    def stop(self) -> None:
        self._stopping.set()
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)
