"""Snapshot-isolated reads via forked copy-on-write worker pools.

The engine has no storage-level MVCC, but it does not need one to give
readers a consistent view: ``fork()`` *is* a snapshot.  A
:class:`SnapshotPool` forks N worker processes while the server holds
every write stripe and has drained live readers (so no statement at
all is mid-flight), stamping
the pool with the database's data version — the same
``(schema_epoch, stats_epoch, dml_clock)`` triple the parallel runtime
keys its morsel pool on.  Every read the pool serves sees exactly the
committed state at fork time, no matter what writers commit in the
parent afterwards, and never takes an engine lock — readers cannot
block behind writers by construction.

A :class:`SnapshotManager` keeps one *current* pool fresh (re-forking on
a bounded-staleness timer when the data version moves) and lets sessions
*pin* pools: ``SNAPSHOT BEGIN`` refcounts the pool it pins so the old
image stays alive — and keeps serving the old rows — until the session
releases it, which is the whole of snapshot isolation here.  Retired
pools are terminated once the last pin drops.

Workers execute whole read statements shipped over a pipe and return
materialized ``(columns, rows, rowcount)``; the parent thread blocks in
``Connection.recv`` — which releases the GIL — so N clients reading
through N workers scale across cores, which is what the serving
benchmark's throughput gate measures.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import threading
from typing import List, Optional, Tuple

from repro.errors import ServeError

#: The Database a snapshot worker operates on.  Set in the parent
#: immediately before fork; children inherit it (same idiom as
#: ``repro.executor.parallel``).
_FORK_DB = None


def _snapshot_worker_main(conn) -> None:
    """Run one snapshot worker: a request loop over an inherited pipe.

    The child first makes its copy-on-write database image safe to use:
    every lock the parent's *threads* might have held at fork time is
    re-initialized, and the parent's parallel worker pool reference is
    dropped without closing it (closing would terminate the parent's
    processes — the handle is shared, the pool is not ours).
    """
    db = _FORK_DB
    db.reinit_locks_after_fork()
    db._parallel_runtime = None
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message is None:
            break
        sql, params, options, trace_on = message
        try:
            wtrace = None
            if trace_on:
                from repro.obs.spans import RequestTrace

                # Monotonic-ns timestamps are system-wide, so this
                # fragment slots straight into the parent's tree.
                wtrace = RequestTrace("worker", name="snapshot.worker")
                wtrace.root.set(pid=os.getpid())
            result = db.execute(sql, params, options=options,
                                tracer=wtrace)
            cached = False
            fragment = None
            if wtrace is not None:
                wtrace.finish()
                fragment = wtrace.root.export()
            if result.timings is not None:
                cached = result.timings.pipeline == "cached"
            conn.send(("ok", result.columns, result.rows,
                       result.rowcount, cached, fragment))
        except BaseException as exc:  # ship the error, keep serving
            conn.send(("err", type(exc).__name__, str(exc)))
    conn.close()


class SnapshotWorker:
    """One forked worker process plus the parent end of its pipe."""

    def __init__(self, context, db):
        global _FORK_DB
        parent_conn, child_conn = context.Pipe(duplex=True)
        _FORK_DB = db
        self.process = context.Process(
            target=_snapshot_worker_main, args=(child_conn,), daemon=True)
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    def stop(self) -> None:
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join(timeout=2.0)
        self.conn.close()


class SnapshotPool:
    """N forked workers serving reads against one frozen data version."""

    def __init__(self, db, workers: int, version: Tuple[int, int, int]):
        self.version = version
        self.closed = False
        self.pins = 0
        context = multiprocessing.get_context("fork")
        self._workers: List[SnapshotWorker] = [
            SnapshotWorker(context, db) for _ in range(max(1, workers))]
        self._free: "queue_module.Queue[SnapshotWorker]" = \
            queue_module.Queue()
        for worker in self._workers:
            self._free.put(worker)
        #: In-flight reads lease the pool: terminate() must not close a
        #: pipe a reader thread is blocked in recv() on (the manager can
        #: retire the current pool between a session fetching it and the
        #: read finishing), so shutdown defers until leases drain.
        self._state_lock = threading.Lock()
        self._leases = 0
        self._terminating = False

    def execute(self, sql: str, params, options,
                trace_on: bool = False) -> Tuple:
        """Run one read in a snapshot worker.  Returns ``("ok", columns,
        rows, rowcount, cached, fragment)`` — ``cached`` flags a worker
        plan-cache hit, ``fragment`` is the worker's span export when
        ``trace_on`` (None otherwise) — or ``("err", error_class_name,
        message)``, which the caller wraps in the rebuilt engine error.
        Raises :class:`ServeError` if the pool is retired or its workers
        died."""
        with self._state_lock:
            if self.closed or self._terminating:
                raise ServeError("snapshot pool is retired")
            self._leases += 1
        try:
            worker = self._free.get()
            try:
                worker.conn.send((sql, tuple(params), options, trace_on))
                reply = worker.conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                # A dead worker poisons only itself; the session retries
                # the read live and the manager re-forks on the next
                # refresh.
                raise ServeError("snapshot worker died: %r" % (exc,))
            finally:
                self._free.put(worker)
            return reply
        finally:
            with self._state_lock:
                self._leases -= 1
                drain = self._terminating and self._leases == 0
            if drain:
                self._shutdown()

    def terminate(self) -> None:
        with self._state_lock:
            if self.closed or self._terminating:
                return
            self._terminating = True
            drain = self._leases == 0
        if drain:
            self._shutdown()

    def _shutdown(self) -> None:
        with self._state_lock:
            if self.closed:
                return
            self.closed = True
        for worker in self._workers:
            worker.stop()

    def __len__(self) -> int:
        return len(self._workers)


class SnapshotManager:
    """Keeps the current snapshot pool fresh; refcounts pinned pools.

    ``fork_gate`` is the server's quiesce context manager: it holds all
    write stripes *and* the read gate exclusively for the duration of a
    fork, so neither a writer transaction nor a live reader is
    mid-flight inside the copy-on-write image.
    """

    def __init__(self, db, workers: int, refresh_s: float, fork_gate,
                 metrics=None):
        self.db = db
        self.workers = workers
        self.refresh_s = refresh_s
        self._fork_gate = fork_gate
        self._lock = threading.Lock()
        self._current: Optional[SnapshotPool] = None
        self._retired: List[SnapshotPool] = []
        self._stop = threading.Event()
        self._refresher: Optional[threading.Thread] = None
        self._c_forks = (metrics.counter(
            "serve_snapshot_forks_total", "Snapshot pools forked")
            if metrics is not None else None)
        self._g_pools = (metrics.gauge(
            "serve_snapshot_pools", "Snapshot pools alive (current + "
            "pinned retirees)") if metrics is not None else None)
        self._h_fork = (metrics.histogram(
            "serve_snapshot_fork_ms",
            "Milliseconds spent quiesced while forking a snapshot pool")
            if metrics is not None else None)

    # -- version bookkeeping -------------------------------------------------

    def data_version(self) -> Tuple[int, int, int]:
        catalog = self.db.catalog
        return (catalog.schema_epoch, catalog.stats_epoch,
                catalog.dml_clock)

    def _fork_pool(self) -> SnapshotPool:
        """Fork a pool at the *committed now*: quiesce writers and live
        readers, stamp the version, fork.  Caller holds self._lock."""
        from time import monotonic

        started = monotonic()
        with self._fork_gate():
            version = self.data_version()
            pool = SnapshotPool(self.db, self.workers, version)
        if self._c_forks is not None:
            self._c_forks.inc()
        if self._h_fork is not None:
            self._h_fork.observe((monotonic() - started) * 1e3)
        self._publish()
        return pool

    def _publish(self) -> None:
        if self._g_pools is not None:
            alive = len(self._retired) + (1 if self._current else 0)
            self._g_pools.set(alive)

    def republish(self) -> None:
        """Re-publish the live gauge (after a registry-wide reset)."""
        with self._lock:
            self._publish()

    # -- the serving surface -------------------------------------------------

    def current_pool(self) -> Optional[SnapshotPool]:
        """The pool serving unpinned reads, or None when reads must run
        live.  The pool may lag the database by up to ``refresh_s`` of
        committed DML (bounded staleness) but is refused outright when
        its *schema* epoch is stale: rows under an old schema are merely
        old, rows under an old catalog are wrong."""
        with self._lock:
            pool = self._current
            if pool is None:
                return None
            if pool.version[0] != self.db.catalog.schema_epoch:
                return None
            return pool

    def pin(self) -> SnapshotPool:
        """Pin a pool at the database's exact current version (forking a
        fresh one if the current pool lags), for ``SNAPSHOT BEGIN``."""
        with self._lock:
            version = self.data_version()
            if self._current is None or self._current.version != version:
                self._swap_locked(self._fork_pool())
            self._current.pins += 1
            return self._current

    def unpin(self, pool: SnapshotPool) -> None:
        with self._lock:
            pool.pins -= 1
            self._reap_locked()

    def _swap_locked(self, pool: SnapshotPool) -> None:
        old = self._current
        self._current = pool
        if old is not None:
            self._retired.append(old)
        self._reap_locked()

    def _reap_locked(self) -> None:
        keep = []
        for pool in self._retired:
            if pool.pins > 0:
                keep.append(pool)
            else:
                pool.terminate()
        self._retired = keep
        self._publish()

    # -- freshness -----------------------------------------------------------

    def refresh(self, force: bool = False) -> bool:
        """One synchronous freshness check: re-fork the current pool if
        the data version moved (or ``force``).  Returns True when a new
        pool was installed.  Tests call this instead of waiting out the
        refresh timer."""
        with self._lock:
            if (not force and self._current is not None
                    and self._current.version == self.data_version()):
                return False
            self._swap_locked(self._fork_pool())
            return True

    def start(self) -> None:
        """Fork the initial pool and start the background refresher."""
        self.refresh(force=True)
        self._refresher = threading.Thread(
            target=self._refresh_loop, name="snapshot-refresher",
            daemon=True)
        self._refresher.start()

    def _refresh_loop(self) -> None:
        while not self._stop.wait(self.refresh_s):
            try:
                self.refresh()
            except Exception:  # pragma: no cover - refresh is best-effort
                # A failed re-fork (e.g. resource exhaustion) keeps the
                # old pool serving; the next tick tries again.
                pass

    def close(self) -> None:
        self._stop.set()
        if self._refresher is not None:
            self._refresher.join(timeout=2 * self.refresh_s + 2.0)
        with self._lock:
            if self._current is not None:
                self._retired.append(self._current)
                self._current = None
            for pool in self._retired:
                pool.terminate()
            self._retired = []
            self._publish()

    def stats(self) -> dict:
        with self._lock:
            return {
                "current_version": (self._current.version
                                    if self._current else None),
                "data_version": self.data_version(),
                "retired": len(self._retired),
                "workers": (len(self._current)
                            if self._current else 0),
            }
