"""The concurrent serving layer.

Starburst was built to sit under real applications with many concurrent
clients; this package turns the single-caller engine into a server:

- :class:`Session` — a thread-safe per-client handle with explicit
  transactions and snapshot-isolated reads (readers pin a
  ``(schema_epoch, stats_epoch, dml_clock)`` snapshot held open by a
  forked copy-on-write worker pool, and never block behind writers);
- :class:`Server` — owns the admission controller (bounded inflight,
  bounded wait queue, shed-on-overload), the striped write path that
  serializes writers without stopping readers, and the snapshot pools;
- :class:`TCPServer` / :class:`WireClient` — a line-protocol wire loop
  over TCP sockets (``python -m repro.serve.server``) that also answers
  ``GET /metrics`` with the Prometheus text exposition.

See DESIGN.md ("Concurrent serving layer") for the lifecycle diagrams
and the documented degradation matrix.
"""

from repro.serve.admission import AdmissionController
from repro.serve.server import Route, ServeSettings, Server
from repro.serve.session import Session
from repro.serve.snapshot import SnapshotManager, SnapshotPool
from repro.serve.wire import TCPServer
from repro.serve.client import WireClient

__all__ = [
    "AdmissionController",
    "Route",
    "ServeSettings",
    "Server",
    "Session",
    "SnapshotManager",
    "SnapshotPool",
    "TCPServer",
    "WireClient",
]
