"""A small client for the line protocol (tests, benchmarks, demos).

``WireClient`` speaks :mod:`repro.serve.wire` over a TCP socket.  Wire
values come back as strings (or None for NULL) — the protocol is
text-typed; tests that need engine-typed values use an in-process
:class:`repro.serve.session.Session` instead.
"""

from __future__ import annotations

import socket
from typing import List, Optional, Tuple

from repro.errors import ServeError
from repro.serve.session import rebuild_error
from repro.serve.wire import unescape_value


class WireResult:
    """Decoded response: columns, rows of Optional[str], rowcount, and
    the server-side trace id when the request was sampled."""

    __slots__ = ("columns", "rows", "rowcount", "trace_id")

    def __init__(self, columns: List[str],
                 rows: List[Tuple[Optional[str], ...]], rowcount: int,
                 trace_id: Optional[str] = None):
        self.columns = columns
        self.rows = rows
        self.rowcount = rowcount
        self.trace_id = trace_id

    def __len__(self) -> int:
        return len(self.rows)


class WireClient:
    """One connection = one server-side session."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8",
                                           newline="\n")
        self._writer = self._sock.makefile("w", encoding="utf-8",
                                           newline="\n")

    def execute(self, sql: str) -> WireResult:
        if "\n" in sql:
            raise ServeError("the line protocol takes one-line "
                             "statements; got an embedded newline")
        self._writer.write(sql.strip() + "\n")
        self._writer.flush()
        status = self._reader.readline()
        if not status:
            raise ServeError("server closed the connection")
        status = status.rstrip("\n")
        if status.startswith("ERR "):
            _tag, class_name, message = status.split(" ", 2)
            raise rebuild_error(class_name,
                                unescape_value(message) or "")
        if not status.startswith("OK "):
            raise ServeError("malformed status line: %r" % status)
        parts = status[3:].split()
        rowcount = int(parts[0])
        trace_id = None
        for extra in parts[1:]:
            if extra.startswith("trace="):
                trace_id = extra[6:]
        columns: List[str] = []
        rows: List[Tuple[Optional[str], ...]] = []
        while True:
            line = self._reader.readline()
            if not line:
                raise ServeError("connection dropped mid-result")
            line = line.rstrip("\n")
            if line == ".":
                break
            if line.startswith("*"):
                # Column names travel escaped like values (an alias can
                # contain a tab or newline); they are never NULL.
                columns = ([unescape_value(field) or ""
                            for field in line[1:].split("\t")]
                           if len(line) > 1 else [])
                continue
            rows.append(tuple(unescape_value(field)
                              for field in line.split("\t")))
        return WireResult(columns, rows, rowcount, trace_id=trace_id)

    def close(self) -> None:
        try:
            self._writer.write("QUIT\n")
            self._writer.flush()
        except (BrokenPipeError, OSError, ValueError):
            pass
        for handle in (self._reader, self._writer):
            try:
                handle.close()
            except OSError:
                pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _http_get(host: str, port: int, path: str, timeout: float) -> str:
    """One-shot HTTP GET against the serving port; returns the body."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(("GET %s HTTP/1.0\r\n\r\n" % path).encode("ascii"))
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    payload = b"".join(chunks).decode("utf-8", "replace")
    if "\r\n\r\n" not in payload:
        raise ServeError("malformed HTTP response")
    return payload.split("\r\n\r\n", 1)[1]


def fetch_metrics(host: str, port: int, timeout: float = 10.0) -> str:
    """Scrape ``GET /metrics`` from a serving port; returns the
    Prometheus text body."""
    return _http_get(host, port, "/metrics", timeout)


def fetch_statements(host: str, port: int,
                     timeout: float = 10.0) -> list:
    """Fetch ``GET /statements``: the per-fingerprint aggregates as a
    list of dicts (heaviest total time first)."""
    import json

    return json.loads(_http_get(host, port, "/statements", timeout))
