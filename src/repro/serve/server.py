"""The serving core: settings, statement routing, the striped write
path, and the :class:`Server` that sessions hang off.

Run ``python -m repro.serve.server --port 5433`` to serve a database
over the line protocol (see :mod:`repro.serve.wire`); drive it with
:class:`repro.serve.client.WireClient` or a raw ``nc`` session.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.language import ast
from repro.language.parser import parse_statement
from repro.serve.admission import AdmissionController
from repro.serve.snapshot import SnapshotManager


class ServeSettings:
    """Serving-layer knobs (engine knobs stay on ``db.settings``)."""

    def __init__(self):
        #: Statements executing at once before admission queues.
        self.max_inflight = 8
        #: Statements allowed to wait for a slot before shedding.
        self.max_queue = 16
        #: How long a queued statement waits before it is shed.
        self.admission_timeout_s = 1.0
        #: Write stripes: writers to the same table serialize on one
        #: stripe; writers to different tables (usually) proceed in
        #: parallel; DDL and multi-table writers take every stripe.
        self.write_stripes = 8
        #: Workers per snapshot pool (the read fan-out ceiling).
        self.snapshot_workers = 8
        #: Bounded staleness of unpinned snapshot reads: the refresher
        #: re-forks the pool at most this often when data changed.
        self.snapshot_refresh_s = 0.25
        #: Master switch; forced off where fork() is unavailable.
        self.snapshots_enabled = True
        #: Request-trace sampling: "off", "always", or a ratio in (0, 1)
        #: (e.g. 0.25 traces every 4th request, deterministically).
        self.trace_sample = "off"
        #: Statements slower than this (server-side ms) emit one JSON
        #: line to the slow-query log; None disables the log.
        self.slow_query_ms: Optional[float] = None
        #: File the slow-query log appends to (None: in-memory ring
        #: only).
        self.slow_query_log_path: Optional[str] = None
        #: Distinct statement fingerprints SHOW STATEMENTS keeps (LRU).
        self.statement_stats_capacity = 512


class Route:
    """How one statement travels through the server."""

    __slots__ = ("kind", "tables", "escalate")

    #: kind is one of:
    #: - "read"  — SELECT: snapshot pool when fresh enough, else live
    #: - "write" — INSERT/UPDATE/DELETE: striped, in-parent, autocommit
    #: - "ddl"   — CREATE/DROP: all stripes, in-parent
    #: - "meta"  — EXPLAIN and anything unparseable: live in-parent
    def __init__(self, kind: str, tables: Tuple[str, ...] = (),
                 escalate: bool = False):
        self.kind = kind
        self.tables = tables
        #: Multi-table writers (INSERT ... SELECT, subqueried
        #: UPDATE/DELETE) take every stripe: their engine locks span
        #: tables, and two of them crossing stripes could deadlock.
        self.escalate = escalate


def classify(sql: str) -> Route:
    """One parse decides a statement's route; the server memoizes this
    per SQL text, so the per-statement cost is one dict hit."""
    try:
        statement = parse_statement(sql)
    except ReproError:
        # Unparseable text routes live so the ordinary compile path
        # raises its error through the usual channel.
        return Route("meta")
    if isinstance(statement, ast.InsertStmt):
        return Route("write", (statement.table_name,),
                     escalate=statement.query is not None)
    if isinstance(statement, (ast.UpdateStmt, ast.DeleteStmt)):
        return Route("write", (statement.table_name,),
                     escalate="select" in sql.lower())
    if isinstance(statement, (ast.CreateTableStmt, ast.CreateIndexStmt,
                              ast.CreateViewStmt, ast.DropStmt)):
        return Route("ddl")
    if isinstance(statement, ast.ExplainStmt):
        return Route("meta")
    return Route("read")


class WriteGate:
    """The striped write path.

    N plain locks; a writer takes the stripes of the tables it writes
    (sorted, so two writers can never hold-and-wait in opposite orders)
    and holds them for the statement.  Readers never touch stripes —
    they either read a forked snapshot or take engine S-locks — so
    writers serialize only against writers.
    """

    def __init__(self, stripes: int):
        self._locks = [threading.Lock() for _ in range(max(1, stripes))]

    def stripe_indexes(self, route: Route) -> List[int]:
        if route.escalate or not route.tables:
            return list(range(len(self._locks)))
        return sorted({hash(name.lower()) % len(self._locks)
                       for name in route.tables})

    @contextmanager
    def held(self, indexes: List[int]):
        acquired = []
        try:
            for index in indexes:
                self._locks[index].acquire()
                acquired.append(index)
            yield
        finally:
            for index in reversed(acquired):
                self._locks[index].release()

    @contextmanager
    def quiesced(self):
        """All stripes: no writer statement is mid-flight inside.  Used
        by DDL, explicit write transactions, and snapshot forks."""
        with self.held(list(range(len(self._locks)))):
            yield


class ReadGate:
    """Shared/exclusive gate between in-server live readers and
    snapshot forks.

    Live reads (and meta statements) run engine code in the server
    process; a fork taken while one is mid-statement would capture its
    half-done state in the copy-on-write image — a buffer-pool frame
    pinned by a reader that will never unpin it in the child, a clock
    ring caught between steps of an install.  So a fork drains them
    first: readers enter *shared* (counted, concurrent with each
    other), a fork enters *exclusive* — it blocks new readers, waits
    for in-flight ones to finish, forks, and lets readers resume.
    Readers only ever wait out a fork (milliseconds, bounded by process
    spawn), never each other.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._exclusive = False

    @contextmanager
    def shared(self):
        with self._cond:
            while self._exclusive:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def exclusive(self):
        with self._cond:
            while self._exclusive:
                self._cond.wait()
            self._exclusive = True
            while self._readers:
                self._cond.wait()
        try:
            yield
        finally:
            with self._cond:
                self._exclusive = False
                self._cond.notify_all()


class Server:
    """One database, served to many concurrent sessions.

    Owns the admission controller, the write gate, and the snapshot
    manager; :meth:`session` hands out :class:`~repro.serve.session.
    Session` handles (thread-safe, one per client).
    """

    def __init__(self, db, settings: Optional[ServeSettings] = None):
        from repro.executor.parallel import fork_available

        self.db = db
        self.settings = settings if settings is not None \
            else ServeSettings()
        self.admission = AdmissionController(
            self.settings.max_inflight, self.settings.max_queue,
            self.settings.admission_timeout_s, metrics=db.metrics)
        self.write_gate = WriteGate(self.settings.write_stripes)
        self.read_gate = ReadGate()
        self._routes: Dict[str, Route] = {}
        self._routes_lock = threading.Lock()
        self._sessions_alive = 0
        self._sessions_lock = threading.Lock()
        self._g_sessions = db.metrics.gauge(
            "serve_sessions", "Sessions currently open")
        self._c_snapshot_reads = db.metrics.counter(
            "serve_snapshot_reads_total",
            "Reads served from a forked snapshot pool")
        self._c_live_reads = db.metrics.counter(
            "serve_live_reads_total",
            "Reads served live in the server process")
        self._c_writes = db.metrics.counter(
            "serve_writes_total", "Write statements executed")
        from repro.obs.slowlog import SlowQueryLog
        from repro.obs.spans import SpanRecorder
        from repro.obs.statstats import StatementStats

        #: Request-trace sampling decision + ring of completed traces.
        self.tracing = SpanRecorder(self.settings.trace_sample)
        #: Per-fingerprint aggregates behind SHOW STATEMENTS and
        #: GET /statements.
        self.statements = StatementStats(
            self.settings.statement_stats_capacity)
        #: One JSON line per statement over the latency threshold.
        self.slowlog = SlowQueryLog(
            self.settings.slow_query_ms,
            path=self.settings.slow_query_log_path)
        self.snapshot_fallback_reason: Optional[str] = None
        self.snapshots: Optional[SnapshotManager] = None
        if self.settings.snapshots_enabled and fork_available():
            self.snapshots = SnapshotManager(
                db, self.settings.snapshot_workers,
                self.settings.snapshot_refresh_s,
                self._fork_quiesce, metrics=db.metrics)
            self.snapshots.start()
        else:
            from repro.executor.parallel import disabled_reason

            self.snapshot_fallback_reason = (
                "snapshots disabled in settings"
                if not self.settings.snapshots_enabled
                else disabled_reason() or "fork unavailable")
        self._closed = False

    # -- sessions ------------------------------------------------------------

    def session(self):
        from repro.serve.session import Session

        if self._closed:
            from repro.errors import SessionClosed

            raise SessionClosed("server is closed")
        with self._sessions_lock:
            self._sessions_alive += 1
            self._g_sessions.set(self._sessions_alive)
        return Session(self)

    def _session_closed(self) -> None:
        with self._sessions_lock:
            self._sessions_alive -= 1
            self._g_sessions.set(self._sessions_alive)

    # -- quiescence ----------------------------------------------------------

    @contextmanager
    def _fork_quiesce(self):
        """No engine statement is mid-flight inside: all write stripes
        held (no writer, no open write transaction) and the read gate
        exclusive (no live reader).  Stripes come first — the same
        order an explicit transaction uses (stripes across statements,
        shared read gate per statement) — so the two can't deadlock."""
        with self.write_gate.quiesced():
            with self.read_gate.exclusive():
                yield

    # -- routing -------------------------------------------------------------

    def route_for(self, sql: str) -> Route:
        route = self._routes.get(sql)
        if route is not None:
            return route
        route = classify(sql)
        with self._routes_lock:
            if len(self._routes) > 4096:  # ad-hoc texts must not leak
                self._routes.clear()
            self._routes[sql] = route
        return route

    # -- observability -------------------------------------------------------

    def metrics_exposition(self) -> str:
        """Prometheus text for ``GET /metrics`` (gauges refreshed)."""
        self.db._m_cache_entries.set(len(self.db.plan_cache))
        return self.db.metrics.exposition()

    def maybe_slowlog(self, statement: str, latency_ms: float,
                      trace=None, route=None, source=None,
                      error=None) -> Optional[str]:
        """Feed one finished statement to the slow-query log, with its
        text normalized (literal-free) first.  One compare when the log
        is disabled."""
        if not self.slowlog.enabled:
            return None
        return self.slowlog.maybe_log(
            self.statements.display_text(statement), latency_ms,
            trace=trace, route=route, source=source, error=error)

    def reset_stats(self) -> None:
        """``STATS RESET``: zero the metrics registry and drop the
        per-statement aggregates, completed traces, and slow-log ring.
        Live-state gauges are republished right after the registry-wide
        zero so a scrape mid-reset stays truthful."""
        self.db.metrics_reset()
        self.statements.reset()
        self.tracing.clear()
        self.slowlog.clear()
        with self._sessions_lock:
            self._g_sessions.set(self._sessions_alive)
        self.admission.republish()
        if self.snapshots is not None:
            self.snapshots.republish()

    def refresh_snapshots(self) -> bool:
        """Synchronously re-fork the snapshot pool if data changed
        (deterministic alternative to the refresh timer for tests)."""
        if self.snapshots is None:
            return False
        return self.snapshots.refresh()

    def stats(self) -> dict:
        report = {"admission": self.admission.snapshot(),
                  "sessions": self._sessions_alive}
        if self.snapshots is not None:
            report["snapshots"] = self.snapshots.stats()
        else:
            report["snapshots"] = {
                "disabled": self.snapshot_fallback_reason}
        return report

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.snapshots is not None:
            self.snapshots.close()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: serve a fresh (or script-initialized) database over TCP."""
    import argparse

    from repro.core.database import Database
    from repro.serve.wire import TCPServer

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.server",
        description="Serve a repro database over the line protocol.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5433)
    parser.add_argument("--init", metavar="FILE", default=None,
                        help="SQL script (one statement per line) to run "
                             "before serving")
    parser.add_argument("--max-inflight", type=int, default=None)
    parser.add_argument("--trace-sample", default=None,
                        metavar="off|always|RATIO",
                        help="request-trace sampling (default off)")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        metavar="MS",
                        help="log statements slower than MS as JSON "
                             "lines (default: disabled)")
    parser.add_argument("--slow-query-log", default=None, metavar="FILE",
                        help="append slow-query JSON lines to FILE")
    args = parser.parse_args(argv)

    db = Database()
    if args.init:
        with open(args.init) as handle:
            for line in handle:
                line = line.strip()
                if line and not line.startswith("--"):
                    db.execute(line)
    settings = ServeSettings()
    if args.max_inflight is not None:
        settings.max_inflight = args.max_inflight
    if args.trace_sample is not None:
        settings.trace_sample = args.trace_sample
    if args.slow_query_ms is not None:
        settings.slow_query_ms = args.slow_query_ms
    if args.slow_query_log is not None:
        settings.slow_query_log_path = args.slow_query_log
    server = Server(db, settings)
    tcp = TCPServer(server, host=args.host, port=args.port)
    tcp.start()
    print("serving on %s:%d (Ctrl-C to stop)" % (tcp.host, tcp.port))
    try:
        tcp.serve_until_interrupt()
    finally:
        tcp.stop()
        server.close()
        db.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
