"""The rewrite rule engine and QGM search facility.

"The rule engine is independent of the individual rules ... It handles IF
THEN rules, using a forward chaining strategy.  Several control strategies
are provided: sequential (rules are processed sequentially), priority
(higher priority rules are given a chance first), and statistical (next
rule is chosen randomly based on a user defined probability distribution).
To keep the rule engine from spending too much time rewriting queries, it
can be given a budget.  When the budget is exhausted, the processing stops
at a consistent state (of QGM).  The search strategy is independent of both
the rules and the rule engine ... Both depth first (top down) and breadth
first search are supported."

Rules are Python callables (the paper's rule language is C — the host
language either way): ``condition(ctx, box)`` returns a truthy match object
or a false value; ``action(ctx, box, match)`` performs one complete
transformation.  Rules are grouped into *rule classes* "to limit the number
of rules that have to be examined, to allow modularization of rules, and to
give the DBC more explicit control over the execution sequence".
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import RewriteError
from repro.qgm import expressions as qe
from repro.qgm.model import QGM, Box, GroupByBox, UpdateBox

Condition = Callable[["RuleContext", Box], Any]
Action = Callable[["RuleContext", Box, Any], None]


class Rule:
    """IF condition THEN action, with priority and statistical weight.

    ``box_kinds`` is the rule-indexing hint the paper lists as future work
    ("efficient execution techniques such as RETE networks and rule
    indexing"): the kinds of QGM boxes the condition can possibly match.
    When the engine's index is enabled, conditions are only evaluated
    against boxes of a matching kind; None means "any box".
    """

    def __init__(self, name: str, condition: Condition, action: Action,
                 priority: int = 0, probability: float = 1.0,
                 box_kinds: Optional[Tuple[str, ...]] = None):
        self.name = name
        self.condition = condition
        self.action = action
        self.priority = priority
        self.probability = probability
        self.box_kinds = tuple(box_kinds) if box_kinds else None

    def applies_to(self, box: Box) -> bool:
        return self.box_kinds is None or box.kind in self.box_kinds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Rule %s prio=%d>" % (self.name, self.priority)


class RuleContext:
    """What a rule sees: the graph, the database registries, primitives."""

    def __init__(self, qgm: QGM, db):
        self.qgm = qgm
        self.db = db

    # -- graph-manipulation primitives shared by the rules ---------------------

    def substitute_everywhere(self, mapping: Callable[[qe.ColRef],
                                                      Optional[qe.QExpr]]) -> None:
        """Apply a ColRef substitution to every expression in the graph."""
        for box in self.qgm.boxes:
            for predicate in box.predicates:
                predicate.expr = qe.substitute_colrefs(predicate.expr, mapping)
            for column in box.head.columns:
                if column.expr is not None:
                    column.expr = qe.substitute_colrefs(column.expr, mapping)
            if isinstance(box, GroupByBox):
                box.group_keys = [qe.substitute_colrefs(k, mapping)
                                  for k in box.group_keys]
            if isinstance(box, UpdateBox):
                box.assignments = [
                    (name, qe.substitute_colrefs(expr, mapping))
                    for name, expr in box.assignments
                ]

    def consumers(self, box: Box):
        return self.qgm.consumers(box)

    def single_consumer(self, box: Box):
        consumers = self.qgm.consumers(box)
        return consumers[0] if len(consumers) == 1 else None


class RewriteReport:
    """What happened during one engine run."""

    def __init__(self):
        self.firings: List[Tuple[str, str]] = []  # (rule name, box label)
        self.conditions_checked = 0
        self.budget_exhausted = False
        self.passes = 0
        #: "default" (one forward-chaining pass to fixpoint) or "search"
        #: (budgeted cost-driven exploration of firing sequences).
        self.strategy = "default"
        #: Search mode: variants explored, and the optimizer-estimated
        #: costs of the un-rewritten graph / the adopted variant.
        self.explored = 0
        self.base_cost: Optional[float] = None
        self.best_cost: Optional[float] = None

    @property
    def fired(self) -> int:
        return len(self.firings)

    def count(self, rule_name: str) -> int:
        return sum(1 for name, _ in self.firings if name == rule_name)

    def __repr__(self) -> str:
        extra = ""
        if self.strategy == "search":
            extra = ", search explored %d variant(s)" % self.explored
        return ("%d firing(s), %d condition(s) checked, %d pass(es)%s%s"
                % (self.fired, self.conditions_checked, self.passes,
                   ", budget exhausted" if self.budget_exhausted else "",
                   extra))


class RewriteEngine:
    """Forward-chaining rewrite engine over QGM."""

    #: Control strategies (the paper's three).
    SEQUENTIAL = "sequential"
    PRIORITY = "priority"
    STATISTICAL = "statistical"

    #: Search strategies.
    DEPTH_FIRST = "depth_first"
    BREADTH_FIRST = "breadth_first"

    def __init__(self, db, budget: int = 1000,
                 control: str = SEQUENTIAL,
                 search: str = DEPTH_FIRST,
                 seed: int = 17):
        self.db = db
        self.budget = budget
        self.control = control
        self.search = search
        self.seed = seed
        #: rule class name → list of rules (insertion-ordered).
        self.rule_classes: Dict[str, List[Rule]] = {}
        #: Which classes run, in order; None = all, insertion order.
        self.enabled_classes: Optional[List[str]] = None
        #: Per-rule disable switch (benchmarks toggle individual rules).
        self.disabled_rules: set = set()
        #: Rule indexing (§5's "rule indexing" future work): skip condition
        #: evaluation on boxes whose kind a rule declares it cannot match.
        self.use_rule_index = True
        #: Search-mode knobs: beam width over variants, and a cap on
        #: explored firings (further bounded by the engine budget).
        self.search_beam = 2
        self.search_expansions = 24

    # -- rule management -------------------------------------------------------------

    def add_rule(self, rule: Rule, rule_class: str = "user") -> Rule:
        self.rule_classes.setdefault(rule_class, []).append(rule)
        return rule

    def remove_rule(self, name: str) -> None:
        for rules in self.rule_classes.values():
            for rule in list(rules):
                if rule.name == name:
                    rules.remove(rule)

    def disable_rule(self, name: str) -> None:
        self.disabled_rules.add(name)

    def enable_rule(self, name: str) -> None:
        self.disabled_rules.discard(name)

    def rules(self, only: Optional[Tuple[str, ...]] = None) -> List[Rule]:
        """Active rules honouring class enabling and per-rule switches.

        ``only`` restricts the run to the named rules regardless of class
        enabling or per-rule disables — the rulecheck harness uses it to
        force-fire one rule (or one combination) in isolation.
        """
        if only is not None:
            wanted = set(only)
            return [rule for rule in self.all_rules() if rule.name in wanted]
        class_names = (self.enabled_classes
                       if self.enabled_classes is not None
                       else list(self.rule_classes))
        active: List[Rule] = []
        for class_name in class_names:
            for rule in self.rule_classes.get(class_name, []):
                if rule.name not in self.disabled_rules:
                    active.append(rule)
        return active

    def all_rules(self) -> List[Rule]:
        """Every registered rule, insertion-ordered, ignoring switches."""
        return [rule for rules in self.rule_classes.values()
                for rule in rules]

    def rule_count(self) -> int:
        return len(self.rules())

    def class_of(self, rule: Rule) -> Optional[str]:
        """The rule class a rule is registered under (None if unknown)."""
        for class_name, rules in self.rule_classes.items():
            if rule in rules:
                return class_name
        return None

    # -- search facility ------------------------------------------------------------------

    def browse(self, qgm: QGM) -> List[Box]:
        """The boxes, in search order: the context the rules work on."""
        if qgm.root is None:
            return []
        if self.search == self.BREADTH_FIRST:
            order: List[Box] = []
            seen = set()
            queue = deque([qgm.root])
            while queue:
                box = queue.popleft()
                if box in seen:
                    continue
                seen.add(box)
                order.append(box)
                for quantifier in box.quantifiers:
                    queue.append(quantifier.input)
            return order
        return qgm.reachable_boxes()  # depth-first discovery order

    # -- the engine proper -----------------------------------------------------------------

    def run(self, qgm: QGM, trace=None,
            only_rules: Optional[Tuple[str, ...]] = None,
            strategy: Optional[str] = None,
            optimizer_settings=None) -> RewriteReport:
        """Fire rules to fixpoint (or until the budget runs out).

        ``trace`` is an optional :class:`repro.obs.Trace`; every firing
        emits a ``rewrite.fire`` event (rule name, rule class, box label,
        budget spent so far).  ``only_rules`` restricts the run to the
        named rules (forced-fire mode).  ``strategy="search"`` dispatches
        to the budgeted cost-driven sequence search instead of the single
        forward-chaining pass; ``optimizer_settings`` is only consulted by
        the search-mode cost estimator.
        """
        if strategy == "search":
            return self.run_search(qgm, trace=trace, only_rules=only_rules,
                                   optimizer_settings=optimizer_settings)
        report = RewriteReport()
        context = RuleContext(qgm, self.db)
        rng = random.Random(self.seed)
        remaining = self.budget

        while True:
            report.passes += 1
            firing = self._find_firing(context, report, rng,
                                       only=only_rules)
            if firing is None:
                break
            if remaining <= 0:
                report.budget_exhausted = True
                if trace is not None:
                    trace.event("rewrite.budget", budget=self.budget)
                break
            rule, box, match = firing
            try:
                rule.action(context, box, match)
            except RewriteError:
                raise
            except Exception as exc:
                raise RewriteError(
                    "rule %s failed on %s: %s" % (rule.name, box.label(), exc)
                ) from exc
            remaining -= 1
            report.firings.append((rule.name, box.label()))
            if trace is not None:
                trace.event("rewrite.fire", rule=rule.name,
                            rule_class=self.class_of(rule),
                            box=box.label(),
                            budget_spent=self.budget - remaining)
            qgm.garbage_collect()
        return report

    def _find_firing(self, context: RuleContext, report: RewriteReport,
                     rng: random.Random,
                     only: Optional[Tuple[str, ...]] = None):
        """Locate the next (rule, box, match) per the control strategy."""
        boxes = self.browse(context.qgm)
        rules = self.rules(only=only)
        if self.control == self.PRIORITY:
            rules = sorted(rules, key=lambda r: -r.priority)
        elif self.control == self.STATISTICAL:
            # Sample an order weighted by rule probability.
            weighted = [(rng.random() ** (1.0 / max(rule.probability, 1e-6)),
                         index, rule)
                        for index, rule in enumerate(rules)]
            weighted.sort(reverse=True)
            rules = [rule for _w, _i, rule in weighted]
        for rule in rules:
            for box in boxes:
                if self.use_rule_index and not rule.applies_to(box):
                    continue
                report.conditions_checked += 1
                match = rule.condition(context, box)
                if match:
                    return rule, box, match
        return None

    # -- cost-driven sequence search (strategy="search") ------------------------------------

    #: Relative cost margin a variant must beat the sequential fixpoint by
    #: before search abandons the (byte-identity-preserving) default plan.
    SEARCH_MARGIN = 1e-6

    def run_search(self, qgm: QGM, trace=None,
                   only_rules: Optional[Tuple[str, ...]] = None,
                   optimizer_settings=None) -> RewriteReport:
        """Budgeted beam search over rule-firing sequences.

        The sequential fixpoint is computed first (on a snapshot) and is
        the variant to beat: alternative firing orders explored from the
        un-rewritten graph only replace it when the optimizer estimates a
        *strictly* lower cost.  Every explored firing — baseline and
        alternatives alike — is charged against the engine budget, so
        search never fires more actions than ``budget`` allows.  Progress
        is emitted as ``rewrite.search`` trace events.
        """
        report = RewriteReport()
        report.strategy = "search"
        estimate = self._cost_estimator(optimizer_settings)
        report.base_cost = estimate(qgm)

        # 1. The sequential fixpoint, computed on a snapshot so the input
        #    graph stays pristine for alternative-order exploration.
        baseline = qgm.snapshot()
        seq_report = self.run(baseline, only_rules=only_rules)
        report.conditions_checked = seq_report.conditions_checked
        report.passes = seq_report.passes
        report.budget_exhausted = seq_report.budget_exhausted
        best = (baseline, list(seq_report.firings), estimate(baseline))
        if trace is not None:
            trace.event("rewrite.search", phase="baseline",
                        fired=len(best[1]),
                        cost=best[2], base_cost=report.base_cost)

        # 2. Explore alternative firing orders from the original graph.
        remaining = max(0, self.budget - seq_report.fired)
        expansions = min(remaining, self.search_expansions)
        frontier = [(qgm, [], report.base_cost)]
        threshold = best[2] - abs(best[2]) * self.SEARCH_MARGIN
        while frontier and expansions > 0:
            frontier.sort(key=lambda entry: (entry[2], len(entry[1])))
            level, frontier = frontier[:self.search_beam], []
            for parent, firings, _cost in level:
                context = RuleContext(parent, self.db)
                candidates = self._candidate_firings(context, report,
                                                     only_rules)
                for index in range(len(candidates)):
                    if expansions <= 0:
                        break
                    child = parent.snapshot()
                    child_context = RuleContext(child, self.db)
                    replayed = self._candidate_firings(
                        child_context, report, only_rules)
                    if index >= len(replayed):
                        continue
                    rule, box, match = replayed[index]
                    try:
                        rule.action(child_context, box, match)
                    except RewriteError:
                        raise
                    except Exception as exc:
                        raise RewriteError(
                            "rule %s failed on %s: %s"
                            % (rule.name, box.label(), exc)) from exc
                    expansions -= 1
                    report.explored += 1
                    child.garbage_collect()
                    child_cost = estimate(child)
                    child_firings = firings + [(rule.name, box.label())]
                    if trace is not None:
                        trace.event("rewrite.search", phase="explore",
                                    rule=rule.name, box=box.label(),
                                    depth=len(child_firings),
                                    cost=child_cost,
                                    explored=report.explored)
                    if child_cost < threshold:
                        best = (child, child_firings, child_cost)
                        threshold = (child_cost
                                     - abs(child_cost) * self.SEARCH_MARGIN)
                    frontier.append((child, child_firings, child_cost))

        # 3. Adopt the winner into the caller's graph object.
        chosen, firings, cost = best
        qgm.adopt(chosen)
        report.firings = firings
        report.best_cost = cost
        if trace is not None:
            for step, (rule_name, box_label) in enumerate(firings):
                trace.event("rewrite.search", phase="fire", step=step,
                            rule=rule_name, box=box_label)
            trace.event("rewrite.search", phase="done",
                        chosen=("variant" if chosen is not baseline
                                else "baseline"),
                        fired=len(firings), explored=report.explored,
                        cost=cost, base_cost=report.base_cost)
        return report

    def _candidate_firings(self, context: RuleContext,
                           report: RewriteReport,
                           only: Optional[Tuple[str, ...]] = None):
        """All (rule, box, match) firings possible on the current graph.

        Deterministic: rules in registration order, boxes in browse order —
        so re-running it on a snapshot yields the same candidate list and
        an index identifies the same firing on both graphs.
        """
        boxes = self.browse(context.qgm)
        candidates = []
        for rule in self.rules(only=only):
            for box in boxes:
                if self.use_rule_index and not rule.applies_to(box):
                    continue
                report.conditions_checked += 1
                match = rule.condition(context, box)
                if match:
                    candidates.append((rule, box, match))
        return candidates

    def _cost_estimator(self, optimizer_settings=None):
        """A QGM → optimizer-estimated plan cost function for search mode."""
        from repro.optimizer.boxopt import Optimizer

        db = self.db

        def estimate(qgm: QGM) -> float:
            if qgm.root is None:
                return float("inf")
            try:
                optimizer = Optimizer(db.catalog, engine=db.engine,
                                      settings=optimizer_settings,
                                      functions=db.functions,
                                      stars=db.stars)
                plan = optimizer.optimize(qgm)
            except Exception:
                return float("inf")
            return plan.props.cost

        return estimate
