"""The base system's rewrite rules.

"The rules we provide for base system operations fall mainly into three
classes: predicate migration, projection push-down, and operation merging
... Other rules convert subqueries to joins and apply miscellaneous
transformations."

Rule classes installed (in execution order):

- ``subquery``     — existential subquery → join (the paper's Rule 1),
- ``merging``      — SELECT-into-SELECT merging, covering view merging and
  table-expression merging (the paper's Rule 2),
- ``predicate_migration`` — push-down into SELECT / set-operation /
  GROUP BY inputs, predicate transitivity, push-through-PF for outer join,
- ``projection``   — projection push-down (unused column elimination),
- ``redundant``    — redundant self-join elimination over unique keys,
- ``magic``        — seed restriction for recursive table expressions
  (the magic-sets specialization for linearly propagated columns),
- ``misc``         — duplicate-enforcement relaxation under E/NE/A
  quantifiers.
"""

from repro.rewrite.rules.subquery import install as _install_subquery
from repro.rewrite.rules.merging import install as _install_merging
from repro.rewrite.rules.predicates import install as _install_predicates
from repro.rewrite.rules.projection import install as _install_projection
from repro.rewrite.rules.redundant import install as _install_redundant
from repro.rewrite.rules.magic import install as _install_magic
from repro.rewrite.rules.misc import install as _install_misc


def install_default_rules(engine) -> None:
    """Install every base rule class into a rewrite engine."""
    _install_misc(engine)
    _install_subquery(engine)
    _install_merging(engine)
    _install_predicates(engine)
    _install_magic(engine)
    _install_redundant(engine)
    _install_projection(engine)


__all__ = ["install_default_rules"]
