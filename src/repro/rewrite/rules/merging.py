"""Operation merging: the paper's Rule 2.

    IF OP1.type = Select ∧ OP2.type = Select ∧ Q2.type = 'F'
       ∧ NOT (T1.distinct = false ∧ OP2.eliminate-duplicate = true)
    THEN merge OP2 into OP1;
         IF OP2.eliminate-duplicate = true
         THEN OP1.eliminate-duplicate = true

"Operation merging rules merge QGM boxes, creating the union of the
predicates and iterators of the original operations to allow more scope for
optimization.  View merging rules fall into this category."  Because views
and table expressions expand into SELECT boxes, this single rule performs
view merging, derived-table merging and the second half of the paper's
Figure 2 rewrite.

Safety conditions beyond the paper's sketch:

- the inner box must have a single consumer (a multiply-referenced view
  would otherwise be evaluated twice; materialize-vs-merge is the CHOOSE
  trade-off the paper defers to the optimizer),
- the inner must be a *plain* SELECT — not the outer-join operation, which
  has its own merge semantics the base rule must not assume (the paper's
  point about extensions changing rule applicability),
- duplicate compatibility per the rule text: merging an
  duplicate-eliminating inner into a duplicate-preserving outer would
  change multiplicities.
"""

from __future__ import annotations

from repro.qgm import expressions as qe
from repro.qgm.model import Box, DistinctMode, Quantifier, SelectBox


def _mergeable(context, outer: Box, quantifier: Quantifier) -> bool:
    inner = quantifier.input
    if not isinstance(inner, SelectBox) or inner is outer:
        return False
    if quantifier.qtype != "F":
        return False
    if inner.annotations.get("operation"):
        return False  # extension operations (outer join) keep their box
    if outer.annotations.get("operation"):
        return False
    if getattr(inner, "is_recursive", False):
        return False
    if context.single_consumer(inner) is not quantifier:
        return False
    # Rule 2's duplicate condition.
    if (inner.head.distinct is DistinctMode.ENFORCE
            and outer.head.distinct is DistinctMode.PRESERVE):
        return False
    # An inner with subquery quantifiers of its own merges fine (they move
    # up); an inner whose head uses a scalar subquery also moves cleanly.
    return True


def merge_condition(context, box: Box):
    if not isinstance(box, SelectBox):
        return None
    for quantifier in box.quantifiers:
        if _mergeable(context, box, quantifier):
            return quantifier
    return None


def merge_action(context, box: Box, quantifier: Quantifier) -> None:
    inner = quantifier.input

    # 1. Move the inner box's iterators and predicates into the outer box.
    for moved in list(inner.quantifiers):
        inner.remove_quantifier(moved)
        box.add_quantifier(moved)
    for predicate in list(inner.predicates):
        inner.remove_predicate(predicate)
        box.add_predicate(predicate)

    # 2. Replace references to the merged quantifier by the inner head
    #    expressions, throughout the whole graph (correlated references
    #    from nested subqueries included).
    head_exprs = {column.name: column.expr for column in inner.head.columns}

    def mapping(ref: qe.ColRef):
        if ref.quantifier is quantifier:
            return head_exprs[ref.column]
        return None

    context.substitute_everywhere(mapping)

    # 3. Duplicate bookkeeping per Rule 2.
    if inner.head.distinct is DistinctMode.ENFORCE:
        box.head.distinct = DistinctMode.ENFORCE

    # 4. Drop the now-dangling quantifier; the engine garbage-collects the
    #    empty inner box afterwards.
    box.remove_quantifier(quantifier)
    inner.annotations["merged_into"] = box.uid


def install(engine) -> None:
    from repro.rewrite.engine import Rule

    engine.add_rule(Rule("merge_select", merge_condition, merge_action,
                         priority=80, box_kinds=("select",)),
                    rule_class="merging")
