"""Projection push-down: eliminate unused columns.

"Rules for projection push-down avoid the retrieval of unused columns of
tables or views.  These rules interact with those for predicate migration:
when a predicate is pushed to a lower operation, columns referenced only by
that predicate are no longer needed by the higher operation."

The rule trims the head of a box to the columns actually referenced by its
consumers.  Set-operation branches and recursive boxes are skipped (their
head shapes are pinned positionally); the root box obviously keeps its
user-visible shape.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.qgm import expressions as qe
from repro.qgm.model import (
    Box,
    GroupByBox,
    SelectBox,
    SetOpBox,
)


def _referenced_columns(context, box: Box) -> Optional[Set[str]]:
    """Head columns of ``box`` referenced anywhere in the graph, or None
    when a structural consumer forbids trimming."""
    referenced: Set[str] = set()
    consumers = context.consumers(box)
    if not consumers:
        return None
    for quantifier in consumers:
        if isinstance(quantifier.box, SetOpBox):
            return None  # positional: every column is "used"
    for other in context.qgm.boxes:
        exprs = [p.expr for p in other.predicates]
        exprs += [c.expr for c in other.head.columns if c.expr is not None]
        if isinstance(other, GroupByBox):
            exprs += other.group_keys
        if hasattr(other, "assignments"):
            exprs += [expr for _n, expr in other.assignments]
        for expr in exprs:
            for node in qe.walk(expr):
                if (isinstance(node, qe.ColRef)
                        and node.quantifier.input is box):
                    referenced.add(node.column)
    return referenced


def projection_condition(context, box: Box):
    if context.qgm.root is box:
        return None
    if not isinstance(box, (SelectBox, GroupByBox)):
        return None
    if isinstance(box, SetOpBox) or getattr(box, "is_recursive", False):
        return None
    if box.annotations.get("operation"):
        return None  # extension operations own their head shape
    referenced = _referenced_columns(context, box)
    if referenced is None:
        return None
    unused = [column for column in box.head.columns
              if column.name not in referenced]
    if not unused or len(unused) == len(box.head.columns):
        return None
    if isinstance(box, GroupByBox):
        # Dropping a grouping column changes the groups; only unreferenced
        # aggregate outputs may go.
        unused = [column for column in unused
                  if isinstance(column.expr, qe.AggCall)]
        if not unused:
            return None
    return unused


def projection_action(context, box: Box, unused) -> None:
    drop = {column.name for column in unused}
    box.head.columns = [column for column in box.head.columns
                        if column.name not in drop]


def install(engine) -> None:
    from repro.rewrite.engine import Rule

    engine.add_rule(Rule("projection_pushdown", projection_condition,
                         projection_action, priority=40,
                         box_kinds=("select", "groupby")),
                    rule_class="projection")
