"""Subquery-to-join: the paper's Rule 1.

    IF OP1.type=Select ∧ Q2.type='E' ∧
       (at each evaluation of the existential predicate at most one tuple
        of T2 satisfies the predicate)
    THEN Q2.type = 'F'   /* convert to join */

The at-most-one-match guarantee is established two ways (as in [HASA88]'s
more general rule):

1. **uniqueness**: every predicate referencing the E quantifier is an
   equality on a head column that maps 1-1 to a base-table column covered
   by a unique index / primary key — the subquery can never produce two
   matching tuples for one outer tuple;
2. **forced distinctness**: otherwise, when the referenced columns cover
   the whole head and the subquery's duplicate mode is PERMIT (a subquery's
   duplicates are semantically irrelevant), the rule converts the
   quantifier *and* sets the subquery's head to ENFORCE duplicate
   elimination, preserving the IN semantics.
"""

from __future__ import annotations

from typing import List, Optional

from repro.qgm import expressions as qe
from repro.qgm.model import (
    BaseTableBox,
    Box,
    DistinctMode,
    Quantifier,
    SelectBox,
)


def _equality_columns(context, box: Box,
                      quantifier: Quantifier) -> Optional[List[str]]:
    """Columns of ``quantifier`` referenced by predicates, when every
    referencing predicate is a plain equality ``q.col = other``."""
    columns: List[str] = []
    for predicate in box.predicates:
        if quantifier not in predicate.quantifiers():
            continue
        expr = predicate.expr
        if not (isinstance(expr, qe.BinOp) and expr.op == "="):
            return None
        sides = (expr.left, expr.right)
        column_ref = None
        other = None
        for first, second in (sides, sides[::-1]):
            if (isinstance(first, qe.ColRef)
                    and first.quantifier is quantifier):
                column_ref, other = first, second
                break
        if column_ref is None:
            return None
        if quantifier in qe.quantifiers_in(other):
            return None
        columns.append(column_ref.column)
    return columns


def _unique_through_head(context, sub: Box, columns: List[str]) -> bool:
    """Do the referenced head columns map 1-1 onto a unique key of a base
    table accessed by a lone setformer of a simple SELECT subquery?"""
    if not isinstance(sub, SelectBox):
        return False
    setformers = sub.setformers()
    if len(setformers) != 1:
        return False
    base_quantifier = setformers[0]
    if not isinstance(base_quantifier.input, BaseTableBox):
        return False
    table = base_quantifier.input.table
    base_columns = []
    for column in columns:
        head = sub.head.column(column)
        if not (isinstance(head.expr, qe.ColRef)
                and head.expr.quantifier is base_quantifier):
            return False
        base_columns.append(head.expr.column)
    if not base_columns:
        return False
    covered = set(base_columns)
    if table.primary_key and set(table.primary_key) <= covered:
        return True
    for index in context.db.catalog.indexes_on(table.name):
        if index.unique and set(index.column_names) <= covered:
            return True
    return False


def subquery_to_join_condition(context, box: Box):
    if not isinstance(box, SelectBox):
        return None
    for quantifier in box.quantifiers:
        if quantifier.qtype != "E":
            continue
        sub = quantifier.input
        if getattr(sub, "is_recursive", False):
            continue
        if not sub.head.columns:
            continue
        columns = _equality_columns(context, box, quantifier)
        if columns is None or not columns:
            # EXISTS-style: predicates are not all equalities (or only an
            # ExistsTest); conversion would change cardinality — skip.
            continue
        if _unique_through_head(context, sub, columns):
            return (quantifier, "unique")
        if (set(columns) == set(sub.head.column_names())
                and sub.head.distinct is not DistinctMode.PRESERVE):
            return (quantifier, "force_distinct")
    return None


def subquery_to_join_action(context, box: Box, match) -> None:
    quantifier, mode = match
    quantifier.qtype = "F"
    if mode == "force_distinct":
        quantifier.input.head.distinct = DistinctMode.ENFORCE


def install(engine) -> None:
    from repro.rewrite.engine import Rule

    engine.add_rule(Rule("subquery_to_join",
                         subquery_to_join_condition,
                         subquery_to_join_action,
                         priority=90, box_kinds=("select",)),
                    rule_class="subquery")
