"""Miscellaneous transformations.

- ``relax_subquery_distinct``: the output of a box consumed only by
  existential/universal quantifiers is duplicate-insensitive, so an
  ENFORCE or PRESERVE duplicate mode can be relaxed to PERMIT — giving the
  optimizer the freedom to skip duplicate elimination and the
  subquery-to-join rule the latitude its "force distinct" variant needs.
"""

from __future__ import annotations

from repro.qgm.model import Box, DistinctMode, SelectBox


#: Iterator types whose semantics ignore input duplicates.
_DUP_INSENSITIVE = {"E", "NE", "A"}


def relax_condition(context, box: Box):
    if box.head.distinct is DistinctMode.PERMIT:
        return None
    if not isinstance(box, SelectBox):
        return None
    if getattr(box, "is_recursive", False):
        return None
    consumers = context.consumers(box)
    if not consumers:
        return None
    if all(q.qtype in _DUP_INSENSITIVE for q in consumers):
        return True
    return None


def relax_action(context, box: Box, match) -> None:
    box.head.distinct = DistinctMode.PERMIT


def install(engine) -> None:
    from repro.rewrite.engine import Rule

    engine.add_rule(Rule("relax_subquery_distinct", relax_condition,
                         relax_action, priority=95,
                         box_kinds=("select",)),
                    rule_class="misc")
