"""Magic-style seed restriction for recursive table expressions.

"With the introduction of recursion in DBMS queries, transformations such
as magic sets [BANC86] should be incorporated."  This rule implements the
magic-sets specialization for the common linear case: a consumer restricts
a column of a recursive table expression with an equality, and that column
is *propagated unchanged* by every recursive branch (each branch's head
copies it verbatim from the recursive reference).  Then the restriction can
be pushed into the *base* branches only — the recursion thereafter derives
exactly the restricted subset instead of the full fixpoint, which is the
magic-sets win for queries like "ancestors of a given node".
"""

from __future__ import annotations

from repro.qgm import expressions as qe
from repro.qgm.model import Box, Predicate, SelectBox, SetOpBox


def _propagated_verbatim(union: SetOpBox, position: int) -> bool:
    """Is head column ``position`` copied unchanged from the recursive
    reference in every recursive branch?"""
    column_name = union.head.columns[position].name
    for quantifier in union.quantifiers:
        branch = quantifier.input
        if not _references(branch, union):
            continue  # base branch
        if not isinstance(branch, SelectBox):
            return False
        if position >= len(branch.head.columns):
            return False
        expr = branch.head.columns[position].expr
        if not (isinstance(expr, qe.ColRef)
                and expr.quantifier.input is union
                and expr.column == column_name):
            return False
    return True


def _references(branch: Box, target: Box) -> bool:
    seen = set()
    stack = [branch]
    while stack:
        current = stack.pop()
        if current in seen:
            continue
        seen.add(current)
        for quantifier in current.quantifiers:
            if quantifier.input is target:
                return True
            stack.append(quantifier.input)
    return False


def magic_condition(context, box: Box):
    if not isinstance(box, SelectBox):
        return None
    for predicate in box.predicates:
        expr = predicate.expr
        if not (isinstance(expr, qe.BinOp) and expr.op == "="):
            continue
        for ref, other in ((expr.left, expr.right),
                           (expr.right, expr.left)):
            if not isinstance(ref, qe.ColRef):
                continue
            if qe.quantifiers_in(other):
                continue  # only constant/parameter restrictions
            quantifier = ref.quantifier
            union = quantifier.input
            if not (isinstance(union, SetOpBox) and union.is_recursive):
                continue
            if union.annotations.get("magic_applied"):
                continue
            # The recursive branches themselves consume the union; only
            # *external* consumers matter for the single-consumer check.
            internal = set()
            for branch_quantifier in union.quantifiers:
                stack = [branch_quantifier.input]
                while stack:
                    current = stack.pop()
                    if current in internal or current is union:
                        continue
                    internal.add(current)
                    stack.extend(q.input for q in current.quantifiers)
            external = [c for c in context.consumers(union)
                        if c.box not in internal]
            if external != [quantifier]:
                continue
            try:
                position = union.head.index_of(ref.column)
            except Exception:
                continue
            if _propagated_verbatim(union, position):
                return (predicate, quantifier, union, position, other)
    return None


def magic_action(context, box: Box, match) -> None:
    predicate, quantifier, union, position, constant = match
    from repro.datatypes.types import BOOLEAN

    for branch_quantifier in union.quantifiers:
        branch = branch_quantifier.input
        if _references(branch, union):
            continue  # recursive branches inherit the restriction
        column = branch.head.columns[position]
        if column.expr is None:
            continue
        branch.add_predicate(Predicate(
            qe.BinOp("=", column.expr, constant, BOOLEAN)))
    # The restriction is now an invariant of the fixpoint; the consumer's
    # copy is redundant.
    box.remove_predicate(predicate)
    union.annotations["magic_applied"] = True


def install(engine) -> None:
    from repro.rewrite.engine import Rule

    engine.add_rule(Rule("magic_seed_restriction", magic_condition,
                         magic_action, priority=45,
                         box_kinds=("select",)),
                    rule_class="magic")
