"""Redundant join elimination ([OTT82] in the paper).

Two setformers over the same base table equated on a unique key are the
same row: the second access (and the equality) can be removed, retargeting
every reference.  The classic source of such joins is view expansion —
a view joining back to a table the consumer also scans.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.qgm import expressions as qe
from repro.qgm.model import BaseTableBox, Box, Predicate, SelectBox


def _unique_keys(context, table) -> List[Set[str]]:
    keys: List[Set[str]] = []
    if table.primary_key:
        keys.append(set(table.primary_key))
    for index in context.db.catalog.indexes_on(table.name):
        if index.unique:
            keys.append(set(index.column_names))
    return keys


def redundant_join_condition(context, box: Box):
    if not isinstance(box, SelectBox):
        return None
    outer_join = box.annotations.get("operation") is not None
    by_table = {}
    for quantifier in box.setformers():
        if isinstance(quantifier.input, BaseTableBox):
            by_table.setdefault(quantifier.input.table.name,
                                []).append(quantifier)
    for table_name, quantifiers in by_table.items():
        if len(quantifiers) < 2:
            continue
        table = quantifiers[0].input.table
        keys = _unique_keys(context, table)
        if not keys:
            continue
        for keep in quantifiers:
            for drop in quantifiers:
                if keep is drop:
                    continue
                equated, preds = _equated_columns(box, keep, drop)
                matched = [key for key in keys if key <= equated]
                if not matched:
                    continue
                if outer_join and not _outer_join_degenerate(
                        box, keep, drop, matched, preds, table):
                    continue
                return (keep, drop, preds)
    return None


def _outer_join_degenerate(box: Box, keep, drop, keys, join_preds,
                           table) -> bool:
    """True when eliminating ``drop`` from an outer-join box is safe.

    An outer join degenerates to the inner join this rule assumes only
    when every preserved row is guaranteed a match: ``drop`` must be the
    null-producing side, the equated key must be non-nullable on the
    preserved side (a NULL key would pad, not match), and the ON clause
    must contain nothing besides the key equalities (any extra condition
    could fail and pad where the rewrite would filter).
    """
    if keep.qtype != "PF" or drop.qtype != "F":
        return False
    if len(box.predicates) != len(join_preds):
        return False
    return any(all(not table.column(name).nullable for name in key)
               for key in keys)


def _equated_columns(box: Box, keep, drop) -> Tuple[Set[str], List[Predicate]]:
    """Columns c with a predicate keep.c = drop.c, plus those predicates."""
    equated: Set[str] = set()
    preds: List[Predicate] = []
    for predicate in box.predicates:
        pair = qe.is_column_equality(predicate.expr)
        if pair is None:
            continue
        left, right = pair
        for a, b in ((left, right), (right, left)):
            if (a.quantifier is keep and b.quantifier is drop
                    and a.column == b.column):
                equated.add(a.column)
                preds.append(predicate)
    return equated, preds


def redundant_join_action(context, box: Box, match) -> None:
    keep, drop, join_preds = match

    def mapping(ref: qe.ColRef):
        if ref.quantifier is drop:
            return qe.ColRef(keep, ref.column, ref.dtype)
        return None

    context.substitute_everywhere(mapping)
    for predicate in join_preds:
        if predicate in box.predicates:
            box.remove_predicate(predicate)
    # Predicates reduced to tautologies (keep.c = keep.c) may remain after
    # substitution of non-join predicates; drop them.
    for predicate in list(box.predicates):
        pair = None
        expr = predicate.expr
        if isinstance(expr, qe.BinOp) and expr.op == "=":
            if (isinstance(expr.left, qe.ColRef)
                    and isinstance(expr.right, qe.ColRef)
                    and expr.left.quantifier is expr.right.quantifier
                    and expr.left.column == expr.right.column):
                box.remove_predicate(predicate)
    box.remove_quantifier(drop)
    if box.annotations.get("operation") is not None:
        # The condition only admits outer-join boxes that degenerate to an
        # inner join; normalize the box back to a plain select.
        del box.annotations["operation"]
        keep.qtype = "F"


def install(engine) -> None:
    from repro.rewrite.engine import Rule

    engine.add_rule(Rule("redundant_join_elimination",
                         redundant_join_condition, redundant_join_action,
                         priority=50, box_kinds=("select",)),
                    rule_class="redundant")
