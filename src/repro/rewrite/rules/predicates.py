"""Predicate migration rules.

"Predicate migration allows predicates to be pushed down into lower level
operations to minimize the amount of data retrieved.  Predicates may also
be replicated, and replicas migrated to multiple operations."

Rules here:

- ``push_into_select`` — a predicate referencing a single F setformer over
  a (single-consumer) SELECT box moves into that box, rewritten through the
  head.  The *from* side never applies to PF setformers ("they would then
  eliminate tuples which should be preserved").
- ``push_into_setop`` — replicate the predicate into every branch of a
  set-operation input.
- ``push_into_groupby`` — push through GROUP BY when only group-key output
  columns are referenced.
- ``push_through_pf`` — the outer-join *receive* rule the paper walks
  through: a predicate from above referencing only columns the outer-join
  box forwards verbatim from its PF setformer is pushed *through* the
  outer join to the operation the PF setformer ranges over.
- ``predicate_transitivity`` — from ``a = b`` and ``a = const`` derive
  ``b = const`` (implied predicates widen the later push-down scope).
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

from repro.qgm import expressions as qe
from repro.qgm.model import (
    Box,
    GroupByBox,
    Predicate,
    Quantifier,
    SelectBox,
    SetOpBox,
)


def _single_f_target(box: Box, predicate: Predicate):
    """The lone F setformer of ``box`` a predicate references, if any."""
    refs = predicate.quantifiers()
    own = [q for q in refs if q.box is box]
    if len(own) != 1 or len(refs) != 1:
        return None  # correlated or multi-iterator predicates stay put
    target = own[0]
    if target.qtype != "F":
        return None  # never push down from a PF setformer
    return target


def _contains_subquery_machinery(expr: qe.QExpr) -> bool:
    for node in qe.walk(expr):
        if isinstance(node, qe.ExistsTest):
            return True
        if isinstance(node, (qe.ColRef,)) and not node.quantifier.is_setformer:
            return True
    return False


def _rewrite_through_head(predicate: Predicate, quantifier: Quantifier,
                          inner: Box) -> qe.QExpr:
    head_exprs = {c.name: c.expr for c in inner.head.columns}

    def mapping(ref: qe.ColRef):
        if ref.quantifier is quantifier:
            return head_exprs[ref.column]
        return None

    return qe.substitute_colrefs(predicate.expr, mapping)


# -- push into SELECT ----------------------------------------------------------


def push_select_condition(context, box: Box):
    if isinstance(box, (SetOpBox,)):
        return None
    for predicate in box.predicates:
        if _contains_subquery_machinery(predicate.expr):
            continue
        target = _single_f_target(box, predicate)
        if target is None:
            continue
        inner = target.input
        if not isinstance(inner, SelectBox):
            continue
        if inner.annotations.get("operation"):
            continue  # outer join handles receiving itself
        if getattr(inner, "is_recursive", False):
            continue
        if context.single_consumer(inner) is not target:
            continue
        # Cannot push below duplicate elimination?  Filtering commutes
        # with DISTINCT, so it is safe either way.
        return (predicate, target, inner)
    return None


def push_select_action(context, box: Box, match) -> None:
    predicate, target, inner = match
    rewritten = _rewrite_through_head(predicate, target, inner)
    box.remove_predicate(predicate)
    inner.add_predicate(Predicate(rewritten))


# -- replicate into set-operation branches ------------------------------------------


def push_setop_condition(context, box: Box):
    for predicate in box.predicates:
        if _contains_subquery_machinery(predicate.expr):
            continue
        target = _single_f_target(box, predicate)
        if target is None:
            continue
        inner = target.input
        if not isinstance(inner, SetOpBox) or inner.is_recursive:
            continue
        if context.single_consumer(inner) is not target:
            continue
        # Every branch must be a SELECT box able to receive predicates.
        if not all(isinstance(q.input, SelectBox)
                   and context.single_consumer(q.input) is q
                   for q in inner.quantifiers):
            continue
        return (predicate, target, inner)
    return None


def push_setop_action(context, box: Box, match) -> None:
    predicate, target, inner = match
    # The set-op head columns are positional: branch head column i feeds
    # set-op head column i.
    positions = {column.name: index
                 for index, column in enumerate(inner.head.columns)}
    box.remove_predicate(predicate)
    for branch_quantifier in inner.quantifiers:
        branch = branch_quantifier.input

        def mapping(ref: qe.ColRef, branch=branch):
            if ref.quantifier is target:
                branch_column = branch.head.columns[positions[ref.column]]
                return branch_column.expr
            return None

        replica = qe.substitute_colrefs(predicate.expr, mapping)
        branch.add_predicate(Predicate(replica))


# -- push through GROUP BY -------------------------------------------------------------


def push_groupby_condition(context, box: Box):
    for predicate in box.predicates:
        if _contains_subquery_machinery(predicate.expr):
            continue
        target = _single_f_target(box, predicate)
        if target is None:
            continue
        inner = target.input
        if not isinstance(inner, GroupByBox):
            continue
        if context.single_consumer(inner) is not target:
            continue
        # Only group-key output columns may be referenced: a predicate on
        # a key selects whole groups, so it commutes with aggregation.
        key_names = set()
        for column in inner.head.columns:
            if not isinstance(column.expr, qe.AggCall):
                key_names.add(column.name)
        referenced = {node.column for node in qe.walk(predicate.expr)
                      if isinstance(node, qe.ColRef)
                      and node.quantifier is target}
        if referenced <= key_names:
            return (predicate, target, inner)
    return None


def push_groupby_action(context, box: Box, match) -> None:
    predicate, target, inner = match
    rewritten = _rewrite_through_head(predicate, target, inner)
    box.remove_predicate(predicate)
    inner.add_predicate(Predicate(rewritten))


# -- push through the PF setformer (outer-join receive rule) -----------------------------


def push_pf_condition(context, box: Box):
    for predicate in box.predicates:
        if _contains_subquery_machinery(predicate.expr):
            continue
        target = _single_f_target(box, predicate)
        if target is None:
            continue
        oj_box = target.input
        if oj_box.annotations.get("operation") != "left_outer_join":
            continue
        if context.single_consumer(oj_box) is not target:
            continue
        preserved = [q for q in oj_box.quantifiers if q.qtype == "PF"]
        if len(preserved) != 1:
            continue
        pf = preserved[0]
        if not isinstance(pf.input, SelectBox):
            continue  # nothing below to receive the predicate
        if context.single_consumer(pf.input) is not pf:
            continue
        # The referenced outer-join head columns must forward PF columns
        # verbatim.
        forwards = {}
        for column in oj_box.head.columns:
            if (isinstance(column.expr, qe.ColRef)
                    and column.expr.quantifier is pf):
                forwards[column.name] = column.expr.column
        referenced = {node.column for node in qe.walk(predicate.expr)
                      if isinstance(node, qe.ColRef)
                      and node.quantifier is target}
        if referenced and referenced <= set(forwards):
            return (predicate, target, oj_box, pf, forwards)
    return None


def push_pf_action(context, box: Box, match) -> None:
    predicate, target, oj_box, pf, forwards = match
    inner = pf.input
    head_exprs = {c.name: c.expr for c in inner.head.columns}

    def mapping(ref: qe.ColRef):
        if ref.quantifier is target:
            # through the outer-join head onto the PF input's head
            return head_exprs[forwards[ref.column]]
        return None

    rewritten = qe.substitute_colrefs(predicate.expr, mapping)
    box.remove_predicate(predicate)
    inner.add_predicate(Predicate(rewritten))


# -- predicate transitivity ----------------------------------------------------------------


def transitivity_condition(context, box: Box):
    equalities: List[Tuple[qe.ColRef, qe.ColRef]] = []
    constants: List[Tuple[qe.ColRef, qe.QExpr]] = []
    existing = {repr(p.expr) for p in box.predicates}
    for predicate in box.predicates:
        expr = predicate.expr
        if not (isinstance(expr, qe.BinOp) and expr.op == "="):
            continue
        pair = qe.is_column_equality(expr)
        if pair is not None:
            equalities.append(pair)
            continue
        for ref, other in ((expr.left, expr.right),
                           (expr.right, expr.left)):
            if (isinstance(ref, qe.ColRef)
                    and isinstance(other, (qe.Const, qe.ParamRef))):
                constants.append((ref, other))
    from repro.datatypes.types import BOOLEAN

    for (left, right), (ref, constant) in itertools.product(equalities,
                                                            constants):
        for bound, free in ((left, right), (right, left)):
            if repr(bound) == repr(ref):
                derived = qe.BinOp("=", free, constant, BOOLEAN)
                if repr(derived) not in existing:
                    return derived
    return None


def transitivity_action(context, box: Box, derived: qe.QExpr) -> None:
    box.add_predicate(Predicate(derived))


def install(engine) -> None:
    from repro.rewrite.engine import Rule

    # Predicates live on SELECT, GROUP BY (after a push-through lands
    # there) and DML boxes.
    predicate_boxes = ("select", "groupby", "update", "delete")
    engine.add_rule(Rule("predicate_transitivity", transitivity_condition,
                         transitivity_action, priority=75,
                         box_kinds=predicate_boxes),
                    rule_class="predicate_migration")
    engine.add_rule(Rule("push_into_select", push_select_condition,
                         push_select_action, priority=70,
                         box_kinds=predicate_boxes),
                    rule_class="predicate_migration")
    engine.add_rule(Rule("push_into_setop", push_setop_condition,
                         push_setop_action, priority=65,
                         box_kinds=predicate_boxes),
                    rule_class="predicate_migration")
    engine.add_rule(Rule("push_into_groupby", push_groupby_condition,
                         push_groupby_action, priority=60,
                         box_kinds=predicate_boxes),
                    rule_class="predicate_migration")
    engine.add_rule(Rule("push_through_pf", push_pf_condition,
                         push_pf_action, priority=55,
                         box_kinds=predicate_boxes),
                    rule_class="predicate_migration")
