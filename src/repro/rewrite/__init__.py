"""Query rewrite (section 5 of the paper).

A rule-based transformation phase over QGM, between semantic analysis and
plan optimization.  "A rule consists of two parts, the condition and the
action ... The rule writer is expected to ensure that every rule changes a
consistent QGM representation into another consistent QGM representation."

Components, as in the paper:

- the **rules** (:mod:`repro.rewrite.rules`): operation merging (including
  view merging and subquery-to-join), predicate migration, projection
  push-down, redundant-join elimination, magic-style seed restriction for
  recursion, plus DBC-supplied rules in their own rule classes,
- the **rule engine** (:class:`~repro.rewrite.engine.RewriteEngine`):
  forward chaining with sequential / priority / statistical control
  strategies and a budget that always stops at a consistent QGM,
- the **search facility**: depth-first or breadth-first browsing of the
  query graph, providing the context each rule sees.
"""

from repro.rewrite.engine import RewriteEngine, RewriteReport, Rule
from repro.rewrite.rules import install_default_rules

__all__ = ["RewriteEngine", "RewriteReport", "Rule", "install_default_rules"]
