"""Write-ahead log.

The log is logical (table name + RID + record images) rather than physical,
which makes replay independent of page layout and storage manager.  Records
carry the usual ARIES-style fields: LSN, transaction id, a backward pointer
to the transaction's previous record (for undo), and for compensation
records (CLRs) the LSN being undone.
"""

from __future__ import annotations

import enum
import threading
from typing import Dict, Iterator, List, Optional

from repro.errors import RecoveryError
from repro.storage.record import RID


class LogRecordType(enum.Enum):
    BEGIN = "begin"
    COMMIT = "commit"
    ABORT = "abort"
    INSERT = "insert"
    DELETE = "delete"
    UPDATE = "update"
    CLR = "clr"            # compensation: records that an undo was applied
    CHECKPOINT = "checkpoint"


class LogRecord:
    """One WAL entry."""

    __slots__ = ("lsn", "txn_id", "type", "prev_lsn", "table", "rid",
                 "new_rid", "before", "after", "undo_of", "active_txns")

    def __init__(self, lsn: int, txn_id: int, record_type: LogRecordType,
                 prev_lsn: int = -1, table: Optional[str] = None,
                 rid: Optional[RID] = None, before: Optional[bytes] = None,
                 after: Optional[bytes] = None, undo_of: int = -1,
                 active_txns: Optional[List[int]] = None):
        self.lsn = lsn
        self.txn_id = txn_id
        self.type = record_type
        self.prev_lsn = prev_lsn
        self.table = table
        self.rid = rid
        #: For UPDATE records: where the record lives after the operation
        #: (differs from ``rid`` when the storage manager relocated it).
        self.new_rid = rid
        self.before = before
        self.after = after
        self.undo_of = undo_of
        self.active_txns = active_txns or []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Log %d txn=%d %s %s %s>" % (
            self.lsn, self.txn_id, self.type.value, self.table or "",
            self.rid if self.rid is not None else "")


class LogManager:
    """Appends and reads log records; tracks each transaction's last LSN."""

    def __init__(self):
        self._records: List[LogRecord] = []
        self._last_lsn: Dict[int, int] = {}
        self.flushed_lsn = -1
        #: LSN assignment reads ``len(self._records)`` then appends; two
        #: concurrent serving-layer writers would mint the same LSN
        #: without this lock.
        self._lock = threading.Lock()

    def reinit_locks(self) -> None:
        """Fresh lock after ``fork()`` (a parent thread may have held the
        old one at fork time)."""
        self._lock = threading.Lock()

    def append(self, txn_id: int, record_type: LogRecordType,
               table: Optional[str] = None, rid: Optional[RID] = None,
               before: Optional[bytes] = None, after: Optional[bytes] = None,
               undo_of: int = -1,
               active_txns: Optional[List[int]] = None) -> LogRecord:
        with self._lock:
            lsn = len(self._records)
            record = LogRecord(
                lsn=lsn,
                txn_id=txn_id,
                record_type=record_type,
                prev_lsn=self._last_lsn.get(txn_id, -1),
                table=table,
                rid=rid,
                before=before,
                after=after,
                undo_of=undo_of,
                active_txns=active_txns,
            )
            self._records.append(record)
            self._last_lsn[txn_id] = lsn
            return record

    def flush(self) -> None:
        """Force the log to stable storage (a marker in this simulation)."""
        with self._lock:
            self.flushed_lsn = len(self._records) - 1

    def record(self, lsn: int) -> LogRecord:
        try:
            return self._records[lsn]
        except IndexError:
            raise RecoveryError("no log record with LSN %d" % lsn) from None

    def records(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def records_for(self, txn_id: int) -> List[LogRecord]:
        """A transaction's records, newest first (undo order)."""
        chain: List[LogRecord] = []
        lsn = self._last_lsn.get(txn_id, -1)
        while lsn >= 0:
            record = self._records[lsn]
            chain.append(record)
            lsn = record.prev_lsn
        return chain

    def last_lsn(self, txn_id: int) -> int:
        return self._last_lsn.get(txn_id, -1)

    def truncate_before(self, lsn: int) -> None:
        """Discard records below ``lsn`` (after a checkpoint); LSNs are kept
        stable by replacing old entries with None-slots is avoided — we keep
        a simple prefix drop with an offset for realism-without-complexity."""
        # Simplicity: checkpointing in this simulation only records state;
        # physical truncation is not needed for correctness and is a no-op.

    def __len__(self) -> int:
        return len(self._records)
