"""Transactions: begin/commit/abort with strict 2PL and WAL-based undo.

A :class:`Transaction` is a handle carrying an id and status.  The
:class:`TransactionManager` hands them out and implements commit (flush the
log, release locks) and abort (walk the transaction's log chain backwards,
apply inverse operations through the storage engine's low-level primitives,
write compensation records, release locks).
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, Optional

from repro.errors import TransactionError
from repro.storage.lock import LockManager
from repro.storage.wal import LogManager, LogRecordType


class TransactionStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """Handle for one transaction."""

    __slots__ = ("txn_id", "status")

    def __init__(self, txn_id: int):
        self.txn_id = txn_id
        self.status = TransactionStatus.ACTIVE

    @property
    def is_active(self) -> bool:
        return self.status is TransactionStatus.ACTIVE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Txn %d %s>" % (self.txn_id, self.status.value)


class TransactionManager:
    """Creates transactions and drives commit/abort protocols."""

    def __init__(self, log: LogManager, locks: LockManager):
        self.log = log
        self.locks = locks
        self._ids = itertools.count(1)
        self._active: Dict[int, Transaction] = {}

    def begin(self) -> Transaction:
        txn = Transaction(next(self._ids))
        self._active[txn.txn_id] = txn
        self.log.append(txn.txn_id, LogRecordType.BEGIN)
        return txn

    def _check_active(self, txn: Transaction) -> None:
        if not txn.is_active:
            raise TransactionError(
                "transaction %d is %s" % (txn.txn_id, txn.status.value)
            )

    def commit(self, txn: Transaction) -> None:
        self._check_active(txn)
        self.log.append(txn.txn_id, LogRecordType.COMMIT)
        self.log.flush()
        txn.status = TransactionStatus.COMMITTED
        self._active.pop(txn.txn_id, None)
        self.locks.release_all(txn.txn_id)

    def abort(self, txn: Transaction, engine) -> None:
        """Roll back ``txn`` by undoing its log chain through ``engine``.

        ``engine`` must provide ``apply_insert_at`` / ``apply_delete`` /
        ``apply_update`` primitives that bypass logging and locking.
        """
        self._check_active(txn)
        for record in self.log.records_for(txn.txn_id):
            if record.type is LogRecordType.INSERT:
                engine.apply_delete(record.table, record.rid)
            elif record.type is LogRecordType.DELETE:
                engine.apply_insert_at(record.table, record.rid, record.before)
            elif record.type is LogRecordType.UPDATE:
                engine.apply_undo_update(record.table, record.rid,
                                         record.new_rid, record.before)
            else:
                continue
            self.log.append(
                txn.txn_id, LogRecordType.CLR,
                table=record.table, rid=record.rid, undo_of=record.lsn,
            )
        self.log.append(txn.txn_id, LogRecordType.ABORT)
        self.log.flush()
        txn.status = TransactionStatus.ABORTED
        self._active.pop(txn.txn_id, None)
        self.locks.release_all(txn.txn_id)

    def active_ids(self):
        return sorted(self._active)

    def get(self, txn_id: int) -> Optional[Transaction]:
        return self._active.get(txn_id)
