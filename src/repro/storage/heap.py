"""Heap storage manager: the default, handles any record shape.

Pages are addressed by table-relative page numbers (``RID.page_no`` indexes
the table's page list), which keeps RIDs stable across buffer eviction and
makes logical WAL replay deterministic.  Inserts go to the last page when it
fits, then to any page on the free list (pages that lost a record), then to
a fresh page.
"""

from __future__ import annotations

from typing import Iterator, List, Set, Tuple

from repro.catalog.schema import TableDef
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.record import RID, RecordSerializer
from repro.storage.storage_manager import TableStorage


class HeapTableStorage(TableStorage):
    """Slotted-page heap file."""

    kind = "heap"

    def __init__(self, table: TableDef, pool: BufferPool,
                 serializer: RecordSerializer):
        super().__init__(table, pool, serializer)
        self._page_ids: List[int] = []
        self._free_pages: Set[int] = set()  # table page numbers with holes

    # -- helpers -----------------------------------------------------------------

    def _disk_page_id(self, page_no: int) -> int:
        if not 0 <= page_no < len(self._page_ids):
            raise StorageError(
                "table %s has no page %d" % (self.table.name, page_no)
            )
        return self._page_ids[page_no]

    def _append_page(self) -> int:
        page = self.pool.new_page()
        self._page_ids.append(page.page_id)
        page_no = len(self._page_ids) - 1
        self.pool.unpin(page.page_id, dirty=True)
        return page_no

    def _try_insert_on(self, page_no: int, record: bytes):
        page_id = self._disk_page_id(page_no)
        page = self.pool.fetch(page_id)
        try:
            if not page.can_insert(len(record)) \
                    and page.can_insert_after_compaction(len(record)):
                page.compact()
            if page.can_insert(len(record)):
                slot = page.insert(record)
                self.pool.unpin(page_id, dirty=True)
                return RID(page_no, slot)
        except Exception:
            self.pool.unpin(page_id)
            raise
        self.pool.unpin(page_id)
        return None

    # -- TableStorage interface -----------------------------------------------------

    def insert(self, record: bytes) -> RID:
        if self._page_ids:
            rid = self._try_insert_on(len(self._page_ids) - 1, record)
            if rid is not None:
                return rid
        for page_no in sorted(self._free_pages):
            rid = self._try_insert_on(page_no, record)
            if rid is not None:
                return rid
            self._free_pages.discard(page_no)
        page_no = self._append_page()
        rid = self._try_insert_on(page_no, record)
        if rid is None:
            raise StorageError(
                "record of %d bytes does not fit an empty page" % len(record)
            )
        return rid

    def read(self, rid: RID) -> bytes:
        page_id = self._disk_page_id(rid.page_no)
        with self.pool.pinned(page_id) as page:
            return page.read(rid.slot)

    def update(self, rid: RID, record: bytes) -> RID:
        page_id = self._disk_page_id(rid.page_no)
        page = self.pool.fetch(page_id)
        updated = False
        try:
            updated = page.update_in_place(rid.slot, record)
        finally:
            self.pool.unpin(page_id, dirty=updated)
        if updated:
            return rid
        # Record grew: relocate.
        self.delete(rid)
        return self.insert(record)

    def delete(self, rid: RID) -> None:
        page_id = self._disk_page_id(rid.page_no)
        with self.pool.pinned(page_id, dirty=True) as page:
            page.delete(rid.slot)
        self._free_pages.add(rid.page_no)

    def _page_range(self, page_range) -> range:
        """Clamp an optional (lo, hi) page-number pair — a morsel — to the
        table's current page list; None means the whole table."""
        if page_range is None:
            return range(len(self._page_ids))
        lo, hi = page_range
        return range(max(0, lo), min(hi, len(self._page_ids)))

    def scan(self, page_range=None) -> Iterator[Tuple[RID, bytes]]:
        for page_no in self._page_range(page_range):
            page_id = self._page_ids[page_no]
            page = self.pool.fetch(page_id)
            try:
                records = list(page.records())
            finally:
                self.pool.unpin(page_id)
            for slot, record in records:
                yield RID(page_no, slot), record

    def scan_batches(self, batch_size, page_range=None):
        """Page-at-a-time scan: collects whole pages of record bytes and
        defers RID construction to the lazy ``make_rids`` callable."""
        chunks: List[Tuple[int, tuple]] = []  # (page_no, slots)
        records: List[bytes] = []
        for page_no in self._page_range(page_range):
            page_id = self._page_ids[page_no]
            page = self.pool.fetch(page_id)
            try:
                page_records = list(page.records())
            finally:
                self.pool.unpin(page_id)
            if not page_records:
                continue
            slots, recs = zip(*page_records)
            chunks.append((page_no, slots))
            records.extend(recs)
            if len(records) >= batch_size:
                yield _rid_maker(chunks), records
                chunks, records = [], []
        if records:
            yield _rid_maker(chunks), records

    @property
    def page_count(self) -> int:
        return len(self._page_ids)

    def truncate(self) -> None:
        for page_id in self._page_ids:
            if self.pool.contains(page_id):
                self.pool.discard(page_id)
            self.pool.disk.deallocate(page_id)
        self._page_ids = []
        self._free_pages = set()


def _rid_maker(chunks):
    """Lazy RID factory over (page_no, slots) page chunks."""
    def make() -> List[RID]:
        rids: List[RID] = []
        for page_no, slots in chunks:
            rids.extend(RID(page_no, slot) for slot in slots)
        return rids
    return make
