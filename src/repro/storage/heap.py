"""Heap storage manager: the default, handles any record shape.

Pages are addressed by table-relative page numbers (``RID.page_no`` indexes
the table's page list), which keeps RIDs stable across buffer eviction and
makes logical WAL replay deterministic.  Inserts go to the last page when it
fits, then to any page on the free list (pages that lost a record), then to
a fresh page.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.catalog.schema import TableDef
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.record import RID, RecordSerializer
from repro.storage.storage_manager import TableStorage


class HeapTableStorage(TableStorage):
    """Slotted-page heap file."""

    kind = "heap"

    def __init__(self, table: TableDef, pool: BufferPool,
                 serializer: RecordSerializer):
        super().__init__(table, pool, serializer)
        self._page_ids: List[int] = []
        self._free_pages: Set[int] = set()  # table page numbers with holes

    # -- helpers -----------------------------------------------------------------

    def _disk_page_id(self, page_no: int) -> int:
        if not 0 <= page_no < len(self._page_ids):
            raise StorageError(
                "table %s has no page %d" % (self.table.name, page_no)
            )
        return self._page_ids[page_no]

    def _append_page(self) -> int:
        page = self.pool.new_page()
        self._page_ids.append(page.page_id)
        page_no = len(self._page_ids) - 1
        self.pool.unpin(page.page_id, dirty=True)
        return page_no

    def _try_insert_on(self, page_no: int, record: bytes):
        page_id = self._disk_page_id(page_no)
        page = self.pool.fetch(page_id)
        try:
            if not page.can_insert(len(record)) \
                    and page.can_insert_after_compaction(len(record)):
                page.compact()
            if page.can_insert(len(record)):
                slot = page.insert(record)
                self.pool.unpin(page_id, dirty=True)
                return RID(page_no, slot)
        except Exception:
            self.pool.unpin(page_id)
            raise
        self.pool.unpin(page_id)
        return None

    # -- TableStorage interface -----------------------------------------------------

    def insert(self, record: bytes) -> RID:
        if self._page_ids:
            rid = self._try_insert_on(len(self._page_ids) - 1, record)
            if rid is not None:
                return rid
        for page_no in sorted(self._free_pages):
            rid = self._try_insert_on(page_no, record)
            if rid is not None:
                return rid
            self._free_pages.discard(page_no)
        page_no = self._append_page()
        rid = self._try_insert_on(page_no, record)
        if rid is None:
            raise StorageError(
                "record of %d bytes does not fit an empty page" % len(record)
            )
        return rid

    def read(self, rid: RID) -> bytes:
        page_id = self._disk_page_id(rid.page_no)
        with self.pool.pinned(page_id) as page:
            return page.read(rid.slot)

    def update(self, rid: RID, record: bytes) -> RID:
        page_id = self._disk_page_id(rid.page_no)
        page = self.pool.fetch(page_id)
        updated = False
        try:
            updated = page.update_in_place(rid.slot, record)
        finally:
            self.pool.unpin(page_id, dirty=updated)
        if updated:
            return rid
        # Record grew: relocate.
        self.delete(rid)
        return self.insert(record)

    def delete(self, rid: RID) -> None:
        page_id = self._disk_page_id(rid.page_no)
        with self.pool.pinned(page_id, dirty=True) as page:
            page.delete(rid.slot)
        self._free_pages.add(rid.page_no)

    def _page_range(self, page_range) -> range:
        """Clamp an optional (lo, hi) page-number pair — a morsel — to the
        table's current page list; None means the whole table."""
        if page_range is None:
            return range(len(self._page_ids))
        lo, hi = page_range
        return range(max(0, lo), min(hi, len(self._page_ids)))

    def scan(self, page_range=None) -> Iterator[Tuple[RID, bytes]]:
        for page_no in self._page_range(page_range):
            page_id = self._page_ids[page_no]
            page = self.pool.fetch(page_id)
            try:
                records = list(page.records())
            finally:
                self.pool.unpin(page_id)
            for slot, record in records:
                yield RID(page_no, slot), record

    def scan_batches(self, batch_size, page_range=None):
        """Page-at-a-time scan: collects whole pages of record bytes and
        defers RID construction to the lazy ``make_rids`` callable."""
        chunks: List[Tuple[int, tuple]] = []  # (page_no, slots)
        records: List[bytes] = []
        for page_no in self._page_range(page_range):
            page_id = self._page_ids[page_no]
            page = self.pool.fetch(page_id)
            try:
                page_records = list(page.records())
            finally:
                self.pool.unpin(page_id)
            if not page_records:
                continue
            slots, recs = zip(*page_records)
            chunks.append((page_no, slots))
            records.extend(recs)
            if len(records) >= batch_size:
                yield _rid_maker(chunks), records
                chunks, records = [], []
        if records:
            yield _rid_maker(chunks), records

    @property
    def page_count(self) -> int:
        return len(self._page_ids)

    def truncate(self) -> None:
        for page_id in self._page_ids:
            if self.pool.contains(page_id):
                self.pool.discard(page_id)
            self.pool.disk.deallocate(page_id)
        self._page_ids = []
        self._free_pages = set()


def _rid_maker(chunks):
    """Lazy RID factory over (page_no, slots) page chunks."""
    def make() -> List[RID]:
        rids: List[RID] = []
        for page_no, slots in chunks:
            rids.extend(RID(page_no, slot) for slot in slots)
        return rids
    return make


# ---------------------------------------------------------------------------
# Hash partitioning
# ---------------------------------------------------------------------------

_F64_BE = struct.Struct(">d")


def stable_partition_hash(value) -> int:
    """Process-stable hash for partition routing.

    Must agree with Python's equality semantics for the SQL scalar domain
    (``1 == 1.0 == True`` all land in the same partition — the serial
    executor's dict-based joins and group-bys treat them as one key), and
    must be identical across processes (``hash()`` for str is salted per
    process, so CRC32 is used instead).  NULL routes to partition 0.
    """
    if value is None:
        return 0
    if value is True or value is False:
        return int(value)
    if type(value) is float:
        if value == int(value):
            return int(value)
        return zlib.crc32(_F64_BE.pack(value))
    if type(value) is int:
        return value
    if type(value) is str:
        return zlib.crc32(value.encode("utf-8"))
    raise StorageError(
        "cannot hash-partition value %r (%s)" % (value, type(value).__name__))


def partition_of(value, partitions: int) -> int:
    """Destination partition for a key value under HASH partitioning."""
    return stable_partition_hash(value) % partitions


class ShardedHeapStorage(TableStorage):
    """Hash-partitioned heap: N heap segments behind one table.

    Each partition is a full :class:`HeapTableStorage`; rows route to
    segment ``partition_of(row[partition column], N)`` on insert.  A global
    page directory maps table-relative page numbers to ``(partition, local
    page number)`` pairs in registration (creation) order, so RIDs, WAL
    replay, and page-range morsels all keep working unchanged on top of the
    directory translation.  Partition-restricted scans filter the directory,
    giving each parallel worker its own co-located shard.
    """

    kind = "heap-sharded"

    def __init__(self, table: TableDef, pool: BufferPool,
                 serializer: RecordSerializer):
        super().__init__(table, pool, serializer)
        if not table.partition_by or not table.partitions \
                or table.partitions < 1:
            raise StorageError(
                "table %s is not hash-partitioned" % table.name)
        self.partitions = table.partitions
        self._key_pos = next(
            col.position for col in table.columns
            if col.name == table.partition_by)
        self._segments: List[HeapTableStorage] = [
            HeapTableStorage(table, pool, serializer)
            for _ in range(self.partitions)]
        #: global page_no -> (partition, local page_no)
        self._pages: List[Tuple[int, int]] = []
        #: (partition, local page_no) -> global page_no
        self._page_index: Dict[Tuple[int, int], int] = {}
        self._row_counts: List[int] = [0] * self.partitions
        #: pages per partition already present in the global directory
        self._registered: List[int] = [0] * self.partitions

    # -- routing -----------------------------------------------------------------

    def route_value(self, value) -> int:
        """Partition for a value of the partitioning column."""
        return partition_of(value, self.partitions)

    def route_record(self, record: bytes) -> int:
        """Partition a serialized record routes to."""
        return self.route_value(self.serializer.deserialize(record)[self._key_pos])

    def _register_pages(self, partition: int) -> None:
        """Add any segment pages appended since the last call to the
        global directory (keeps global page numbers append-only)."""
        segment = self._segments[partition]
        local = self._registered[partition]
        while local < segment.page_count:
            self._page_index[(partition, local)] = len(self._pages)
            self._pages.append((partition, local))
            local += 1
        self._registered[partition] = local

    def _to_global(self, partition: int, rid: RID) -> RID:
        return RID(self._page_index[(partition, rid.page_no)], rid.slot)

    def _to_local(self, rid: RID) -> Tuple[int, RID]:
        if not 0 <= rid.page_no < len(self._pages):
            raise StorageError(
                "table %s has no page %d" % (self.table.name, rid.page_no))
        partition, local = self._pages[rid.page_no]
        return partition, RID(local, rid.slot)

    # -- TableStorage interface -----------------------------------------------------

    def insert(self, record: bytes) -> RID:
        partition = self.route_record(record)
        rid = self._segments[partition].insert(record)
        self._register_pages(partition)
        self._row_counts[partition] += 1
        return self._to_global(partition, rid)

    def read(self, rid: RID) -> bytes:
        partition, local = self._to_local(rid)
        return self._segments[partition].read(local)

    def update(self, rid: RID, record: bytes) -> RID:
        partition, local = self._to_local(rid)
        target = self.route_record(record)
        if target != partition:
            # Partition key changed: the row must move segments.
            self._segments[partition].delete(local)
            self._row_counts[partition] -= 1
            new_rid = self._segments[target].insert(record)
            self._register_pages(target)
            self._row_counts[target] += 1
            return self._to_global(target, new_rid)
        new_rid = self._segments[partition].update(local, record)
        self._register_pages(partition)
        return self._to_global(partition, new_rid)

    def delete(self, rid: RID) -> None:
        partition, local = self._to_local(rid)
        self._segments[partition].delete(local)
        self._row_counts[partition] -= 1

    def insert_at(self, rid: RID, record: bytes) -> RID:
        # Recovery replay: routing stays deterministic, so re-inserting
        # lands in the same partition the original insert chose.
        return self.insert(record)

    def _global_pages(self, page_range,
                      partition: Optional[int]) -> Iterator[Tuple[int, int, int]]:
        """(global page_no, partition, local page_no) in global page order,
        clamped to an optional morsel and/or restricted to one partition."""
        if page_range is None:
            lo, hi = 0, len(self._pages)
        else:
            lo, hi = max(0, page_range[0]), min(page_range[1], len(self._pages))
        for page_no in range(lo, hi):
            owner, local = self._pages[page_no]
            if partition is not None and owner != partition:
                continue
            yield page_no, owner, local

    def scan(self, page_range=None,
             partition: Optional[int] = None) -> Iterator[Tuple[RID, bytes]]:
        for page_no, owner, local in self._global_pages(page_range, partition):
            for local_rid, record in self._segments[owner].scan((local, local + 1)):
                yield RID(page_no, local_rid.slot), record

    def scan_batches(self, batch_size, page_range=None,
                     partition: Optional[int] = None):
        chunks: List[Tuple[int, tuple]] = []
        records: List[bytes] = []
        for page_no, owner, local in self._global_pages(page_range, partition):
            page_records = [
                (rid.slot, record)
                for rid, record in self._segments[owner].scan((local, local + 1))]
            if not page_records:
                continue
            slots, recs = zip(*page_records)
            chunks.append((page_no, slots))
            records.extend(recs)
            if len(records) >= batch_size:
                yield _rid_maker(chunks), records
                chunks, records = [], []
        if records:
            yield _rid_maker(chunks), records

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def truncate(self) -> None:
        for segment in self._segments:
            segment.truncate()
        self._pages = []
        self._page_index = {}
        self._row_counts = [0] * self.partitions
        self._registered = [0] * self.partitions

    # -- partition metadata --------------------------------------------------------

    def partition_pages(self, partition: int) -> List[int]:
        """Global page numbers owned by one partition."""
        return [page_no for page_no, (owner, _) in enumerate(self._pages)
                if owner == partition]

    def partition_info(self) -> List[Dict[str, int]]:
        """Per-partition statistics: page and live-row counts."""
        return [
            {"partition": p,
             "pages": self._segments[p].page_count,
             "rows": self._row_counts[p]}
            for p in range(self.partitions)]
