"""Storage engine: the runtime face of Core.

Ties together the catalog, buffer pool, storage managers, attachments
(access methods + constraints), the WAL and the lock manager.  All DML runs
through here: validation → integrity hooks → table lock → log → storage
manager → access-method maintenance → statistics.

The engine exposes the low-level ``apply_*`` primitives used by abort/undo
and recovery: they bypass locking and logging but still keep attachments and
statistics consistent.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.access.attachment import (
    AccessMethod,
    AccessMethodRegistry,
    Attachment,
    default_access_registry,
)
from repro.catalog.catalog import Catalog
from repro.catalog.schema import IndexDef, TableDef
from repro.datatypes.types import DataType
from repro.errors import DataTypeError, StorageError
from repro.storage.buffer import BufferPool, DiskManager
from repro.storage.lock import LockManager, LockMode
from repro.storage.record import RID, RecordSerializer
from repro.storage.storage_manager import (
    StorageManagerRegistry,
    TableStorage,
    default_registry,
)
from repro.storage.transaction import Transaction, TransactionManager
from repro.storage.wal import LogManager, LogRecordType


class StorageEngine:
    """One database instance's data manager."""

    def __init__(self, catalog: Catalog,
                 sm_registry: Optional[StorageManagerRegistry] = None,
                 access_registry: Optional[AccessMethodRegistry] = None,
                 pool_capacity: int = 64):
        self.catalog = catalog
        self.disk = DiskManager()
        self.pool = BufferPool(self.disk, capacity=pool_capacity)
        self.log = LogManager()
        self.locks = LockManager()
        self.transactions = TransactionManager(self.log, self.locks)
        self.storage_managers = sm_registry or default_registry()
        self.access_methods_registry = access_registry or default_access_registry()
        self._storage: Dict[str, TableStorage] = {}
        self._serializers: Dict[str, RecordSerializer] = {}
        self._attachments: Dict[str, List[Attachment]] = {}

    # -- DDL ----------------------------------------------------------------------

    def create_table(self, table: TableDef) -> TableDef:
        self.catalog.create_table(table)
        serializer = RecordSerializer([c.dtype for c in table.columns])
        self._serializers[table.name] = serializer
        if table.partition_by:
            # PARTITION BY HASH: N heap segments behind one directory.
            # TableDef validation already pinned storage_manager to "heap".
            from repro.storage.heap import ShardedHeapStorage

            self._storage[table.name] = ShardedHeapStorage(
                table, self.pool, serializer)
        else:
            self._storage[table.name] = self.storage_managers.create(
                table, self.pool, serializer
            )
        self._attachments[table.name] = []
        return table

    def drop_table(self, name: str) -> None:
        table = self.catalog.table(name)
        self._storage[table.name].truncate()
        del self._storage[table.name]
        del self._serializers[table.name]
        del self._attachments[table.name]
        self.catalog.drop_table(table.name)

    def create_index(self, index: IndexDef, **kwargs) -> AccessMethod:
        """Create an access-method attachment and build it from a scan."""
        table = self.catalog.table(index.table_name)
        self.catalog.create_index(index)
        try:
            if kwargs:
                factory = self.access_methods_registry._factories[
                    index.kind.lower()]
                access = factory(table, index, **kwargs)
            else:
                access = self.access_methods_registry.create(table, index)
            access.rebuild(self._scan_rows(table.name))
        except Exception:
            self.catalog.drop_index(index.name)
            raise
        self._attachments[table.name].append(access)
        return access

    def drop_index(self, name: str) -> None:
        index = self.catalog.index(name)
        self.catalog.drop_index(name)
        self._attachments[index.table_name] = [
            a for a in self._attachments[index.table_name]
            if not (isinstance(a, AccessMethod) and a.index.name == index.name)
        ]

    def add_constraint(self, table_name: str, constraint: Attachment) -> Attachment:
        """Attach an integrity constraint, validating existing rows."""
        table = self.catalog.table(table_name)
        for rid, row in self._scan_rows(table.name):
            constraint.before_insert(row)
            constraint.on_insert(rid, row)
        self._attachments[table.name].append(constraint)
        self.catalog.bump_schema_epoch(table.name)
        return constraint

    # -- lookups ---------------------------------------------------------------------

    def storage(self, table_name: str) -> TableStorage:
        try:
            return self._storage[table_name.lower()]
        except KeyError:
            raise StorageError("no storage for table %s" % table_name) from None

    def serializer(self, table_name: str) -> RecordSerializer:
        return self._serializers[table_name.lower()]

    def attachments(self, table_name: str) -> List[Attachment]:
        return list(self._attachments.get(table_name.lower(), []))

    def access_methods(self, table_name: str) -> List[AccessMethod]:
        return [a for a in self.attachments(table_name)
                if isinstance(a, AccessMethod)]

    def access_method(self, index_name: str) -> AccessMethod:
        index = self.catalog.index(index_name)
        for access in self.access_methods(index.table_name):
            if access.index.name == index.name:
                return access
        raise StorageError("index %s has no attachment" % index_name)

    # -- transactions --------------------------------------------------------------------

    def begin(self) -> Transaction:
        return self.transactions.begin()

    def commit(self, txn: Transaction) -> None:
        self.transactions.commit(txn)

    def abort(self, txn: Transaction) -> None:
        self.transactions.abort(txn, _UndoAdapter(self))

    # -- row preparation --------------------------------------------------------------------

    def prepare_row(self, table: TableDef,
                    row: Sequence[Any]) -> Tuple[Any, ...]:
        """Validate and coerce a row against the table schema."""
        if len(row) != table.arity:
            raise DataTypeError(
                "table %s expects %d values, got %d"
                % (table.name, table.arity, len(row))
            )
        prepared: List[Any] = []
        for value, column in zip(row, table.columns):
            if value is None:
                if not column.nullable:
                    raise DataTypeError(
                        "column %s.%s is NOT NULL" % (table.name, column.name)
                    )
                prepared.append(None)
                continue
            if column.dtype.validate(value):
                prepared.append(value)
                continue
            coerced = self._try_coerce(value, column.dtype)
            if coerced is None:
                raise DataTypeError(
                    "value %r is not valid for column %s.%s (%s)"
                    % (value, table.name, column.name, column.dtype.name)
                )
            prepared.append(coerced)
        return tuple(prepared)

    @staticmethod
    def _try_coerce(value: Any, target: DataType) -> Optional[Any]:
        from repro.datatypes.types import DoubleType, IntegerType

        if isinstance(target, DoubleType) and isinstance(value, int) \
                and not isinstance(value, bool):
            return float(value)
        if isinstance(target, IntegerType) and isinstance(value, float) \
                and value.is_integer():
            return int(value)
        return None

    # -- DML ------------------------------------------------------------------------------

    def insert(self, txn: Transaction, table_name: str,
               row: Sequence[Any]) -> RID:
        table = self.catalog.table(table_name)
        prepared = self.prepare_row(table, row)
        self.locks.acquire(txn.txn_id, ("table", table.name), LockMode.EXCLUSIVE)
        for attachment in self._attachments[table.name]:
            attachment.before_insert(prepared)
        record = self._serializers[table.name].serialize(prepared)
        self.log.append(txn.txn_id, LogRecordType.INSERT,
                        table=table.name, after=record)
        rid = self._storage[table.name].insert(record)
        # Patch the log record with the RID the storage manager picked.
        self.log.record(self.log.last_lsn(txn.txn_id)).rid = rid
        for attachment in self._attachments[table.name]:
            attachment.on_insert(rid, prepared)
        stats = self.catalog.statistics(table.name)
        stats.on_insert(dict(zip(table.column_names(), prepared)))
        stats.page_count = max(1, self._storage[table.name].page_count)
        self.catalog.note_dml(table.name)
        return rid

    def delete(self, txn: Transaction, table_name: str, rid: RID) -> None:
        table = self.catalog.table(table_name)
        self.locks.acquire(txn.txn_id, ("table", table.name), LockMode.EXCLUSIVE)
        storage = self._storage[table.name]
        record = storage.read(rid)
        row = self._serializers[table.name].deserialize(record)
        for attachment in self._attachments[table.name]:
            attachment.before_delete(rid, row)
        self.log.append(txn.txn_id, LogRecordType.DELETE,
                        table=table.name, rid=rid, before=record)
        storage.delete(rid)
        for attachment in self._attachments[table.name]:
            attachment.on_delete(rid, row)
        self.catalog.statistics(table.name).on_delete()
        self.catalog.note_dml(table.name)

    def update(self, txn: Transaction, table_name: str, rid: RID,
               new_row: Sequence[Any]) -> RID:
        table = self.catalog.table(table_name)
        prepared = self.prepare_row(table, new_row)
        self.locks.acquire(txn.txn_id, ("table", table.name), LockMode.EXCLUSIVE)
        storage = self._storage[table.name]
        serializer = self._serializers[table.name]
        old_record = storage.read(rid)
        old_row = serializer.deserialize(old_record)
        for attachment in self._attachments[table.name]:
            attachment.before_update(rid, old_row, prepared)
        new_record = serializer.serialize(prepared)
        self.log.append(txn.txn_id, LogRecordType.UPDATE, table=table.name,
                        rid=rid, before=old_record, after=new_record)
        new_rid = storage.update(rid, new_record)
        # Record where the row ended up, so undo/redo can find it even when
        # the storage manager relocated it.
        self.log.record(self.log.last_lsn(txn.txn_id)).new_rid = new_rid
        for attachment in self._attachments[table.name]:
            attachment.on_update(rid, new_rid, old_row, prepared)
        self.catalog.note_mutation()
        return new_rid

    def scan(self, txn: Optional[Transaction], table_name: str,
             page_range: Optional[Tuple[int, int]] = None,
             partition: Optional[int] = None
             ) -> Iterator[Tuple[RID, Tuple[Any, ...]]]:
        """Full scan; takes a shared table lock when run inside a txn.

        ``page_range`` — a (lo, hi) page-number morsel — restricts heap
        tables to a slice of their pages (the parallel runtime's unit of
        work); ``partition`` restricts hash-sharded tables to one shard;
        None scans everything.
        """
        table = self.catalog.table(table_name)
        if txn is not None:
            self.locks.acquire(txn.txn_id, ("table", table.name), LockMode.SHARED)
        return self._scan_rows(table.name, page_range, partition)

    def _scan_rows(self, table_name: str,
                   page_range: Optional[Tuple[int, int]] = None,
                   partition: Optional[int] = None
                   ) -> Iterator[Tuple[RID, Tuple[Any, ...]]]:
        serializer = self._serializers[table_name]
        storage = self._storage[table_name]
        if partition is not None:
            records = storage.scan(page_range=page_range, partition=partition)
        elif page_range is not None:
            records = storage.scan(page_range=page_range)
        else:
            records = storage.scan()
        for rid, record in records:
            yield rid, serializer.deserialize(record)

    def scan_batches(self, txn: Optional[Transaction], table_name: str,
                     batch_size: int,
                     page_range: Optional[Tuple[int, int]] = None,
                     partition: Optional[int] = None):
        """Batched full scan for the vectorized executor.

        Yields ``(make_rids, records)`` pairs of encoded record batches
        plus a lazy RID factory (see ``TableStorage.scan_batches``);
        callers decode the columns they need via the table's
        ``RecordSerializer.decode_columns``.  Takes the same shared table
        lock as :meth:`scan`; ``page_range`` restricts heap tables to a
        page-number morsel, ``partition`` sharded tables to one shard.
        """
        table = self.catalog.table(table_name)
        if txn is not None:
            self.locks.acquire(txn.txn_id, ("table", table.name), LockMode.SHARED)
        storage = self._storage[table.name]
        if partition is not None:
            return storage.scan_batches(batch_size, page_range=page_range,
                                        partition=partition)
        if page_range is not None:
            return storage.scan_batches(batch_size, page_range=page_range)
        return storage.scan_batches(batch_size)

    def table_page_count(self, table_name: str) -> int:
        """Current number of heap pages (for morsel carving)."""
        return self._storage[table_name].page_count

    def table_partitions(self, table_name: str) -> int:
        """Shard count of a hash-partitioned table (0 = unpartitioned)."""
        storage = self._storage.get(table_name.lower())
        return getattr(storage, "partitions", 0) or 0

    def partition_for(self, table_name: str, value: Any) -> int:
        """Shard a partitioning-column value routes to (pruning helper)."""
        return self._storage[table_name.lower()].route_value(value)

    def fetch(self, txn: Optional[Transaction], table_name: str,
              rid: RID) -> Tuple[Any, ...]:
        table = self.catalog.table(table_name)
        if txn is not None:
            self.locks.acquire(txn.txn_id, ("table", table.name), LockMode.SHARED)
        record = self._storage[table.name].read(rid)
        return self._serializers[table.name].deserialize(record)

    # -- checkpointing ------------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Write a fuzzy checkpoint: flush dirty pages, log the active
        transaction set, force the log."""
        self.pool.flush_all()
        self.log.append(0, LogRecordType.CHECKPOINT,
                        active_txns=self.transactions.active_ids())
        self.log.flush()

    # -- statistics --------------------------------------------------------------------------

    def recompute_statistics(self, table_name: str) -> None:
        """Exact statistics from a full scan (RUNSTATS)."""
        table = self.catalog.table(table_name)
        stats = self.catalog.statistics(table.name)
        rows = (row for _, row in self._scan_rows(table.name))
        stats.recompute(rows, table.column_names(),
                        page_count=self._storage[table.name].page_count)
        self.catalog.bump_stats_epoch(table.name)

    # -- recovery/undo primitives (no locking, no logging) --------------------------------------

    def apply_insert_at(self, table_name: str, rid: RID, record: bytes) -> RID:
        table = self.catalog.table(table_name)
        row = self._serializers[table.name].deserialize(record)
        new_rid = self._storage[table.name].insert_at(rid, record)
        for attachment in self._attachments[table.name]:
            attachment.on_insert(new_rid, row)
        self.catalog.statistics(table.name).on_insert(
            dict(zip(table.column_names(), row))
        )
        self.catalog.note_dml(table.name)
        return new_rid

    def apply_delete(self, table_name: str, rid: RID) -> None:
        table = self.catalog.table(table_name)
        storage = self._storage[table.name]
        record = storage.read(rid)
        row = self._serializers[table.name].deserialize(record)
        storage.delete(rid)
        for attachment in self._attachments[table.name]:
            attachment.on_delete(rid, row)
        self.catalog.statistics(table.name).on_delete()
        self.catalog.note_dml(table.name)

    def apply_update(self, table_name: str, rid: RID, record: bytes) -> RID:
        table = self.catalog.table(table_name)
        storage = self._storage[table.name]
        serializer = self._serializers[table.name]
        old_row = serializer.deserialize(storage.read(rid))
        new_row = serializer.deserialize(record)
        new_rid = storage.update(rid, record)
        for attachment in self._attachments[table.name]:
            attachment.on_update(rid, new_rid, old_row, new_row)
        self.catalog.note_mutation()
        return new_rid


class _UndoAdapter:
    """Adapter the TransactionManager drives during abort.

    Keeps a translation map from logged RIDs to current RIDs so undo stays
    correct even when a storage manager relocates records.
    """

    def __init__(self, engine: StorageEngine):
        self.engine = engine
        self._rid_map: Dict[Tuple[str, RID], RID] = {}

    def _current(self, table: str, rid: RID) -> RID:
        return self._rid_map.get((table, rid), rid)

    def apply_delete(self, table: str, rid: RID) -> None:
        self.engine.apply_delete(table, self._current(table, rid))

    def apply_insert_at(self, table: str, rid: RID, record: bytes) -> None:
        new_rid = self.engine.apply_insert_at(table, rid, record)
        self._rid_map[(table, rid)] = new_rid

    def apply_update(self, table: str, rid: RID, record: bytes) -> None:
        current = self._current(table, rid)
        new_rid = self.engine.apply_update(table, current, record)
        self._rid_map[(table, rid)] = new_rid

    def apply_undo_update(self, table: str, old_rid: RID, new_rid: RID,
                          before: bytes) -> None:
        """Undo an UPDATE: the row currently lives at ``new_rid`` (possibly
        remapped by later undos); restore the before image and remember the
        location under the *pre-update* RID for earlier undo steps."""
        current = self._current(table, new_rid)
        restored = self.engine.apply_update(table, current, before)
        self._rid_map[(table, old_rid)] = restored
