"""Lock manager: strict two-phase locking with deadlock detection.

Resources are hashable keys — the engine uses ``("table", name)`` and
``("row", name, rid)`` — with shared (S) and exclusive (X) modes and lock
upgrade.  Requests that conflict block on a condition variable; before
blocking, the requester adds edges to the waits-for graph and aborts with
:class:`DeadlockError` if that closes a cycle (the requester is the victim).
A timeout bounds pathological waits.
"""

from __future__ import annotations

import enum
import threading
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import DeadlockError, LockTimeoutError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(held: LockMode, requested: LockMode) -> bool:
    return held is LockMode.SHARED and requested is LockMode.SHARED


class _LockState:
    """Holders and waiters for one resource."""

    __slots__ = ("holders", "waiters")

    def __init__(self):
        self.holders: Dict[int, LockMode] = {}
        self.waiters: List[Tuple[int, LockMode]] = []


class LockManager:
    """Strict 2PL lock table for the whole engine."""

    def __init__(self, timeout: float = 5.0):
        self._mutex = threading.Lock()
        self._condition = threading.Condition(self._mutex)
        self._locks: Dict[Hashable, _LockState] = {}
        self._held_by_txn: Dict[int, Set[Hashable]] = {}
        self._waits_for: Dict[int, Set[int]] = {}
        self.timeout = timeout

    def reinit_locks(self) -> None:
        """Fresh mutex/condition after ``fork()``: a parent thread may
        have held the mutex at fork time, and the lock table is only
        meaningful for this process's transactions anyway."""
        self._mutex = threading.Lock()
        self._condition = threading.Condition(self._mutex)
        self._locks = {}
        self._held_by_txn = {}
        self._waits_for = {}

    # -- deadlock detection ---------------------------------------------------

    def _would_deadlock(self, waiter: int) -> bool:
        """DFS over the waits-for graph looking for a cycle through waiter."""
        stack = list(self._waits_for.get(waiter, ()))
        seen: Set[int] = set()
        while stack:
            txn = stack.pop()
            if txn == waiter:
                return True
            if txn in seen:
                continue
            seen.add(txn)
            stack.extend(self._waits_for.get(txn, ()))
        return False

    def _blockers(self, state: _LockState, txn_id: int,
                  mode: LockMode) -> Set[int]:
        blockers = set()
        for holder, held in state.holders.items():
            if holder == txn_id:
                continue
            if mode is LockMode.EXCLUSIVE or held is LockMode.EXCLUSIVE:
                blockers.add(holder)
        return blockers

    # -- public API -------------------------------------------------------------

    def acquire(self, txn_id: int, resource: Hashable,
                mode: LockMode) -> None:
        """Acquire (or upgrade to) ``mode`` on ``resource`` for ``txn_id``.

        The state is re-fetched on every pass and the waiter registers
        itself in ``state.waiters`` around the wait: ``release_all``
        garbage-collects states nobody holds *or waits on*, so a sleeping
        waiter must be visible or its state could be deleted and replaced
        underneath it — it would then watch (and mutate) an orphaned
        object while new acquirers use a fresh one, losing mutual
        exclusion and hanging on holders that already released.
        """
        with self._condition:
            while True:
                state = self._locks.setdefault(resource, _LockState())
                held = state.holders.get(txn_id)
                if held is LockMode.EXCLUSIVE or held is mode:
                    return  # already strong enough
                blockers = self._blockers(state, txn_id, mode)
                if not blockers:
                    state.holders[txn_id] = mode
                    self._held_by_txn.setdefault(txn_id, set()).add(resource)
                    self._waits_for.pop(txn_id, None)
                    return
                self._waits_for[txn_id] = blockers
                if self._would_deadlock(txn_id):
                    self._waits_for.pop(txn_id, None)
                    raise DeadlockError(
                        "transaction %d deadlocked waiting for %r" %
                        (txn_id, resource)
                    )
                entry = (txn_id, mode)
                state.waiters.append(entry)
                try:
                    notified = self._condition.wait(self.timeout)
                finally:
                    state.waiters.remove(entry)
                if not notified:
                    self._waits_for.pop(txn_id, None)
                    raise LockTimeoutError(
                        "transaction %d timed out waiting for %r" %
                        (txn_id, resource)
                    )

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by a transaction (commit/abort)."""
        with self._condition:
            for resource in self._held_by_txn.pop(txn_id, set()):
                state = self._locks.get(resource)
                if state is not None:
                    state.holders.pop(txn_id, None)
                    if not state.holders and not state.waiters:
                        del self._locks[resource]
            self._waits_for.pop(txn_id, None)
            self._condition.notify_all()

    def holding(self, txn_id: int) -> Set[Hashable]:
        with self._mutex:
            return set(self._held_by_txn.get(txn_id, set()))

    def mode_held(self, txn_id: int, resource: Hashable) -> Optional[LockMode]:
        with self._mutex:
            state = self._locks.get(resource)
            if state is None:
                return None
            return state.holders.get(txn_id)
