"""WAL-based recovery: logical redo of committed transactions.

The log written by :class:`~repro.storage.engine.StorageEngine` is logical
(table + RID + record images), so recovery is a deterministic replay:

1. **Analysis** — one pass over the log determines the winners (transactions
   with a COMMIT record at or below the flushed LSN).
2. **Redo** — a second pass re-applies every winner operation, in LSN order,
   through the engine's ``apply_*`` primitives.  A RID translation map keeps
   later operations correct when the replaying storage manager assigns a
   different RID than the original run did.

Loser transactions are skipped entirely: under strict two-phase locking
their writes cannot be interleaved with winners' writes on the same record,
so skipping them yields exactly the committed state (the equivalent of
ARIES redo-all + undo-losers for this logging discipline).
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.errors import RecoveryError
from repro.storage.record import RID
from repro.storage.wal import LogManager, LogRecordType


class RecoveryReport:
    """Summary of one recovery run (inspected by tests and benchmarks)."""

    def __init__(self):
        self.winners: Set[int] = set()
        self.losers: Set[int] = set()
        self.redone = 0
        self.skipped = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Recovery winners=%d losers=%d redone=%d skipped=%d>" % (
            len(self.winners), len(self.losers), self.redone, self.skipped)


def recover(log: LogManager, engine) -> RecoveryReport:
    """Replay ``log`` into a *fresh* ``engine`` with the same schema.

    The engine's tables must exist and be empty; attachments (indexes,
    constraints) are maintained by the ``apply_*`` primitives during replay.
    """
    report = RecoveryReport()
    seen: Set[int] = set()

    # Analysis pass: winners are transactions whose COMMIT is durable.
    for record in log.records():
        seen.add(record.txn_id)
        if record.type is LogRecordType.COMMIT and record.lsn <= log.flushed_lsn:
            report.winners.add(record.txn_id)
    report.losers = seen - report.winners

    # Redo pass.
    rid_map: Dict[Tuple[str, RID], RID] = {}

    def current(table: str, rid: RID) -> RID:
        return rid_map.get((table, rid), rid)

    for record in log.records():
        if record.txn_id not in report.winners:
            if record.type in (LogRecordType.INSERT, LogRecordType.DELETE,
                               LogRecordType.UPDATE):
                report.skipped += 1
            continue
        if record.type is LogRecordType.INSERT:
            if record.table is None or record.after is None or record.rid is None:
                raise RecoveryError("malformed INSERT at LSN %d" % record.lsn)
            new_rid = engine.apply_insert_at(record.table, record.rid, record.after)
            rid_map[(record.table, record.rid)] = new_rid
            report.redone += 1
        elif record.type is LogRecordType.DELETE:
            if record.table is None or record.rid is None:
                raise RecoveryError("malformed DELETE at LSN %d" % record.lsn)
            engine.apply_delete(record.table, current(record.table, record.rid))
            report.redone += 1
        elif record.type is LogRecordType.UPDATE:
            if record.table is None or record.rid is None or record.after is None:
                raise RecoveryError("malformed UPDATE at LSN %d" % record.lsn)
            replay_rid = engine.apply_update(
                record.table, current(record.table, record.rid), record.after
            )
            # Later log records refer to the row by its post-update location
            # in the original run.
            rid_map[(record.table, record.new_rid)] = replay_rid
            report.redone += 1
    return report
