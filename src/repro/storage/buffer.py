"""Disk manager and buffer pool.

The :class:`DiskManager` simulates stable storage: a dictionary of page
images with read/write counters.  The :class:`BufferPool` caches pages in
frames with pin counts, dirty bits and clock (second-chance) eviction, and
exposes hit/miss/eviction statistics.  Every table scan, index probe and DML
operation goes through the pool, so the counters reported by benchmarks
reflect genuine page traffic.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List

from repro.errors import BufferPoolError, StorageError
from repro.storage.page import PAGE_SIZE, Page


class DiskStats:
    """Read/write counters for the simulated disk."""

    __slots__ = ("reads", "writes", "allocations")

    def __init__(self):
        self.reads = 0
        self.writes = 0
        self.allocations = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0
        self.allocations = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<DiskStats reads=%d writes=%d allocs=%d>" % (
            self.reads, self.writes, self.allocations)


class DiskManager:
    """Simulated stable storage: page images keyed by page id."""

    def __init__(self):
        self._pages: Dict[int, bytes] = {}
        self._next_page_id = 0
        self.stats = DiskStats()

    def allocate(self) -> int:
        """Allocate a fresh, zeroed page and return its id."""
        page_id = self._next_page_id
        self._next_page_id += 1
        self._pages[page_id] = bytes(PAGE_SIZE)
        self.stats.allocations += 1
        return page_id

    def read(self, page_id: int) -> bytearray:
        try:
            image = self._pages[page_id]
        except KeyError:
            raise StorageError("no such page %d" % page_id) from None
        self.stats.reads += 1
        return bytearray(image)

    def write(self, page_id: int, data: bytes) -> None:
        if page_id not in self._pages:
            raise StorageError("no such page %d" % page_id)
        if len(data) != PAGE_SIZE:
            raise StorageError("bad page size %d" % len(data))
        self._pages[page_id] = bytes(data)
        self.stats.writes += 1

    def deallocate(self, page_id: int) -> None:
        self._pages.pop(page_id, None)

    @property
    def page_count(self) -> int:
        return len(self._pages)


class PoolStats:
    """Hit/miss/eviction counters for the buffer pool."""

    __slots__ = ("hits", "misses", "evictions", "flushes")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PoolStats hits=%d misses=%d evictions=%d>" % (
            self.hits, self.misses, self.evictions)


class _Frame:
    __slots__ = ("page", "pin_count", "dirty", "referenced")

    def __init__(self, page: Page):
        self.page = page
        self.pin_count = 0
        self.dirty = False
        self.referenced = True


class BufferPool:
    """Fixed-capacity page cache with clock eviction.

    ``fetch`` pins the returned page; callers must ``unpin`` (or use the
    :meth:`pinned` context manager) and declare dirtiness so the pool knows
    what to write back on eviction or flush.
    """

    def __init__(self, disk: DiskManager, capacity: int = 64):
        if capacity < 1:
            raise BufferPoolError("capacity must be at least 1")
        self.disk = disk
        self.capacity = capacity
        self._frames: Dict[int, _Frame] = {}
        self._clock: List[int] = []
        self._clock_hand = 0
        self.stats = PoolStats()
        #: Serving sessions share the pool across threads; the clock
        #: sweep, frame install and pin-count updates are multi-step, so
        #: every public entry point takes this re-entrant lock.  Page
        #: *contents* stay protected by the engine's table locks — this
        #: lock only keeps the frame table itself consistent.
        self._lock = threading.RLock()

    def reinit_locks(self) -> None:
        """Make the pool usable in a freshly forked child.

        The child starts single-threaded: a parent thread may have held
        the lock at fork time (replace it), and any pin a parent thread
        held will never be unpinned here — an inherited pin is garbage
        that would eventually wedge eviction with "all frames are
        pinned".  Dropping pins and rebuilding the clock ring from the
        frame table leaves the image self-consistent regardless of what
        multi-step update the fork interrupted.
        """
        self._lock = threading.RLock()
        for frame in self._frames.values():
            frame.pin_count = 0
        self._clock = list(self._frames)
        self._clock_hand = 0

    # -- frame management --------------------------------------------------------

    def _evict_one(self) -> None:
        """Run the clock until a victim with pin_count == 0 is found."""
        if not self._clock:
            raise BufferPoolError("buffer pool is empty; nothing to evict")
        scanned = 0
        limit = 2 * len(self._clock)
        while scanned <= limit:
            self._clock_hand %= len(self._clock)
            page_id = self._clock[self._clock_hand]
            frame = self._frames[page_id]
            if frame.pin_count == 0:
                if frame.referenced:
                    frame.referenced = False
                else:
                    self._write_back(page_id, frame)
                    del self._frames[page_id]
                    del self._clock[self._clock_hand]
                    self.stats.evictions += 1
                    return
            self._clock_hand += 1
            scanned += 1
        raise BufferPoolError(
            "all %d frames are pinned; cannot evict" % len(self._frames)
        )

    def _write_back(self, page_id: int, frame: _Frame) -> None:
        if frame.dirty:
            self.disk.write(page_id, bytes(frame.page.data))
            frame.dirty = False
            self.stats.flushes += 1

    def _install(self, page: Page) -> _Frame:
        while len(self._frames) >= self.capacity:
            self._evict_one()
        frame = _Frame(page)
        self._frames[page.page_id] = frame
        self._clock.append(page.page_id)
        return frame

    # -- public API -------------------------------------------------------------

    def fetch(self, page_id: int) -> Page:
        """Return the page pinned; load from disk on a miss."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
                frame = self._install(
                    Page(page_id, self.disk.read(page_id)))
            frame.pin_count += 1
            frame.referenced = True
            return frame.page

    def new_page(self) -> Page:
        """Allocate a fresh page on disk and return it pinned and dirty."""
        with self._lock:
            page_id = self.disk.allocate()
            frame = self._install(Page(page_id))
            frame.pin_count += 1
            frame.dirty = True
            return frame.page

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or frame.pin_count <= 0:
                raise BufferPoolError("page %d is not pinned" % page_id)
            frame.pin_count -= 1
            if dirty:
                frame.dirty = True

    @contextmanager
    def pinned(self, page_id: int, dirty: bool = False) -> Iterator[Page]:
        """Context manager: fetch + unpin with the given dirtiness."""
        page = self.fetch(page_id)
        try:
            yield page
        finally:
            self.unpin(page_id, dirty)

    def flush_all(self) -> None:
        """Write every dirty frame back to disk (checkpoint support)."""
        with self._lock:
            for page_id, frame in self._frames.items():
                self._write_back(page_id, frame)

    def pin_count(self, page_id: int) -> int:
        with self._lock:
            frame = self._frames.get(page_id)
            return frame.pin_count if frame else 0

    def contains(self, page_id: int) -> bool:
        return page_id in self._frames

    def discard(self, page_id: int) -> None:
        """Drop a frame without writing it back (page being deallocated)."""
        with self._lock:
            frame = self._frames.pop(page_id, None)
            if frame is not None:
                if frame.pin_count > 0:
                    raise BufferPoolError(
                        "cannot discard pinned page %d" % page_id)
                self._clock.remove(page_id)
                self._clock_hand = 0

    def resize(self, capacity: int) -> None:
        """Change capacity (used by the buffer-size benchmark)."""
        if capacity < 1:
            raise BufferPoolError("capacity must be at least 1")
        with self._lock:
            self.capacity = capacity
            while len(self._frames) > self.capacity:
                self._evict_one()

    def __len__(self) -> int:
        return len(self._frames)
