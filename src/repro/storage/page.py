"""Slotted pages.

Layout of a page (little-endian, PAGE_SIZE bytes):

    offset 0:  uint16  slot_count
    offset 2:  uint16  free_space_offset   (records grow down from the end)
    offset 4:  slot directory, slot_count entries of (uint16 offset, uint16 length)
    ...
    free space
    ...
    records packed at the tail

A deleted slot keeps its directory entry with offset == 0 and length == 0 so
RIDs of other records stay stable; deleted slots are reused by later inserts.
Updates that fit in place are done in place; larger records must be moved by
the storage manager (delete + insert elsewhere).
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

from repro.errors import PageError

#: Page size in bytes.  Small enough that benchmarks show multi-page effects
#: on laptop-scale data, large enough to hold realistic rows.
PAGE_SIZE = 4096

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
_HEADER_SIZE = _HEADER.size
_SLOT_SIZE = _SLOT.size


class Page:
    """One slotted page over a mutable bytearray."""

    __slots__ = ("page_id", "data")

    def __init__(self, page_id: int, data: Optional[bytearray] = None):
        self.page_id = page_id
        if data is None:
            data = bytearray(PAGE_SIZE)
            _HEADER.pack_into(data, 0, 0, PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise PageError("page %d has size %d" % (page_id, len(data)))
        self.data = data

    # -- header helpers -------------------------------------------------------

    @property
    def slot_count(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[0]

    @property
    def free_space_offset(self) -> int:
        return _HEADER.unpack_from(self.data, 0)[1]

    def _set_header(self, slot_count: int, free_offset: int) -> None:
        _HEADER.pack_into(self.data, 0, slot_count, free_offset)

    def _slot(self, slot: int) -> Tuple[int, int]:
        if not 0 <= slot < self.slot_count:
            raise PageError("page %d has no slot %d" % (self.page_id, slot))
        return _SLOT.unpack_from(self.data, _HEADER_SIZE + slot * _SLOT_SIZE)

    def _set_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, _HEADER_SIZE + slot * _SLOT_SIZE, offset, length)

    # -- space accounting -------------------------------------------------------

    def free_space(self) -> int:
        """Contiguous free bytes between the slot directory and the records."""
        directory_end = _HEADER_SIZE + self.slot_count * _SLOT_SIZE
        return self.free_space_offset - directory_end

    def _find_free_slot(self) -> Optional[int]:
        for slot in range(self.slot_count):
            offset, length = self._slot(slot)
            if offset == 0 and length == 0:
                return slot
        return None

    def can_insert(self, record_length: int) -> bool:
        """True when ``insert`` with a record of this size will succeed."""
        if record_length == 0:
            record_length = 1  # zero-length records still need a marker byte
        needed = record_length
        if self._find_free_slot() is None:
            needed += _SLOT_SIZE
        return self.free_space() >= needed

    # -- record operations -------------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Insert a record, returning its slot number."""
        length = len(record)
        stored = record if length > 0 else b"\x00"
        if not self.can_insert(length):
            raise PageError(
                "page %d cannot fit a %d-byte record" % (self.page_id, length)
            )
        slot = self._find_free_slot()
        slot_count = self.slot_count
        if slot is None:
            slot = slot_count
            slot_count += 1
        new_offset = self.free_space_offset - len(stored)
        self.data[new_offset: new_offset + len(stored)] = stored
        self._set_header(slot_count, new_offset)
        self._set_slot(slot, new_offset, length)
        return slot

    def read(self, slot: int) -> bytes:
        """Read the record in ``slot``; deleted slots raise."""
        offset, length = self._slot(slot)
        if offset == 0 and length == 0:
            raise PageError("slot %d of page %d is empty" % (slot, self.page_id))
        return bytes(self.data[offset: offset + length])

    def is_live(self, slot: int) -> bool:
        offset, length = self._slot(slot)
        return not (offset == 0 and length == 0)

    def delete(self, slot: int) -> None:
        """Delete the record in ``slot`` (directory entry is kept)."""
        offset, length = self._slot(slot)
        if offset == 0 and length == 0:
            raise PageError("slot %d of page %d already empty" % (slot, self.page_id))
        self._set_slot(slot, 0, 0)

    def update_in_place(self, slot: int, record: bytes) -> bool:
        """Overwrite a record if the new bytes fit in its current space.

        Returns False (without modifying the page) when the record grew and
        the caller must relocate it instead.
        """
        offset, length = self._slot(slot)
        if offset == 0 and length == 0:
            raise PageError("slot %d of page %d is empty" % (slot, self.page_id))
        reserved = max(length, 1)
        if len(record) > reserved:
            return False
        stored = record if record else b"\x00"
        self.data[offset: offset + len(stored)] = stored
        self._set_slot(slot, offset, len(record))
        return True

    def reclaimable_space(self) -> int:
        """Bytes occupied by deleted records (freed by :meth:`compact`)."""
        live = 0
        for slot in range(self.slot_count):
            offset, length = self._slot(slot)
            if offset != 0 or length != 0:
                live += max(length, 1)
        return (PAGE_SIZE - self.free_space_offset) - live

    def can_insert_after_compaction(self, record_length: int) -> bool:
        if record_length == 0:
            record_length = 1
        needed = record_length
        if self._find_free_slot() is None:
            needed += _SLOT_SIZE
        return self.free_space() + self.reclaimable_space() >= needed

    def compact(self) -> None:
        """Rewrite live records contiguously at the page tail, reclaiming
        the space of deleted records.  Slot numbers (and thus RIDs) are
        unchanged."""
        live: list = []
        for slot in range(self.slot_count):
            offset, length = self._slot(slot)
            if offset == 0 and length == 0:
                continue
            stored = max(length, 1)
            live.append((slot, length, bytes(self.data[offset: offset + stored])))
        write_at = PAGE_SIZE
        for slot, length, payload in live:
            write_at -= len(payload)
            self.data[write_at: write_at + len(payload)] = payload
            self._set_slot(slot, write_at, length)
        self._set_header(self.slot_count, write_at)

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield (slot, record bytes) for every live record.

        Hot path of every table scan: the header is unpacked once and
        the slot directory is read inline rather than through
        :meth:`_slot` (which re-reads the header to bounds-check each
        call — a third of scan time on large tables)."""
        data = self.data
        unpack = _SLOT.unpack_from
        for slot in range(_HEADER.unpack_from(data, 0)[0]):
            offset, length = unpack(data, _HEADER_SIZE + slot * _SLOT_SIZE)
            if offset == 0 and length == 0:
                continue
            yield slot, bytes(data[offset: offset + length])

    def live_count(self) -> int:
        return sum(1 for _ in self.records())
