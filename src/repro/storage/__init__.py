"""Core's storage layer: records, slotted pages, buffering, WAL, locking.

This package is the reproduction of the parts of Starburst's data manager
(*Core*) that Corona depends on: record management, buffer management,
pluggable storage managers, concurrency control and recovery (section 1 of
the paper).  The "disk" is an in-memory byte store with read/write counters
so benchmarks can report I/O the way the paper's cost model reasons about it.
"""

from repro.storage.record import RID, RecordSerializer
from repro.storage.page import PAGE_SIZE, Page
from repro.storage.buffer import BufferPool, DiskManager
from repro.storage.storage_manager import (
    StorageManagerRegistry,
    TableStorage,
    default_registry,
)
from repro.storage.heap import HeapTableStorage
from repro.storage.fixed import FixedTableStorage
from repro.storage.wal import LogManager, LogRecord, LogRecordType
from repro.storage.lock import LockManager, LockMode
from repro.storage.transaction import Transaction, TransactionManager


def __getattr__(name):
    # StorageEngine is provided lazily: importing it eagerly would close an
    # import cycle with repro.access (the engine drives attachments, and
    # attachments store RIDs).
    if name == "StorageEngine":
        from repro.storage.engine import StorageEngine

        return StorageEngine
    raise AttributeError(name)

__all__ = [
    "RID",
    "RecordSerializer",
    "PAGE_SIZE",
    "Page",
    "BufferPool",
    "DiskManager",
    "StorageManagerRegistry",
    "TableStorage",
    "default_registry",
    "HeapTableStorage",
    "FixedTableStorage",
    "LogManager",
    "LogRecord",
    "LogRecordType",
    "LockManager",
    "LockMode",
    "Transaction",
    "TransactionManager",
    "StorageEngine",
]
