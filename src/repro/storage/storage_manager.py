"""Storage-manager abstraction and registry.

Starburst's data management extension architecture ([LIND87]) lets a DBC add
new *storage managers*; the paper's example is one that "handles fixed-length
records only -- but extremely efficiently".  Corona "must ensure that the
correct storage manager is invoked when a table is accessed" — here that
dispatch happens through :class:`StorageManagerRegistry`, keyed by the
``storage_manager`` name recorded in the table's catalog entry.

A storage manager implements :class:`TableStorage` for one table: insert /
read / update / delete by RID plus a full scan, all in terms of serialized
record bytes and the shared buffer pool.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple

from repro.catalog.schema import TableDef
from repro.errors import ExtensionError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.record import RID, RecordSerializer


class TableStorage:
    """Interface every storage manager implements for one table."""

    #: Registry name; set by subclasses.
    kind = "abstract"

    def __init__(self, table: TableDef, pool: BufferPool,
                 serializer: RecordSerializer):
        self.table = table
        self.pool = pool
        self.serializer = serializer

    # -- record interface --------------------------------------------------------

    def insert(self, record: bytes) -> RID:
        """Store a record, returning its RID."""
        raise NotImplementedError

    def read(self, rid: RID) -> bytes:
        """Fetch the record bytes at ``rid``."""
        raise NotImplementedError

    def update(self, rid: RID, record: bytes) -> RID:
        """Replace the record at ``rid``; the RID may change if it moves."""
        raise NotImplementedError

    def delete(self, rid: RID) -> None:
        """Remove the record at ``rid``."""
        raise NotImplementedError

    def scan(self) -> Iterator[Tuple[RID, bytes]]:
        """Yield every live (RID, record bytes) pair in storage order."""
        raise NotImplementedError

    def scan_batches(
        self, batch_size: int,
    ) -> Iterator[Tuple[Callable[[], List[RID]], List[bytes]]]:
        """Yield ``(make_rids, records)`` batches in storage order.

        ``records`` is a list of serialized record bytes; ``make_rids``
        lazily materializes the matching RID list, so scans that never
        look at RIDs (the vectorized executor's common case) skip RID
        construction entirely.  The default chunks :meth:`scan`; storage
        managers can override it with a page-at-a-time fast path.
        """
        rids: List[RID] = []
        records: List[bytes] = []
        for rid, record in self.scan():
            rids.append(rid)
            records.append(record)
            if len(records) >= batch_size:
                yield (lambda out=rids: out), records
                rids, records = [], []
        if records:
            yield (lambda out=rids: out), records

    def insert_at(self, rid: RID, record: bytes) -> RID:
        """Re-insert a record during recovery/undo, preferably at ``rid``.

        The default implementation ignores the requested RID; storage
        managers with stable addressing may honour it.
        """
        return self.insert(record)

    # -- bookkeeping --------------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Number of pages the table occupies (for statistics/costing)."""
        raise NotImplementedError

    def truncate(self) -> None:
        """Remove all records (used by recovery before a logical replay)."""
        raise NotImplementedError


StorageFactory = Callable[[TableDef, BufferPool, RecordSerializer], TableStorage]


class StorageManagerRegistry:
    """Maps storage-manager names to factories producing TableStorage."""

    def __init__(self):
        self._factories: Dict[str, StorageFactory] = {}

    def register(self, name: str, factory: StorageFactory,
                 replace: bool = False) -> None:
        key = name.lower()
        if not replace and key in self._factories:
            raise ExtensionError("storage manager %s already registered" % name)
        self._factories[key] = factory

    def create(self, table: TableDef, pool: BufferPool,
               serializer: RecordSerializer) -> TableStorage:
        """Instantiate the storage manager named in the table definition."""
        factory = self._factories.get(table.storage_manager.lower())
        if factory is None:
            raise StorageError(
                "table %s names unknown storage manager %s"
                % (table.name, table.storage_manager)
            )
        return factory(table, pool, serializer)

    def names(self) -> List[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._factories


def default_registry() -> StorageManagerRegistry:
    """Registry with the built-in storage managers (heap, fixed)."""
    from repro.storage.heap import HeapTableStorage
    from repro.storage.fixed import FixedTableStorage

    registry = StorageManagerRegistry()
    registry.register("heap", HeapTableStorage)
    registry.register("fixed", FixedTableStorage)
    return registry
