"""Fixed-length storage manager — the paper's example DBC extension.

Section 1 of the paper: "a DBC could define a new storage manager which
handles fixed-length records only -- but extremely efficiently."  This
storage manager requires every column to have a fixed serialized width; it
then dispenses with the slot directory and packs records at computed
offsets, fitting more records per page than the heap manager:

    page layout:  [uint16 live bitmap words ...][record 0][record 1]...

A per-page occupancy bitmap marks live records.  RIDs are (table page
number, record index within page) and are stable, so :meth:`insert_at` can
honour the requested RID during recovery.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.catalog.schema import TableDef
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.page import PAGE_SIZE
from repro.storage.record import RID, RecordSerializer
from repro.storage.storage_manager import TableStorage


class FixedTableStorage(TableStorage):
    """Packed fixed-width records with an occupancy bitmap per page."""

    kind = "fixed"

    def __init__(self, table: TableDef, pool: BufferPool,
                 serializer: RecordSerializer):
        super().__init__(table, pool, serializer)
        width = serializer.fixed_record_width()
        if width is None:
            raise StorageError(
                "table %s has variable-width columns; the fixed storage "
                "manager requires fixed-width types only" % table.name
            )
        self.record_width = width
        # Solve for the record count n: bitmap(ceil(n/8)) + n*width <= PAGE_SIZE.
        n = PAGE_SIZE // max(1, width)
        while n > 0 and (n + 7) // 8 + n * width > PAGE_SIZE:
            n -= 1
        if n == 0:
            raise StorageError(
                "record width %d exceeds page size" % width
            )
        self.records_per_page = n
        self._bitmap_bytes = (n + 7) // 8
        self._page_ids: List[int] = []
        self._free_hint: int = 0  # first page that may have space

    # -- page helpers -------------------------------------------------------------

    def _record_offset(self, index: int) -> int:
        return self._bitmap_bytes + index * self.record_width

    def _is_live(self, page_data, index: int) -> bool:
        return bool(page_data[index // 8] & (1 << (index % 8)))

    def _set_live(self, page_data, index: int, live: bool) -> None:
        if live:
            page_data[index // 8] |= 1 << (index % 8)
        else:
            page_data[index // 8] &= ~(1 << (index % 8))

    def _disk_page_id(self, page_no: int) -> int:
        if not 0 <= page_no < len(self._page_ids):
            raise StorageError(
                "table %s has no page %d" % (self.table.name, page_no)
            )
        return self._page_ids[page_no]

    def _append_page(self) -> int:
        page = self.pool.new_page()
        # The generic Page constructor wrote a slotted-page header; this
        # storage manager owns the whole page, bitmap-first.
        page.data[0:4] = b"\x00\x00\x00\x00"
        self._page_ids.append(page.page_id)
        self.pool.unpin(page.page_id, dirty=True)
        return len(self._page_ids) - 1

    def _find_free_index(self, page_data) -> Optional[int]:
        for index in range(self.records_per_page):
            if not self._is_live(page_data, index):
                return index
        return None

    def _store(self, page_no: int, index: int, record: bytes) -> RID:
        page_id = self._disk_page_id(page_no)
        with self.pool.pinned(page_id, dirty=True) as page:
            offset = self._record_offset(index)
            page.data[offset: offset + self.record_width] = record
            self._set_live(page.data, index, True)
        return RID(page_no, index)

    def _check_record(self, record: bytes) -> bytes:
        if len(record) != self.record_width:
            raise StorageError(
                "fixed storage manager expected %d-byte records, got %d"
                % (self.record_width, len(record))
            )
        return record

    # -- TableStorage interface -----------------------------------------------------

    def insert(self, record: bytes) -> RID:
        self._check_record(record)
        for page_no in range(self._free_hint, len(self._page_ids)):
            page_id = self._disk_page_id(page_no)
            page = self.pool.fetch(page_id)
            try:
                index = self._find_free_index(page.data)
            finally:
                self.pool.unpin(page_id)
            if index is not None:
                self._free_hint = page_no
                return self._store(page_no, index, record)
        page_no = self._append_page()
        self._free_hint = page_no
        return self._store(page_no, 0, record)

    def insert_at(self, rid: RID, record: bytes) -> RID:
        """Honour the requested RID when the page exists and slot is free."""
        self._check_record(record)
        while rid.page_no >= len(self._page_ids):
            self._append_page()
        if rid.slot >= self.records_per_page:
            return self.insert(record)
        page_id = self._disk_page_id(rid.page_no)
        page = self.pool.fetch(page_id)
        try:
            occupied = self._is_live(page.data, rid.slot)
        finally:
            self.pool.unpin(page_id)
        if occupied:
            return self.insert(record)
        return self._store(rid.page_no, rid.slot, record)

    def read(self, rid: RID) -> bytes:
        page_id = self._disk_page_id(rid.page_no)
        with self.pool.pinned(page_id) as page:
            if rid.slot >= self.records_per_page or not self._is_live(page.data, rid.slot):
                raise StorageError("no record at %s" % (rid,))
            offset = self._record_offset(rid.slot)
            return bytes(page.data[offset: offset + self.record_width])

    def update(self, rid: RID, record: bytes) -> RID:
        self._check_record(record)
        page_id = self._disk_page_id(rid.page_no)
        with self.pool.pinned(page_id, dirty=True) as page:
            if not self._is_live(page.data, rid.slot):
                raise StorageError("no record at %s" % (rid,))
            offset = self._record_offset(rid.slot)
            page.data[offset: offset + self.record_width] = record
        return rid

    def delete(self, rid: RID) -> None:
        page_id = self._disk_page_id(rid.page_no)
        with self.pool.pinned(page_id, dirty=True) as page:
            if rid.slot >= self.records_per_page or not self._is_live(page.data, rid.slot):
                raise StorageError("no record at %s" % (rid,))
            self._set_live(page.data, rid.slot, False)
        self._free_hint = min(self._free_hint, rid.page_no)

    def scan(self) -> Iterator[Tuple[RID, bytes]]:
        for page_no in range(len(self._page_ids)):
            page_id = self._page_ids[page_no]
            page = self.pool.fetch(page_id)
            try:
                rows = []
                for index in range(self.records_per_page):
                    if self._is_live(page.data, index):
                        offset = self._record_offset(index)
                        rows.append(
                            (index, bytes(page.data[offset: offset + self.record_width]))
                        )
            finally:
                self.pool.unpin(page_id)
            for index, record in rows:
                yield RID(page_no, index), record

    @property
    def page_count(self) -> int:
        return len(self._page_ids)

    def truncate(self) -> None:
        for page_id in self._page_ids:
            if self.pool.contains(page_id):
                self.pool.discard(page_id)
            self.pool.disk.deallocate(page_id)
        self._page_ids = []
        self._free_hint = 0
