"""Record identifiers and row (de)serialization.

Rows cross the Corona/Core boundary as Python tuples; inside Core they are
byte strings laid out as:

    [null bitmap][field 0][field 1]...

- the null bitmap has one bit per column (bit set = NULL, field omitted),
- fixed-width fields (``DataType.fixed_width``) are stored raw,
- variable-width fields are prefixed with a 4-byte little-endian length.

The serializer is built once per table from its column types.
"""

from __future__ import annotations

import struct
from typing import Any, List, NamedTuple, Optional, Sequence, Tuple

from repro.datatypes.types import DataType
from repro.errors import RecordError

_LEN = struct.Struct("<I")


class RID(NamedTuple):
    """Record identifier: page number within the table plus slot number."""

    page_no: int
    slot: int

    def __str__(self) -> str:
        return "(%d,%d)" % (self.page_no, self.slot)


class RecordSerializer:
    """Converts row tuples to/from the byte layout described above."""

    def __init__(self, dtypes: Sequence[DataType]):
        self.dtypes: Tuple[DataType, ...] = tuple(dtypes)
        self._bitmap_bytes = (len(self.dtypes) + 7) // 8

    @property
    def arity(self) -> int:
        return len(self.dtypes)

    def fixed_record_width(self) -> Optional[int]:
        """Total serialized width when every column is fixed width.

        Returns None when any column is variable width.  Used by the
        fixed-length storage manager to compute records-per-page.
        """
        total = self._bitmap_bytes
        for dtype in self.dtypes:
            if dtype.fixed_width is None:
                return None
            total += dtype.fixed_width
        return total

    def serialize(self, row: Sequence[Any]) -> bytes:
        """Encode one row.  Values must already be validated/coerced."""
        if len(row) != len(self.dtypes):
            raise RecordError(
                "row has %d fields, schema has %d" % (len(row), len(self.dtypes))
            )
        bitmap = bytearray(self._bitmap_bytes)
        parts: List[bytes] = []
        for index, (value, dtype) in enumerate(zip(row, self.dtypes)):
            if value is None:
                bitmap[index // 8] |= 1 << (index % 8)
                if dtype.fixed_width is not None:
                    # Keep fixed layout stable: emit zero padding for NULLs.
                    parts.append(b"\x00" * dtype.fixed_width)
                continue
            try:
                data = dtype.serialize(value)
            except Exception as exc:
                raise RecordError(
                    "cannot serialize %r as %s: %s" % (value, dtype.name, exc)
                ) from exc
            if dtype.fixed_width is not None:
                if len(data) != dtype.fixed_width:
                    raise RecordError(
                        "%s serialized to %d bytes, expected %d"
                        % (dtype.name, len(data), dtype.fixed_width)
                    )
                parts.append(data)
            else:
                parts.append(_LEN.pack(len(data)))
                parts.append(data)
        return bytes(bitmap) + b"".join(parts)

    def deserialize(self, data: bytes) -> Tuple[Any, ...]:
        """Decode one row previously produced by :meth:`serialize`."""
        bitmap = data[: self._bitmap_bytes]
        offset = self._bitmap_bytes
        values: List[Any] = []
        for index, dtype in enumerate(self.dtypes):
            is_null = bool(bitmap[index // 8] & (1 << (index % 8)))
            if dtype.fixed_width is not None:
                field = data[offset: offset + dtype.fixed_width]
                offset += dtype.fixed_width
                values.append(None if is_null else dtype.deserialize(field))
            else:
                if is_null:
                    values.append(None)
                    continue
                (length,) = _LEN.unpack_from(data, offset)
                offset += _LEN.size
                field = data[offset: offset + length]
                offset += length
                values.append(dtype.deserialize(field))
        return tuple(values)
