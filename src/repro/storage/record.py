"""Record identifiers and row (de)serialization.

Rows cross the Corona/Core boundary as Python tuples; inside Core they are
byte strings laid out as:

    [null bitmap][field 0][field 1]...

- the null bitmap has one bit per column (bit set = NULL, field omitted),
- fixed-width fields (``DataType.fixed_width``) are stored raw,
- variable-width fields are prefixed with a 4-byte little-endian length.

The serializer is built once per table from its column types.
"""

from __future__ import annotations

import struct
from typing import Any, List, NamedTuple, Optional, Sequence, Tuple

from repro.datatypes.types import (
    BooleanType,
    DataType,
    DoubleType,
    IntegerType,
)
from repro.errors import RecordError

_LEN = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


class RID(NamedTuple):
    """Record identifier: page number within the table plus slot number."""

    page_no: int
    slot: int

    def __str__(self) -> str:
        return "(%d,%d)" % (self.page_no, self.slot)


class RecordSerializer:
    """Converts row tuples to/from the byte layout described above."""

    def __init__(self, dtypes: Sequence[DataType]):
        self.dtypes: Tuple[DataType, ...] = tuple(dtypes)
        self._bitmap_bytes = (len(self.dtypes) + 7) // 8
        self._offsets = self._static_offsets()
        self._decoders: dict = {}
        self._combined: dict = {}

    @property
    def arity(self) -> int:
        return len(self.dtypes)

    def fixed_record_width(self) -> Optional[int]:
        """Total serialized width when every column is fixed width.

        Returns None when any column is variable width.  Used by the
        fixed-length storage manager to compute records-per-page.
        """
        total = self._bitmap_bytes
        for dtype in self.dtypes:
            if dtype.fixed_width is None:
                return None
            total += dtype.fixed_width
        return total

    def serialize(self, row: Sequence[Any]) -> bytes:
        """Encode one row.  Values must already be validated/coerced."""
        if len(row) != len(self.dtypes):
            raise RecordError(
                "row has %d fields, schema has %d" % (len(row), len(self.dtypes))
            )
        bitmap = bytearray(self._bitmap_bytes)
        parts: List[bytes] = []
        for index, (value, dtype) in enumerate(zip(row, self.dtypes)):
            if value is None:
                bitmap[index // 8] |= 1 << (index % 8)
                if dtype.fixed_width is not None:
                    # Keep fixed layout stable: emit zero padding for NULLs.
                    parts.append(b"\x00" * dtype.fixed_width)
                continue
            try:
                data = dtype.serialize(value)
            except Exception as exc:
                raise RecordError(
                    "cannot serialize %r as %s: %s" % (value, dtype.name, exc)
                ) from exc
            if dtype.fixed_width is not None:
                if len(data) != dtype.fixed_width:
                    raise RecordError(
                        "%s serialized to %d bytes, expected %d"
                        % (dtype.name, len(data), dtype.fixed_width)
                    )
                parts.append(data)
            else:
                parts.append(_LEN.pack(len(data)))
                parts.append(data)
        return bytes(bitmap) + b"".join(parts)

    def deserialize(self, data: bytes) -> Tuple[Any, ...]:
        """Decode one row previously produced by :meth:`serialize`."""
        bitmap = data[: self._bitmap_bytes]
        offset = self._bitmap_bytes
        values: List[Any] = []
        for index, dtype in enumerate(self.dtypes):
            is_null = bool(bitmap[index // 8] & (1 << (index % 8)))
            if dtype.fixed_width is not None:
                field = data[offset: offset + dtype.fixed_width]
                offset += dtype.fixed_width
                values.append(None if is_null else dtype.deserialize(field))
            else:
                if is_null:
                    values.append(None)
                    continue
                (length,) = _LEN.unpack_from(data, offset)
                offset += _LEN.size
                field = data[offset: offset + length]
                offset += length
                values.append(dtype.deserialize(field))
        return tuple(values)

    # ------------------------------------------------------------------
    # Columnar (batch) decoding — used by the vectorized executor.
    # ------------------------------------------------------------------

    def _static_offsets(self) -> List[Optional[int]]:
        """Byte offset of each column, or None once the offset becomes
        data-dependent (the column follows a variable-width field, or is
        variable width itself).  NULL fixed-width fields are zero-padded
        on serialize, so static offsets survive NULLs."""
        offsets: List[Optional[int]] = []
        offset: Optional[int] = self._bitmap_bytes
        for dtype in self.dtypes:
            if offset is None or dtype.fixed_width is None:
                offsets.append(None)
                offset = None
            else:
                offsets.append(offset)
                offset += dtype.fixed_width
        return offsets

    def column_decoder(self, index: int):
        """A batch decoder ``f(records) -> List[value]`` for one column,
        ignoring NULL bits (callers patch those via :meth:`null_rows`),
        or None when the column has no static offset."""
        if index in self._decoders:
            return self._decoders[index]
        offset = self._offsets[index]
        dtype = self.dtypes[index]
        decoder = None
        if offset is not None:
            # Exact-class checks: a DataType subclass may override
            # deserialize, so only the stock types get struct fast paths.
            if type(dtype) is IntegerType:
                unpack = _I64.unpack_from

                def decoder(records, _u=unpack, _o=offset):
                    return [_u(rec, _o)[0] for rec in records]
            elif type(dtype) is DoubleType:
                unpack = _F64.unpack_from

                def decoder(records, _u=unpack, _o=offset):
                    return [_u(rec, _o)[0] for rec in records]
            elif type(dtype) is BooleanType:
                def decoder(records, _o=offset):
                    return [rec[_o] != 0 for rec in records]
            else:
                width = dtype.fixed_width

                def decoder(records, _d=dtype.deserialize, _o=offset,
                            _w=width):
                    return [_d(rec[_o:_o + _w]) for rec in records]
        self._decoders[index] = decoder
        return decoder

    def combined_decoder(self, positions: Tuple[int, ...]):
        """A one-pass decoder ``f(records) -> List[tuple]`` for several
        columns together — a single pre-resolved ``struct`` unpack per
        record, with NULL bits applied inline.  The codegen backend's
        fused scans use this to touch each record exactly once.

        None unless every requested column is a stock fixed-width type
        at a static offset and the NULL bitmap is one byte (at most 8
        columns) — callers then fall back to per-column decoding.
        """
        if positions in self._combined:
            return self._combined[positions]
        decoder = None
        if self._bitmap_bytes == 1 and positions:
            parts = ["<"]
            cursor = 0
            codes = {IntegerType: "q", DoubleType: "d", BooleanType: "?"}
            for pos in positions:
                offset = self._offsets[pos]
                code = codes.get(type(self.dtypes[pos]))
                if offset is None or code is None or offset < cursor:
                    parts = None
                    break
                if offset > cursor:
                    parts.append("%dx" % (offset - cursor))
                parts.append(code)
                cursor = offset + self.dtypes[pos].fixed_width
            if parts is not None:
                unpack = struct.Struct("".join(parts)).unpack_from
                masks = tuple(1 << pos for pos in positions)

                def decoder(records, _u=unpack, _masks=masks):
                    out = []
                    append = out.append
                    for rec in records:
                        values = _u(rec)
                        bits = rec[0]
                        if bits:
                            values = tuple(
                                None if bits & mask else value
                                for value, mask in zip(values, _masks))
                        append(values)
                    return out

        self._combined[positions] = decoder
        return decoder

    def null_rows(self, records: Sequence[bytes]) -> List[int]:
        """Indices of records whose null bitmap has any bit set.

        One screening pass shared by every column of a batch; the common
        all-NOT-NULL record is rejected with a single bytes compare.
        """
        zero = bytes(self._bitmap_bytes)
        bitmap_bytes = self._bitmap_bytes
        return [i for i, rec in enumerate(records)
                if rec[:bitmap_bytes] != zero]

    def decode_columns(self, records: Sequence[bytes],
                       positions: Sequence[int]) -> dict:
        """Decode only the given column positions from a batch of records.

        Returns ``{position: list}`` with each list aligned to ``records``.
        Columns with static offsets decode via per-column struct loops;
        if any requested column lacks one, the whole batch falls back to
        row-at-a-time decoding.
        """
        decoders = {}
        for pos in positions:
            decoder = self.column_decoder(pos)
            if decoder is None:
                rows = [self.deserialize(rec) for rec in records]
                return {p: [row[p] for row in rows] for p in positions}
            decoders[pos] = decoder
        cols = {pos: decoder(records) for pos, decoder in decoders.items()}
        # Patch NULLs: screen each record's bitmap against all-zero first
        # (the common case), then set None per set bit.
        zero = bytes(self._bitmap_bytes)
        bitmap_bytes = self._bitmap_bytes
        masks = [(pos, pos // 8, 1 << (pos % 8)) for pos in positions]
        for row, rec in enumerate(records):
            if rec[:bitmap_bytes] == zero:
                continue
            for pos, byte, bit in masks:
                if rec[byte] & bit:
                    cols[pos][row] = None
        return cols


# ---------------------------------------------------------------------------
# Exchange wire format — self-describing tagged rows.
#
# Rows crossing a Repartition/Ship exchange are not table records: they are
# computed tuples whose shape depends on the plan (join keys, residual
# columns, sequence tags), so they carry their own type tags instead of a
# per-table RecordSerializer layout.  A message is
#
#     [4-byte LE row count] then per row:
#         [4-byte LE value count][tagged value]...
#
# with each value a 1-byte tag followed by its payload: NULL and the two
# boolean tags are payload-free, INT64/DOUBLE reuse the record structs,
# BIGINT (outside int64 range) and STR are 4-byte-length-prefixed UTF-8.
# Only the SQL scalar domain (None/bool/int/float/str) is encodable; the
# glue layer must not route any other value type through an exchange.
# ---------------------------------------------------------------------------

_TAG_NULL = 0
_TAG_INT = 1
_TAG_BIGINT = 2
_TAG_DOUBLE = 3
_TAG_TRUE = 4
_TAG_FALSE = 5
_TAG_STR = 6

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def pack_rows(rows: Sequence[Sequence[Any]]) -> bytes:
    """Encode a batch of scalar tuples for inter-process transfer."""
    parts: List[bytes] = [_LEN.pack(len(rows))]
    append = parts.append
    for row in rows:
        append(_LEN.pack(len(row)))
        for value in row:
            if value is None:
                append(b"\x00")
            elif value is True:
                append(b"\x04")
            elif value is False:
                append(b"\x05")
            elif type(value) is int:
                if _INT64_MIN <= value <= _INT64_MAX:
                    append(b"\x01")
                    append(_I64.pack(value))
                else:
                    data = str(value).encode("ascii")
                    append(b"\x02")
                    append(_LEN.pack(len(data)))
                    append(data)
            elif type(value) is float:
                append(b"\x03")
                append(_F64.pack(value))
            elif type(value) is str:
                data = value.encode("utf-8")
                append(b"\x06")
                append(_LEN.pack(len(data)))
                append(data)
            else:
                raise RecordError(
                    "cannot encode %r (%s) for exchange transfer"
                    % (value, type(value).__name__))
    return b"".join(parts)


def unpack_rows(data: bytes) -> List[Tuple[Any, ...]]:
    """Decode a message produced by :func:`pack_rows`."""
    (count,) = _LEN.unpack_from(data, 0)
    offset = _LEN.size
    rows: List[Tuple[Any, ...]] = []
    for _ in range(count):
        (arity,) = _LEN.unpack_from(data, offset)
        offset += _LEN.size
        values: List[Any] = []
        for _ in range(arity):
            tag = data[offset]
            offset += 1
            if tag == _TAG_NULL:
                values.append(None)
            elif tag == _TAG_INT:
                values.append(_I64.unpack_from(data, offset)[0])
                offset += _I64.size
            elif tag == _TAG_DOUBLE:
                values.append(_F64.unpack_from(data, offset)[0])
                offset += _F64.size
            elif tag == _TAG_TRUE:
                values.append(True)
            elif tag == _TAG_FALSE:
                values.append(False)
            elif tag in (_TAG_BIGINT, _TAG_STR):
                (length,) = _LEN.unpack_from(data, offset)
                offset += _LEN.size
                field = data[offset: offset + length]
                offset += length
                values.append(int(field) if tag == _TAG_BIGINT
                              else field.decode("utf-8"))
            else:
                raise RecordError("bad exchange value tag %d" % tag)
        rows.append(tuple(values))
    return rows
