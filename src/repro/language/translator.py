"""Semantic analysis and AST → QGM translation.

"Semantic analysis of the query is also done during parsing, so the QGM
produced is guaranteed to be valid" — this module is that step.  It resolves
names against the catalog and lexical scopes (including correlation into
enclosing queries), type-checks every expression, expands views and table
expressions, and produces a consistent QGM graph.

Key translation rules (section 4 of the paper):

- every subquery becomes a *quantifier* plus ordinary predicates: ``IN`` →
  existential (E) quantifier + equality predicate; ``op ALL`` → universal
  (A) quantifier; scalar subqueries → S quantifiers referenced like columns;
  DBC set-predicate functions supply their own quantifier types,
- views and table expressions are expanded into the graph as boxes (the
  *view merging* rewrite rule may later merge them into consumers),
- aggregation splits into lower SELECT → GROUP BY → upper SELECT boxes,
- LEFT OUTER JOIN (the paper's worked DBC extension) builds a SELECT box
  whose preserved side uses the PF setformer type — and is rejected unless
  the operation has been registered.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.datatypes.coercion import common_type, is_comparable, is_numeric
from repro.datatypes.types import BOOLEAN, DOUBLE, INTEGER, VARCHAR, DataType
from repro.errors import SemanticError, TypeCheckError
from repro.language import ast
from repro.qgm import expressions as qe
from repro.qgm.model import (
    QGM,
    BaseTableBox,
    Box,
    DeleteBox,
    DistinctMode,
    GroupByBox,
    Head,
    HeadColumn,
    InsertBox,
    Predicate,
    Quantifier,
    SelectBox,
    SetOpBox,
    TableFunctionBox,
    UpdateBox,
)

#: Name of the operation flag that enables LEFT OUTER JOIN.
LEFT_OUTER_JOIN = "left_outer_join"


class SourceBinding:
    """One FROM source visible in a scope: a quantifier plus a column map.

    ``columns`` maps user-visible column names to head-column names of the
    quantifier's input box (they differ for outer-join sources whose head
    had to disambiguate column names).
    """

    __slots__ = ("quantifier", "columns")

    def __init__(self, quantifier: Quantifier,
                 columns: Optional[Dict[str, str]] = None):
        self.quantifier = quantifier
        if columns is None:
            columns = {name: name
                       for name in quantifier.input.head.column_names()}
        self.columns = columns


class Scope:
    """Lexical scope for name resolution; parents give correlation."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.bindings: Dict[str, SourceBinding] = {}
        self.order: List[SourceBinding] = []

    def define(self, alias: str, binding: SourceBinding) -> None:
        key = alias.lower()
        if key in self.bindings:
            raise SemanticError("duplicate table name/alias %s" % alias)
        self.bindings[key] = binding
        self.order.append(binding)

    def resolve(self, name: str,
                qualifier: Optional[str]) -> Tuple[Quantifier, str, DataType]:
        """Resolve a column reference to (quantifier, head column, type)."""
        found = self._resolve_local(name, qualifier)
        if found is not None:
            return found
        if self.parent is not None:
            return self.parent.resolve(name, qualifier)
        target = "%s.%s" % (qualifier, name) if qualifier else name
        raise SemanticError("unknown column %s" % target)

    def _resolve_local(self, name: str, qualifier: Optional[str]):
        name = name.lower()
        if qualifier is not None:
            binding = self.bindings.get(qualifier.lower())
            if binding is None:
                return None
            head_name = binding.columns.get(name)
            if head_name is None:
                raise SemanticError(
                    "no column %s in %s" % (name, qualifier)
                )
            dtype = binding.quantifier.input.head.column(head_name).dtype
            return binding.quantifier, head_name, dtype
        matches = []
        for binding in self.order:
            head_name = binding.columns.get(name)
            if head_name is not None:
                matches.append((binding, head_name))
        if not matches:
            return None
        if len(matches) > 1:
            raise SemanticError("ambiguous column %s" % name)
        binding, head_name = matches[0]
        dtype = binding.quantifier.input.head.column(head_name).dtype
        return binding.quantifier, head_name, dtype

    def source_named(self, qualifier: str) -> Optional[SourceBinding]:
        binding = self.bindings.get(qualifier.lower())
        if binding is not None:
            return binding
        if self.parent is not None:
            return self.parent.source_named(qualifier)
        return None


class Translator:
    """Translates one statement; holds the QGM under construction.

    ``context`` must provide: ``catalog``, ``types`` (TypeRegistry),
    ``functions`` (FunctionRegistry), and ``operations`` (a set of enabled
    DBC operation names, e.g. ``{"left_outer_join"}``).
    """

    def __init__(self, context):
        self.context = context
        self.qgm = QGM()
        self._cte_stack: List[Dict[str, Box]] = []
        self._param_count = 0

    # ==== entry point ==========================================================

    def translate(self, statement: ast.Statement) -> QGM:
        if isinstance(statement, ast.SelectStmt):
            root = self.translate_query(statement, None, toplevel=True)
        elif isinstance(statement, ast.InsertStmt):
            root = self._translate_insert(statement)
        elif isinstance(statement, ast.UpdateStmt):
            root = self._translate_update(statement)
        elif isinstance(statement, ast.DeleteStmt):
            root = self._translate_delete(statement)
        else:
            raise SemanticError(
                "cannot translate %s to QGM" % type(statement).__name__
            )
        self.qgm.root = root
        self.qgm.parameter_count = self._param_count
        for box in self.qgm.boxes:
            box.annotations.pop("scope", None)
        return self.qgm

    # ==== queries ===============================================================

    def translate_query(self, stmt: ast.SelectStmt,
                        outer_scope: Optional[Scope],
                        toplevel: bool = False) -> Box:
        """Translate a full query expression (WITH + set ops) to a box."""
        if stmt.ctes:
            self._cte_stack.append({})
            try:
                self._translate_ctes(stmt, outer_scope)
                box = self._translate_setops(stmt, outer_scope, toplevel)
            finally:
                self._cte_stack.pop()
        else:
            box = self._translate_setops(stmt, outer_scope, toplevel)
        return box

    def _translate_ctes(self, stmt: ast.SelectStmt,
                        outer_scope: Optional[Scope]) -> None:
        for cte in stmt.ctes:
            if stmt.recursive and self._references_name(cte.query, cte.name):
                box = self._translate_recursive_cte(cte, outer_scope)
            else:
                box = self.translate_query(cte.query, outer_scope)
                if cte.column_names:
                    self._rename_head(box, cte.column_names)
                box.annotations["table_expression"] = cte.name
            self._cte_stack[-1][cte.name.lower()] = box

    @staticmethod
    def _references_name(stmt: ast.SelectStmt, name: str) -> bool:
        """Does the query reference table ``name`` anywhere (recursion test)?"""
        name = name.lower()

        def from_item_refs(item: ast.FromItem) -> bool:
            if isinstance(item, ast.TableRef):
                return item.name.lower() == name
            if isinstance(item, ast.SubquerySource):
                return stmt_refs(item.query)
            if isinstance(item, ast.JoinSource):
                return from_item_refs(item.left) or from_item_refs(item.right)
            if isinstance(item, ast.TableFunctionSource):
                return any(from_item_refs(t) for t in item.table_args)
            return False

        def stmt_refs(node: ast.SelectStmt) -> bool:
            current: Optional[ast.SelectStmt] = node
            while current is not None:
                if any(from_item_refs(i) for i in current.from_items):
                    return True
                current = current.set_right
            return False

        return stmt_refs(stmt)

    def _translate_recursive_cte(self, cte: ast.CommonTableExpr,
                                 outer_scope: Optional[Scope]) -> Box:
        """A recursive table expression: UNION ALL of base + recursive parts."""
        body = cte.query
        if body.set_op != "union" or not body.set_all:
            raise SemanticError(
                "recursive table expression %s must be a UNION ALL of a "
                "base case and a recursive case" % cte.name
            )
        union = SetOpBox("union", all_rows=True, name=cte.name)
        union.recursive_name = cte.name.lower()
        self.qgm.add_box(union)
        self._cte_stack[-1][cte.name.lower()] = union

        # Base case: must not reference the CTE.
        branches = self._setop_branches(body)
        base_branches = [b for b in branches
                         if not self._references_name_core(b, cte.name)]
        rec_branches = [b for b in branches
                        if self._references_name_core(b, cte.name)]
        if not base_branches or not rec_branches:
            raise SemanticError(
                "recursive table expression %s needs at least one base and "
                "one recursive branch" % cte.name
            )
        first = self._translate_core(base_branches[0], outer_scope)
        names = cte.column_names or first.head.column_names()
        if len(names) != len(first.head.columns):
            raise SemanticError(
                "table expression %s declares %d columns, query produces %d"
                % (cte.name, len(names), len(first.head.columns))
            )
        union.head = Head([
            HeadColumn(name.lower(), None, column.dtype)
            for name, column in zip(names, first.head.columns)
        ])
        union.head.distinct = DistinctMode.PRESERVE
        for branch_stmt in base_branches:
            branch_box = (first if branch_stmt is base_branches[0]
                          else self._translate_core(branch_stmt, outer_scope))
            self._check_setop_arity(union, branch_box)
            union.add_quantifier(self.qgm.new_quantifier("F", branch_box))
        for branch_stmt in rec_branches:
            branch_box = self._translate_core(branch_stmt, outer_scope)
            self._check_setop_arity(union, branch_box)
            union.add_quantifier(self.qgm.new_quantifier("F", branch_box))
        return union

    def _references_name_core(self, stmt: ast.SelectStmt, name: str) -> bool:
        single = ast.SelectStmt(items=stmt.items, from_items=stmt.from_items,
                                where=stmt.where, group_by=stmt.group_by,
                                having=stmt.having)
        return self._references_name(single, name)

    @staticmethod
    def _setop_branches(stmt: ast.SelectStmt) -> List[ast.SelectStmt]:
        """Flatten a left-deep UNION ALL chain into its branch cores."""
        branches = []
        current: Optional[ast.SelectStmt] = stmt
        while current is not None:
            branches.append(current)
            nxt = current.set_right
            current = nxt
        return branches

    def _check_setop_arity(self, setop: SetOpBox, branch: Box) -> None:
        if len(branch.head.columns) != len(setop.head.columns):
            raise SemanticError(
                "set-operation branches have different column counts"
            )
        for target, source in zip(setop.head.columns, branch.head.columns):
            if (target.dtype is not None and source.dtype is not None
                    and common_type(target.dtype, source.dtype) is None):
                raise TypeCheckError(
                    "set-operation column %s has incompatible types %s / %s"
                    % (target.name, target.dtype.name, source.dtype.name)
                )

    def _translate_setops(self, stmt: ast.SelectStmt,
                          outer_scope: Optional[Scope],
                          toplevel: bool = False) -> Box:
        # The WITH clause of ``stmt`` (if any) was processed by the caller.
        box = self._translate_core(stmt, outer_scope, skip_ctes=True)
        current = stmt
        while current.set_op is not None and current.set_right is not None:
            right_stmt = current.set_right
            right = self._translate_core(right_stmt, outer_scope)
            setop = SetOpBox(current.set_op, current.set_all)
            self.qgm.add_box(setop)
            setop.head = Head([
                HeadColumn(column.name, None, column.dtype)
                for column in box.head.columns
            ])
            setop.head.distinct = (DistinctMode.PRESERVE if current.set_all
                                   else DistinctMode.ENFORCE)
            self._check_setop_arity(setop, box)
            self._check_setop_arity(setop, right)
            setop.add_quantifier(self.qgm.new_quantifier("F", box))
            setop.add_quantifier(self.qgm.new_quantifier("F", right))
            box = setop
            current = right_stmt
        if toplevel:
            self._apply_order_and_limit(stmt, box)
        return box

    def _apply_order_and_limit(self, stmt: ast.SelectStmt, box: Box) -> None:
        # ORDER BY belongs to the statement's final result, not to a box.
        order = self._find_order_stmt(stmt)
        if order.order_by:
            for item in order.order_by:
                position = self._resolve_order_item(item, box)
                self.qgm.order_by.append((position, item.ascending))
        if order.limit is not None:
            self.qgm.limit = order.limit

    @staticmethod
    def _find_order_stmt(stmt: ast.SelectStmt) -> ast.SelectStmt:
        """ORDER BY/LIMIT parse onto the first core of a set-op chain."""
        return stmt

    def _resolve_order_item(self, item: ast.OrderItem, box: Box) -> int:
        expr = item.expr
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value - 1
            if not 0 <= position < len(box.head.columns):
                raise SemanticError(
                    "ORDER BY position %d out of range" % expr.value
                )
            return position
        if isinstance(expr, ast.ColumnRef) and expr.qualifier is None:
            try:
                return box.head.index_of(expr.name.lower())
            except Exception:
                pass
        # A non-output expression: add a hidden head column when the box's
        # translation scope is still available (plain SELECT cores).
        scope = box.annotations.get("scope")
        if scope is not None:
            if box.head.distinct is DistinctMode.ENFORCE:
                raise SemanticError(
                    "ORDER BY expressions must appear in the select list "
                    "when SELECT DISTINCT is used"
                )
            translated = self._translate_expr(expr, box, scope,
                                              allow_aggregates=False)
            for position, column in enumerate(box.head.columns):
                if column.expr is not None and \
                        self._same_expr(column.expr, translated):
                    return position
            if self.qgm.visible_columns is None:
                self.qgm.visible_columns = len(box.head.columns)
            name = "__ord%d" % len(box.head.columns)
            box.head.columns.append(HeadColumn(name, translated,
                                               translated.dtype))
            return len(box.head.columns) - 1
        raise SemanticError(
            "ORDER BY must name an output column or position"
        )

    # ==== SELECT core ============================================================

    def _translate_core(self, stmt: ast.SelectStmt,
                        outer_scope: Optional[Scope],
                        skip_ctes: bool = False) -> Box:
        if stmt.ctes and not skip_ctes:
            # a parenthesized inner query may carry its own WITH
            return self.translate_query(stmt, outer_scope)
        box = SelectBox()
        self.qgm.add_box(box)
        scope = Scope(outer_scope)
        for item in stmt.from_items:
            self._add_from_item(item, box, scope)
        if stmt.where is not None:
            self._add_where(stmt.where, box, scope)

        has_aggregates = bool(stmt.group_by) or stmt.having is not None or any(
            self._contains_aggregate(select_item.expr)
            for select_item in stmt.items
        )
        if has_aggregates:
            result = self._build_aggregation(stmt, box, scope)
        else:
            self._build_plain_head(stmt, box, scope)
            result = box
            # Kept for ORDER BY resolution over non-output expressions;
            # dropped once the statement is fully translated.
            result.annotations["scope"] = scope
        if stmt.distinct:
            result.head.distinct = DistinctMode.ENFORCE
        return result

    # -- FROM -----------------------------------------------------------------------

    def _add_from_item(self, item: ast.FromItem, box: Box,
                       scope: Scope) -> None:
        if isinstance(item, ast.JoinSource):
            self._add_join_source(item, box, scope)
            return
        binding, alias = self._make_binding(item, scope)
        box.add_quantifier(binding.quantifier)
        scope.define(alias, binding)

    def _make_binding(self, item: ast.FromItem,
                      scope: Scope) -> Tuple[SourceBinding, str]:
        """Create a setformer + binding for a non-join FROM item."""
        if isinstance(item, ast.TableRef):
            input_box = self._resolve_table_source(item.name)
            alias = item.alias or item.name
        elif isinstance(item, ast.SubquerySource):
            input_box = self.translate_query(item.query, scope)
            if item.column_names:
                self._rename_head(input_box, item.column_names)
            alias = item.alias or "q%d" % input_box.uid
        elif isinstance(item, ast.TableFunctionSource):
            input_box = self._translate_table_function(item, scope)
            if item.column_names:
                self._rename_head(input_box, item.column_names)
            alias = item.alias or item.name
        else:
            raise SemanticError("unsupported FROM item %r" % (item,))
        quantifier = self.qgm.new_quantifier("F", input_box,
                                             name=(item.alias or None))
        return SourceBinding(quantifier), alias

    def _resolve_table_source(self, name: str) -> Box:
        """Resolve a table name: table expression → view → base table."""
        key = name.lower()
        for frame in reversed(self._cte_stack):
            if key in frame:
                return frame[key]
        catalog = self.context.catalog
        if catalog.has_view(key):
            view = catalog.view(key)
            box = self.translate_query(view.ast, None)
            if view.column_names:
                self._rename_head(box, view.column_names)
            box.annotations["view"] = view.name
            return box
        if catalog.has_table(key):
            return self.qgm.base_table(catalog.table(key))
        raise SemanticError("unknown table or view %s" % name)

    def _rename_head(self, box: Box, names: Sequence[str]) -> None:
        if len(names) != len(box.head.columns):
            raise SemanticError(
                "%d column names supplied for a %d-column table"
                % (len(names), len(box.head.columns))
            )
        for column, name in zip(box.head.columns, names):
            column.name = name.lower()

    def _translate_table_function(self, item: ast.TableFunctionSource,
                                  scope: Scope) -> Box:
        function = self.context.functions.table_function(item.name)
        if function is None:
            raise SemanticError("unknown table function %s" % item.name)
        if len(item.table_args) != function.table_inputs:
            raise SemanticError(
                "table function %s expects %d table input(s), got %d"
                % (item.name, function.table_inputs, len(item.table_args))
            )
        box = TableFunctionBox(item.name)
        self.qgm.add_box(box)
        for argument in item.scalar_args:
            expr = self._translate_expr(argument, None, None,
                                        allow_aggregates=False)
            box.scalar_args.append(expr)
        for table_arg in item.table_args:
            binding, _ = self._make_binding(table_arg, scope)
            box.add_quantifier(binding.quantifier)
        # The output schema of a table function is known only at run time
        # in general; built-ins with static shape declare it here.
        self._infer_table_function_head(box, function)
        return box

    def _infer_table_function_head(self, box: TableFunctionBox,
                                   function) -> None:
        if box.function_name == "series":
            box.head.columns.append(HeadColumn("n", qe.Const(0, INTEGER),
                                               INTEGER))
            return
        if box.quantifiers:
            # Default: same shape as the first table input (true for SAMPLE
            # and most filters); DBC functions can override via annotation.
            source = box.quantifiers[0].input
            for column in source.head.columns:
                box.head.columns.append(
                    HeadColumn(column.name,
                               qe.Const(None, column.dtype), column.dtype)
                )
            return
        raise SemanticError(
            "table function %s must declare an output schema"
            % box.function_name
        )

    def _add_join_source(self, item: ast.JoinSource, box: Box,
                         scope: Scope) -> None:
        if item.join_type == "inner":
            self._add_from_item(item.left, box, scope)
            self._add_from_item(item.right, box, scope)
            if item.condition is not None:
                self._add_where(item.condition, box, scope)
            return
        if item.join_type == "left_outer":
            if LEFT_OUTER_JOIN not in self.context.operations:
                raise SemanticError(
                    "LEFT OUTER JOIN is not enabled; register the "
                    "'%s' operation extension first" % LEFT_OUTER_JOIN
                )
            self._add_outer_join(item, box, scope)
            return
        raise SemanticError("unsupported join type %s" % item.join_type)

    def _add_outer_join(self, item: ast.JoinSource, box: Box,
                        scope: Scope) -> None:
        """Build the outer-join SELECT box: PF (preserved) + F setformers."""
        ojbox = SelectBox()
        ojbox.annotations["operation"] = LEFT_OUTER_JOIN
        self.qgm.add_box(ojbox)
        inner_scope = Scope(scope.parent)

        def add_side(side: ast.FromItem, qtype: str) -> SourceBinding:
            if isinstance(side, ast.JoinSource):
                raise SemanticError(
                    "nested joins inside OUTER JOIN are not supported; "
                    "use a derived table"
                )
            binding, alias = self._make_binding(side, inner_scope)
            binding.quantifier.qtype = qtype
            ojbox.add_quantifier(binding.quantifier)
            inner_scope.define(alias, binding)
            return binding

        left = add_side(item.left, "PF")
        right = add_side(item.right, "F")
        if item.condition is not None:
            for conjunct in self._split_ast_conjuncts(item.condition):
                expr = self._translate_expr(conjunct, ojbox, inner_scope,
                                            allow_aggregates=False)
                self._require_boolean(expr)
                ojbox.add_predicate(Predicate(expr))

        # Head: every column of both sides; disambiguate duplicate names.
        used: Set[str] = set()
        outer_maps: List[Dict[str, str]] = []
        for binding in (left, right):
            mapping: Dict[str, str] = {}
            alias = next(a for a, b in inner_scope.bindings.items()
                         if b is binding)
            for column in binding.quantifier.input.head.columns:
                head_name = column.name
                if head_name in used:
                    head_name = "%s_%s" % (alias, column.name)
                used.add(head_name)
                mapping[column.name] = head_name
                ojbox.head.columns.append(HeadColumn(
                    head_name,
                    qe.ColRef(binding.quantifier, column.name, column.dtype),
                    column.dtype,
                ))
            outer_maps.append(mapping)

        oj_quantifier = self.qgm.new_quantifier("F", ojbox)
        box.add_quantifier(oj_quantifier)
        for binding, mapping in zip((left, right), outer_maps):
            alias = next(a for a, b in inner_scope.bindings.items()
                         if b is binding)
            scope.define(alias, SourceBinding(oj_quantifier, mapping))

    # -- WHERE ------------------------------------------------------------------------

    @staticmethod
    def _split_ast_conjuncts(expr: ast.Expr) -> List[ast.Expr]:
        if isinstance(expr, ast.BinaryOp) and expr.op == "and":
            return (Translator._split_ast_conjuncts(expr.left)
                    + Translator._split_ast_conjuncts(expr.right))
        return [expr]

    def _add_where(self, where: ast.Expr, box: Box, scope: Scope) -> None:
        for conjunct in self._split_ast_conjuncts(where):
            expr = self._translate_expr(conjunct, box, scope,
                                        allow_aggregates=False)
            self._require_boolean(expr)
            box.add_predicate(Predicate(expr))

    @staticmethod
    def _require_boolean(expr: qe.QExpr) -> None:
        if expr.dtype is not None and expr.dtype != BOOLEAN:
            raise TypeCheckError("predicate %r is not boolean" % (expr,))

    # -- head construction ---------------------------------------------------------------

    def _expand_items(self, stmt: ast.SelectStmt, box: Box,
                      scope: Scope) -> List[Tuple[str, ast.Expr]]:
        """Expand * and name every select item."""
        result: List[Tuple[str, ast.Expr]] = []
        used: Dict[str, int] = {}

        def unique(name: str) -> str:
            count = used.get(name, 0)
            used[name] = count + 1
            return name if count == 0 else "%s_%d" % (name, count)

        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                for alias, binding in self._star_bindings(item.expr, scope):
                    for visible, head_name in binding.columns.items():
                        result.append((
                            unique(visible),
                            ast.ColumnRef(visible, qualifier=alias),
                        ))
                continue
            if item.alias:
                name = item.alias.lower()
            elif isinstance(item.expr, ast.ColumnRef):
                name = item.expr.name.lower()
            else:
                name = "c%d" % (len(result) + 1)
            result.append((unique(name), item.expr))
        if not result:
            raise SemanticError("empty select list")
        return result

    def _star_bindings(self, star: ast.Star, scope: Scope):
        if star.qualifier is not None:
            binding = scope.bindings.get(star.qualifier.lower())
            if binding is None:
                raise SemanticError("unknown table %s in %s.*"
                                    % (star.qualifier, star.qualifier))
            return [(star.qualifier.lower(), binding)]
        pairs = []
        for alias, binding in scope.bindings.items():
            if binding in scope.order:
                pairs.append((alias, binding))
        # keep FROM order
        pairs.sort(key=lambda pair: scope.order.index(pair[1]))
        if not pairs:
            raise SemanticError("* with no FROM clause")
        # Drop duplicate bindings (outer-join sides share one quantifier,
        # but with distinct column maps, so keep those).
        return pairs

    def _build_plain_head(self, stmt: ast.SelectStmt, box: Box,
                          scope: Scope) -> None:
        for name, expr_ast in self._expand_items(stmt, box, scope):
            expr = self._translate_expr(expr_ast, box, scope,
                                        allow_aggregates=False)
            box.head.columns.append(HeadColumn(name, expr, expr.dtype))
        if not box.quantifiers and not box.head.columns:
            raise SemanticError("degenerate select")

    # -- aggregation --------------------------------------------------------------------

    def _contains_aggregate(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.FunctionCall):
            if self.context.functions.is_aggregate(expr.name):
                return True
            return any(self._contains_aggregate(a) for a in expr.args
                       if not isinstance(a, ast.Star))
        for attr in getattr(expr, "__slots__", ()):
            value = getattr(expr, attr, None)
            if isinstance(value, ast.Expr):
                if self._contains_aggregate(value):
                    return True
            elif isinstance(value, list):
                for element in value:
                    if isinstance(element, ast.Expr) and \
                            self._contains_aggregate(element):
                        return True
                    if (isinstance(element, tuple) and len(element) == 2
                            and isinstance(element[0], ast.Expr)):
                        if (self._contains_aggregate(element[0])
                                or self._contains_aggregate(element[1])):
                            return True
        return False

    def _build_aggregation(self, stmt: ast.SelectStmt, lower: Box,
                           scope: Scope) -> Box:
        """lower SELECT → GROUP BY → upper SELECT decomposition."""
        # 1. Group keys over the lower box.
        group_keys = [
            self._translate_expr(g, lower, scope, allow_aggregates=False)
            for g in stmt.group_by
        ]

        # 2. Create the upper SELECT box now: subqueries inside the select
        #    list or HAVING belong to it (they are evaluated per *group*),
        #    while plain column references still resolve through ``scope``
        #    to the lower box's iterators (rewritten in step 5).
        upper = SelectBox()
        self.qgm.add_box(upper)

        items = self._expand_items(stmt, lower, scope)
        translated_items: List[Tuple[str, qe.QExpr]] = [
            (name, self._translate_expr(expr_ast, upper, scope,
                                        allow_aggregates=True))
            for name, expr_ast in items
        ]
        having_expr = None
        if stmt.having is not None:
            having_expr = self._translate_expr(stmt.having, upper, scope,
                                               allow_aggregates=True)
            self._require_boolean(having_expr)

        aggregates: List[qe.AggCall] = []

        def collect(expr: qe.QExpr) -> None:
            for node in qe.walk(expr):
                if isinstance(node, qe.AggCall):
                    if not any(self._same_expr(node, seen)
                               for seen in aggregates):
                        aggregates.append(node)

        for _, expr in translated_items:
            collect(expr)
        if having_expr is not None:
            collect(having_expr)

        # 3. Lower head: group keys + aggregate arguments.
        lower_names: List[str] = []
        for index, key in enumerate(group_keys):
            name = "g%d" % index
            lower.head.columns.append(HeadColumn(name, key, key.dtype))
            lower_names.append(name)
        agg_arg_names: List[Optional[str]] = []
        for index, agg in enumerate(aggregates):
            if agg.arg is None:
                agg_arg_names.append(None)
                continue
            name = "a%d" % index
            lower.head.columns.append(HeadColumn(name, agg.arg,
                                                 agg.arg.dtype))
            agg_arg_names.append(name)
        if not lower.head.columns:
            # COUNT(*) with no group keys: expose a constant column.
            lower.head.columns.append(
                HeadColumn("one", qe.Const(1, INTEGER), INTEGER)
            )

        # 4. GROUP BY box.
        group_box = GroupByBox()
        self.qgm.add_box(group_box)
        gq = self.qgm.new_quantifier("F", lower)
        group_box.add_quantifier(gq)
        for index, key in enumerate(group_keys):
            key_ref = qe.ColRef(gq, "g%d" % index, key.dtype)
            group_box.group_keys.append(key_ref)
            group_box.head.columns.append(
                HeadColumn("g%d" % index, key_ref, key.dtype)
            )
        for index, (agg, arg_name) in enumerate(zip(aggregates,
                                                    agg_arg_names)):
            arg_ref = (qe.ColRef(gq, arg_name, agg.arg.dtype)
                       if arg_name is not None else None)
            function = self.context.functions.aggregate(agg.name)
            dtype = function.return_type(
                [arg_ref.dtype] if arg_ref is not None else []
            )
            group_box.head.columns.append(HeadColumn(
                "agg%d" % index,
                qe.AggCall(agg.name, arg_ref, agg.distinct, dtype),
                dtype,
            ))

        # 5. Wire the upper SELECT box over the group box and rewrite the
        #    items/having expressions onto it.
        uq = self.qgm.new_quantifier("F", group_box)
        upper.add_quantifier(uq)

        def rewrite(expr: qe.QExpr) -> qe.QExpr:
            # aggregates -> group-box output columns
            def visit(node: qe.QExpr) -> Optional[qe.QExpr]:
                if isinstance(node, qe.AggCall):
                    for index, agg in enumerate(aggregates):
                        if self._same_expr(node, agg):
                            return qe.ColRef(
                                uq, "agg%d" % index,
                                group_box.head.columns[
                                    len(group_keys) + index].dtype)
                    raise SemanticError("unmatched aggregate %r" % node)
                for index, key in enumerate(group_keys):
                    if self._same_expr(node, key):
                        return qe.ColRef(uq, "g%d" % index, key.dtype)
                return None

            result = qe.transform(expr, visit)
            # Anything still referencing lower quantifiers is illegal.
            lower_quantifiers = set(lower.quantifiers)
            for quantifier in qe.quantifiers_in(result):
                if quantifier in lower_quantifiers:
                    raise SemanticError(
                        "expression %r must appear in GROUP BY or inside "
                        "an aggregate" % expr
                    )
            return result

        for name, expr in translated_items:
            rewritten = rewrite(expr)
            upper.head.columns.append(HeadColumn(name, rewritten,
                                                 rewritten.dtype))
        if having_expr is not None:
            upper.add_predicate(Predicate(rewrite(having_expr)))
        return upper

    @staticmethod
    def _same_expr(left: qe.QExpr, right: qe.QExpr) -> bool:
        """Structural equality; quantifier names are unique per graph."""
        return repr(left) == repr(right)

    # ==== DML =====================================================================

    def _translate_insert(self, stmt: ast.InsertStmt) -> Box:
        table = self.context.catalog.table(stmt.table_name)
        if stmt.column_names is not None:
            positions = [table.column_index(c) for c in stmt.column_names]
        else:
            positions = list(range(table.arity))
        box = InsertBox(table, positions)
        self.qgm.add_box(box)
        if stmt.rows is not None:
            box.rows = []
            for row in stmt.rows:
                if len(row) != len(positions):
                    raise SemanticError(
                        "INSERT row has %d values, expected %d"
                        % (len(row), len(positions))
                    )
                box.rows.append([
                    self._translate_expr(value, None, None,
                                         allow_aggregates=False)
                    for value in row
                ])
        else:
            source = self.translate_query(stmt.query, None)
            if len(source.head.columns) != len(positions):
                raise SemanticError(
                    "INSERT query produces %d columns, expected %d"
                    % (len(source.head.columns), len(positions))
                )
            box.add_quantifier(self.qgm.new_quantifier("F", source))
        return box

    def _translate_update(self, stmt: ast.UpdateStmt) -> Box:
        table = self.context.catalog.table(stmt.table_name)
        box = UpdateBox(table)
        self.qgm.add_box(box)
        base = self.qgm.base_table(table)
        quantifier = self.qgm.new_quantifier("F", base, name=table.name)
        box.add_quantifier(quantifier)
        scope = Scope()
        scope.define(table.name, SourceBinding(quantifier))
        for column_name, value in stmt.assignments:
            column = table.column(column_name)
            expr = self._translate_expr(value, box, scope,
                                        allow_aggregates=False)
            self._check_assignable(expr, column.dtype, column_name)
            box.assignments.append((column.name, expr))
        if stmt.where is not None:
            self._add_where(stmt.where, box, scope)
        return box

    def _translate_delete(self, stmt: ast.DeleteStmt) -> Box:
        table = self.context.catalog.table(stmt.table_name)
        box = DeleteBox(table)
        self.qgm.add_box(box)
        base = self.qgm.base_table(table)
        quantifier = self.qgm.new_quantifier("F", base, name=table.name)
        box.add_quantifier(quantifier)
        scope = Scope()
        scope.define(table.name, SourceBinding(quantifier))
        if stmt.where is not None:
            self._add_where(stmt.where, box, scope)
        return box

    @staticmethod
    def _check_assignable(expr: qe.QExpr, target: DataType,
                          column_name: str) -> None:
        if expr.dtype is None or target is None:
            return
        if common_type(expr.dtype, target) is None:
            raise TypeCheckError(
                "cannot assign %s to column %s (%s)"
                % (expr.dtype.name, column_name, target.name)
            )

    # ==== expressions ==============================================================

    def _translate_expr(self, expr: ast.Expr, box: Optional[Box],
                        scope: Optional[Scope],
                        allow_aggregates: bool) -> qe.QExpr:
        method = getattr(self, "_tx_%s" % type(expr).__name__.lower(), None)
        if method is None:
            raise SemanticError(
                "unsupported expression %s" % type(expr).__name__
            )
        return method(expr, box, scope, allow_aggregates)

    # each _tx_* takes (expr, box, scope, allow_aggregates)

    def _tx_literal(self, expr: ast.Literal, box, scope, allow_aggregates):
        value = expr.value
        if value is None:
            return qe.Const(None, None)
        if isinstance(value, bool):
            return qe.Const(value, BOOLEAN)
        if isinstance(value, int):
            return qe.Const(value, INTEGER)
        if isinstance(value, float):
            return qe.Const(value, DOUBLE)
        if isinstance(value, str):
            return qe.Const(value, VARCHAR)
        raise SemanticError("unsupported literal %r" % (value,))

    def _tx_param(self, expr: ast.Param, box, scope, allow_aggregates):
        self._param_count = max(self._param_count, expr.index + 1)
        return qe.ParamRef(expr.index, expr.name, None)

    def _tx_columnref(self, expr: ast.ColumnRef, box, scope,
                      allow_aggregates):
        if scope is None:
            raise SemanticError(
                "column %s not allowed in this context" % expr.name
            )
        quantifier, head_name, dtype = scope.resolve(expr.name,
                                                     expr.qualifier)
        return qe.ColRef(quantifier, head_name, dtype)

    def _tx_binaryop(self, expr: ast.BinaryOp, box, scope,
                     allow_aggregates):
        left = self._translate_expr(expr.left, box, scope, allow_aggregates)
        right = self._translate_expr(expr.right, box, scope,
                                     allow_aggregates)
        op = expr.op
        if op in ("and", "or"):
            for side in (left, right):
                self._require_boolean(side)
            return qe.BinOp(op, left, right, BOOLEAN)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            if (left.dtype is not None and right.dtype is not None
                    and not is_comparable(left.dtype, right.dtype)):
                raise TypeCheckError(
                    "cannot compare %s with %s"
                    % (left.dtype.name, right.dtype.name)
                )
            return qe.BinOp(op, left, right, BOOLEAN)
        if op == "||":
            return qe.BinOp(op, left, right, VARCHAR)
        if op in ("+", "-", "*", "/", "%"):
            dtype = None
            if left.dtype is not None and right.dtype is not None:
                if not (is_numeric(left.dtype) and is_numeric(right.dtype)):
                    raise TypeCheckError(
                        "arithmetic needs numeric operands, got %s %s %s"
                        % (left.dtype.name, op, right.dtype.name)
                    )
                dtype = common_type(left.dtype, right.dtype)
                if op == "/":
                    dtype = DOUBLE
            return qe.BinOp(op, left, right, dtype)
        raise SemanticError("unknown operator %s" % op)

    def _tx_unaryop(self, expr: ast.UnaryOp, box, scope, allow_aggregates):
        operand = self._translate_expr(expr.operand, box, scope,
                                       allow_aggregates)
        if expr.op == "not":
            self._require_boolean(operand)
            return qe.Not(operand)
        if expr.op == "-":
            if operand.dtype is not None and not is_numeric(operand.dtype):
                raise TypeCheckError("unary minus needs a numeric operand")
            return qe.Neg(operand, operand.dtype)
        raise SemanticError("unknown unary operator %s" % expr.op)

    def _tx_isnull(self, expr: ast.IsNull, box, scope, allow_aggregates):
        operand = self._translate_expr(expr.operand, box, scope,
                                       allow_aggregates)
        return qe.IsNullTest(operand, expr.negated)

    def _tx_between(self, expr: ast.Between, box, scope, allow_aggregates):
        operand = self._translate_expr(expr.operand, box, scope,
                                       allow_aggregates)
        low = self._translate_expr(expr.low, box, scope, allow_aggregates)
        high = self._translate_expr(expr.high, box, scope, allow_aggregates)
        body = qe.BinOp("and",
                        qe.BinOp(">=", operand, low, BOOLEAN),
                        qe.BinOp("<=", operand, high, BOOLEAN),
                        BOOLEAN)
        return qe.Not(body) if expr.negated else body

    def _tx_like(self, expr: ast.Like, box, scope, allow_aggregates):
        operand = self._translate_expr(expr.operand, box, scope,
                                       allow_aggregates)
        pattern = self._translate_expr(expr.pattern, box, scope,
                                       allow_aggregates)
        return qe.LikeOp(operand, pattern, expr.negated)

    def _tx_caseexpr(self, expr: ast.CaseExpr, box, scope,
                     allow_aggregates):
        whens = []
        dtype: Optional[DataType] = None
        for condition, value in expr.whens:
            tx_condition = self._translate_expr(condition, box, scope,
                                                allow_aggregates)
            self._require_boolean(tx_condition)
            tx_value = self._translate_expr(value, box, scope,
                                            allow_aggregates)
            whens.append((tx_condition, tx_value))
            if tx_value.dtype is not None:
                dtype = (tx_value.dtype if dtype is None
                         else common_type(dtype, tx_value.dtype))
        else_value = None
        if expr.else_value is not None:
            else_value = self._translate_expr(expr.else_value, box, scope,
                                              allow_aggregates)
            if else_value.dtype is not None and dtype is not None:
                dtype = common_type(dtype, else_value.dtype)
        return qe.CaseOp(whens, else_value, dtype)

    def _tx_castexpr(self, expr: ast.CastExpr, box, scope,
                     allow_aggregates):
        operand = self._translate_expr(expr.operand, box, scope,
                                       allow_aggregates)
        dtype = self.context.types.lookup(expr.type_name, expr.type_length)
        return qe.Cast(operand, dtype)

    def _tx_functioncall(self, expr: ast.FunctionCall, box, scope,
                         allow_aggregates):
        functions = self.context.functions
        if functions.is_aggregate(expr.name):
            if not allow_aggregates:
                raise SemanticError(
                    "aggregate %s is not allowed here" % expr.name
                )
            if len(expr.args) == 1 and isinstance(expr.args[0], ast.Star):
                if expr.name != "count":
                    raise SemanticError("only COUNT(*) may take *")
                return qe.AggCall("count", None, False, INTEGER)
            if len(expr.args) != 1:
                raise SemanticError(
                    "aggregate %s takes exactly one argument" % expr.name
                )
            # aggregate arguments must not contain aggregates
            argument = self._translate_expr(expr.args[0], box, scope,
                                            allow_aggregates=False)
            function = functions.aggregate(expr.name)
            dtype = function.return_type([argument.dtype])
            return qe.AggCall(expr.name, argument, expr.distinct, dtype)
        scalar = functions.scalar(expr.name)
        if scalar is None:
            raise SemanticError("unknown function %s" % expr.name)
        scalar.check_arity(len(expr.args))
        args = [self._translate_expr(a, box, scope, allow_aggregates)
                for a in expr.args]
        dtype = scalar.return_type([a.dtype for a in args])
        return qe.FuncCall(expr.name, args, dtype)

    # -- subquery expressions -------------------------------------------------------

    def _subquery_box(self, stmt: ast.SelectStmt, scope: Scope) -> Box:
        return self.translate_query(stmt, scope)

    def _require_context(self, box, scope, what: str) -> None:
        if box is None or scope is None:
            raise SemanticError("%s not allowed in this context" % what)

    def _tx_inexpr(self, expr: ast.InExpr, box, scope, allow_aggregates):
        operand = self._translate_expr(expr.operand, box, scope,
                                       allow_aggregates)
        if expr.values is not None:
            result: Optional[qe.QExpr] = None
            for value in expr.values:
                candidate = self._translate_expr(value, box, scope,
                                                 allow_aggregates)
                equals = qe.BinOp("=", operand, candidate, BOOLEAN)
                result = equals if result is None else qe.BinOp(
                    "or", result, equals, BOOLEAN)
            assert result is not None
            return qe.Not(result) if expr.negated else result
        self._require_context(box, scope, "IN (subquery)")
        sub = self._subquery_box(expr.subquery, scope)
        if len(sub.head.columns) != 1:
            raise SemanticError("IN subquery must produce one column")
        column = sub.head.columns[0]
        if expr.negated:
            quantifier = self.qgm.new_quantifier("A", sub)
            box.add_quantifier(quantifier)
            return qe.BinOp("<>", operand,
                            qe.ColRef(quantifier, column.name, column.dtype),
                            BOOLEAN)
        quantifier = self.qgm.new_quantifier("E", sub)
        box.add_quantifier(quantifier)
        return qe.BinOp("=", operand,
                        qe.ColRef(quantifier, column.name, column.dtype),
                        BOOLEAN)

    def _tx_existsexpr(self, expr: ast.ExistsExpr, box, scope,
                       allow_aggregates):
        self._require_context(box, scope, "EXISTS")
        sub = self._subquery_box(expr.subquery, scope)
        qtype = "NE" if expr.negated else "E"
        quantifier = self.qgm.new_quantifier(qtype, sub)
        box.add_quantifier(quantifier)
        return qe.ExistsTest(quantifier)

    def _tx_quantifiedcomparison(self, expr: ast.QuantifiedComparison, box,
                                 scope, allow_aggregates):
        self._require_context(box, scope, "quantified comparison")
        function = self.context.functions.set_predicate(expr.function)
        if function is None:
            raise SemanticError(
                "unknown set-predicate function %s" % expr.function
            )
        operand = self._translate_expr(expr.operand, box, scope,
                                       allow_aggregates)
        sub = self._subquery_box(expr.subquery, scope)
        if len(sub.head.columns) != 1:
            raise SemanticError(
                "quantified subquery must produce one column"
            )
        column = sub.head.columns[0]
        quantifier = self.qgm.new_quantifier(function.quantifier_type, sub)
        box.add_quantifier(quantifier)
        return qe.BinOp(expr.op, operand,
                        qe.ColRef(quantifier, column.name, column.dtype),
                        BOOLEAN)

    def _tx_scalarsubquery(self, expr: ast.ScalarSubquery, box, scope,
                           allow_aggregates):
        self._require_context(box, scope, "scalar subquery")
        sub = self._subquery_box(expr.subquery, scope)
        if len(sub.head.columns) != 1:
            raise SemanticError("scalar subquery must produce one column")
        column = sub.head.columns[0]
        quantifier = self.qgm.new_quantifier("S", sub)
        box.add_quantifier(quantifier)
        return qe.ColRef(quantifier, column.name, column.dtype)

    def _tx_star(self, expr: ast.Star, box, scope, allow_aggregates):
        raise SemanticError("* is only allowed in a select list or COUNT(*)")


def translate(statement: ast.Statement, context) -> QGM:
    """Translate a parsed statement to QGM."""
    return Translator(context).translate(statement)
