"""Recursive-descent parser for Hydrogen.

The grammar follows SQL with Hydrogen's orthogonality extensions:

- a query expression (including set operations and WITH) is accepted
  anywhere a table is: in FROM, in subqueries, in view definitions,
- table functions may appear in FROM with table-valued arguments,
- quantified comparisons accept DBC-defined set-predicate function names
  (``x > MAJORITY (SELECT ...)``) in addition to ANY/SOME/ALL,
- LEFT OUTER JOIN parses here but is *enabled* only when the DBC has
  registered the operation (checked by the translator).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.language import ast
from repro.language.lexer import Token, TokenType, tokenize


class Parser:
    """One-statement parser over a token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0
        self._param_count = 0

    # -- token helpers -----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        return ParseError(message, token=self._peek())

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._peek().is_keyword(*words):
            return self._next()
        return None

    def _expect_keyword(self, word: str) -> Token:
        token = self._accept_keyword(word)
        if token is None:
            raise self._error("expected %s" % word.upper())
        return token

    def _accept_punct(self, mark: str) -> Optional[Token]:
        if self._peek().is_punct(mark):
            return self._next()
        return None

    def _expect_punct(self, mark: str) -> Token:
        token = self._accept_punct(mark)
        if token is None:
            raise self._error("expected %r" % mark)
        return token

    def _accept_op(self, *ops: str) -> Optional[Token]:
        if self._peek().is_op(*ops):
            return self._next()
        return None

    def _expect_ident(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.type is TokenType.IDENT:
            self._next()
            return str(token.value)
        raise self._error("expected %s" % what)

    def _accept_word(self, word: str) -> Optional[Token]:
        """Accept an unreserved ("soft") keyword: an identifier token whose
        text matches, case-insensitively.  Keeps the reserved set small."""
        token = self._peek()
        if token.type is TokenType.IDENT and str(token.value).lower() == word:
            return self._next()
        return None

    def _expect_word(self, word: str) -> Token:
        token = self._accept_word(word)
        if token is None:
            raise self._error("expected %s" % word.upper())
        return token

    # -- entry points ----------------------------------------------------------------

    def parse(self) -> ast.Statement:
        statement = self._statement()
        self._accept_punct(";")
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return statement

    def _statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("explain"):
            self._next()
            # ANALYZE is deliberately not a reserved keyword (it would
            # steal a perfectly good column name); match it as the bare
            # identifier the lexer lowercased.
            analyze = False
            following = self._peek()
            if following.type is TokenType.IDENT \
                    and following.text == "analyze":
                self._next()
                analyze = True
            return ast.ExplainStmt(self._statement(), analyze=analyze)
        if token.is_keyword("select", "with") or token.is_punct("("):
            return self._query_expression()
        if token.is_keyword("insert"):
            return self._insert()
        if token.is_keyword("update"):
            return self._update()
        if token.is_keyword("delete"):
            return self._delete()
        if token.is_keyword("create"):
            return self._create()
        if token.is_keyword("drop"):
            return self._drop()
        raise self._error("expected a statement")

    # -- queries ---------------------------------------------------------------------

    def _query_expression(self) -> ast.SelectStmt:
        """[WITH ...] body (UNION|INTERSECT|EXCEPT [ALL] body)* [ORDER BY] [LIMIT]"""
        ctes: List[ast.CommonTableExpr] = []
        recursive = False
        if self._accept_keyword("with"):
            recursive = self._accept_keyword("recursive") is not None
            ctes.append(self._cte())
            while self._accept_punct(","):
                ctes.append(self._cte())

        query = self._query_body()
        while True:
            token = self._peek()
            if token.is_keyword("union", "intersect", "except"):
                self._next()
                set_all = self._accept_keyword("all") is not None
                right = self._query_body()
                query = self._fold_setop(query, token.text, set_all, right)
            else:
                break

        if self._accept_keyword("order"):
            self._expect_keyword("by")
            query.order_by = self._order_items()
        if self._accept_keyword("limit"):
            token = self._next()
            if token.type is not TokenType.NUMBER or not isinstance(token.value, int):
                raise self._error("LIMIT expects an integer")
            query.limit = token.value
        query.ctes = ctes + query.ctes
        query.recursive = recursive or query.recursive
        return query

    @staticmethod
    def _fold_setop(left: ast.SelectStmt, op: str, set_all: bool,
                    right: ast.SelectStmt) -> ast.SelectStmt:
        """Attach a set operation left-deep on the outermost select.

        A parenthesized right operand carrying its own set-operation chain
        is wrapped as a derived table so the user's grouping is preserved.
        """
        if right.set_right is not None or right.ctes:
            right = ast.SelectStmt(
                items=[ast.SelectItem(ast.Star())],
                from_items=[ast.SubquerySource(right, alias=None)],
            )
        node = left
        while node.set_right is not None:
            node = node.set_right
        node.set_op = op
        node.set_all = set_all
        node.set_right = right
        return left

    def _cte(self) -> ast.CommonTableExpr:
        name = self._expect_ident("table-expression name")
        column_names = None
        if self._accept_punct("("):
            column_names = self._name_list()
            self._expect_punct(")")
        self._expect_keyword("as")
        self._expect_punct("(")
        query = self._query_expression()
        self._expect_punct(")")
        return ast.CommonTableExpr(name, query, column_names)

    def _query_body(self) -> ast.SelectStmt:
        """A SELECT core or a parenthesized query expression."""
        if self._accept_punct("("):
            query = self._query_expression()
            self._expect_punct(")")
            return query
        return self._select_core()

    def _select_core(self) -> ast.SelectStmt:
        self._expect_keyword("select")
        distinct = False
        if self._accept_keyword("distinct"):
            distinct = True
        else:
            self._accept_keyword("all")
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())
        from_items: List[ast.FromItem] = []
        if self._accept_keyword("from"):
            from_items.append(self._from_item())
            while self._accept_punct(","):
                from_items.append(self._from_item())
        where = self._expression() if self._accept_keyword("where") else None
        group_by: List[ast.Expr] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._expression())
            while self._accept_punct(","):
                group_by.append(self._expression())
        having = self._expression() if self._accept_keyword("having") else None
        return ast.SelectStmt(items=items, from_items=from_items, where=where,
                              group_by=group_by, having=having,
                              distinct=distinct)

    def _select_item(self) -> ast.SelectItem:
        if self._peek().is_op("*"):
            self._next()
            return ast.SelectItem(ast.Star())
        # qualified star: ident . *
        if (self._peek().type is TokenType.IDENT and self._peek(1).is_punct(".")
                and self._peek(2).is_op("*")):
            qualifier = self._expect_ident()
            self._next()  # .
            self._next()  # *
            return ast.SelectItem(ast.Star(qualifier))
        expr = self._expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident("column alias")
        elif self._peek().type is TokenType.IDENT:
            alias = self._expect_ident()
        return ast.SelectItem(expr, alias)

    def _order_items(self) -> List[ast.OrderItem]:
        items = [self._order_item()]
        while self._accept_punct(","):
            items.append(self._order_item())
        return items

    def _order_item(self) -> ast.OrderItem:
        expr = self._expression()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expr, ascending)

    # -- FROM items -------------------------------------------------------------------

    def _from_item(self) -> ast.FromItem:
        item = self._from_primary()
        while True:
            join_type = self._join_type()
            if join_type is None:
                return item
            right = self._from_primary()
            condition = None
            if self._accept_keyword("on"):
                condition = self._expression()
            item = ast.JoinSource(item, right, join_type, condition)

    def _join_type(self) -> Optional[str]:
        token = self._peek()
        if token.is_keyword("join"):
            self._next()
            return "inner"
        if token.is_keyword("inner") and self._peek(1).is_keyword("join"):
            self._next()
            self._next()
            return "inner"
        if token.is_keyword("left"):
            self._next()
            self._accept_keyword("outer")
            self._expect_keyword("join")
            return "left_outer"
        if token.is_keyword("right") or token.is_keyword("full"):
            raise self._error("only INNER and LEFT OUTER joins are supported")
        return None

    def _from_primary(self) -> ast.FromItem:
        if self._accept_punct("("):
            query = self._query_expression()
            self._expect_punct(")")
            alias, column_names = self._source_alias()
            return ast.SubquerySource(query, alias, column_names)
        name = self._expect_ident("table name")
        if self._peek().is_punct("("):
            return self._table_function(name)
        alias, _ = self._source_alias(allow_columns=False)
        return ast.TableRef(name, alias)

    def _table_function(self, name: str) -> ast.TableFunctionSource:
        self._expect_punct("(")
        scalar_args: List[ast.Expr] = []
        table_args: List[ast.FromItem] = []
        if not self._peek().is_punct(")"):
            while True:
                argument = self._table_function_arg()
                if isinstance(argument, ast.FromItem):
                    table_args.append(argument)
                else:
                    scalar_args.append(argument)
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        alias, column_names = self._source_alias()
        return ast.TableFunctionSource(name, scalar_args, table_args, alias,
                                       column_names)

    def _table_function_arg(self):
        """An argument is a table input (table name / nested query / nested
        table function) or a scalar expression; tables win on ambiguity."""
        token = self._peek()
        if token.is_keyword("select", "with"):
            query = self._query_expression()
            return ast.SubquerySource(query, None)
        if token.is_punct("(") and self._peek(1).is_keyword("select", "with"):
            self._next()
            query = self._query_expression()
            self._expect_punct(")")
            return ast.SubquerySource(query, None)
        if token.type is TokenType.IDENT:
            # A bare identifier is a table input; ident( starts a nested
            # table function.  Expressions over columns make no sense here.
            if self._peek(1).is_punct("("):
                name = self._expect_ident()
                return self._table_function(name)
            if self._peek(1).is_punct(",") or self._peek(1).is_punct(")"):
                return ast.TableRef(self._expect_ident(), None)
        return self._expression()

    def _source_alias(self, allow_columns: bool = True
                      ) -> Tuple[Optional[str], Optional[List[str]]]:
        alias = None
        column_names = None
        if self._accept_keyword("as"):
            alias = self._expect_ident("alias")
        elif self._peek().type is TokenType.IDENT:
            alias = self._expect_ident()
        if allow_columns and alias is not None and self._accept_punct("("):
            column_names = self._name_list()
            self._expect_punct(")")
        return alias, column_names

    def _name_list(self) -> List[str]:
        names = [self._expect_ident("column name")]
        while self._accept_punct(","):
            names.append(self._expect_ident("column name"))
        return names

    # -- DML -------------------------------------------------------------------------

    def _insert(self) -> ast.InsertStmt:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table_name = self._expect_ident("table name")
        column_names = None
        if self._accept_punct("("):
            column_names = self._name_list()
            self._expect_punct(")")
        if self._accept_keyword("values"):
            rows = [self._value_row()]
            while self._accept_punct(","):
                rows.append(self._value_row())
            return ast.InsertStmt(table_name, column_names, rows=rows)
        query = self._query_expression()
        return ast.InsertStmt(table_name, column_names, query=query)

    def _value_row(self) -> List[ast.Expr]:
        self._expect_punct("(")
        row = [self._expression()]
        while self._accept_punct(","):
            row.append(self._expression())
        self._expect_punct(")")
        return row

    def _update(self) -> ast.UpdateStmt:
        self._expect_keyword("update")
        table_name = self._expect_ident("table name")
        self._expect_keyword("set")
        assignments = [self._assignment()]
        while self._accept_punct(","):
            assignments.append(self._assignment())
        where = self._expression() if self._accept_keyword("where") else None
        return ast.UpdateStmt(table_name, assignments, where)

    def _assignment(self) -> Tuple[str, ast.Expr]:
        name = self._expect_ident("column name")
        if self._accept_op("=") is None:
            raise self._error("expected = in assignment")
        return name, self._expression()

    def _delete(self) -> ast.DeleteStmt:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table_name = self._expect_ident("table name")
        where = self._expression() if self._accept_keyword("where") else None
        return ast.DeleteStmt(table_name, where)

    # -- DDL -------------------------------------------------------------------------

    def _create(self) -> ast.Statement:
        self._expect_keyword("create")
        if self._accept_keyword("table"):
            return self._create_table()
        if self._accept_keyword("view"):
            return self._create_view()
        unique = self._accept_keyword("unique") is not None
        if self._accept_keyword("index"):
            return self._create_index(unique)
        raise self._error("expected TABLE, VIEW or [UNIQUE] INDEX")

    def _create_table(self) -> ast.CreateTableStmt:
        name = self._expect_ident("table name")
        self._expect_punct("(")
        columns: List[ast.ColumnSpec] = []
        primary_key: Optional[List[str]] = None
        checks: List[ast.Expr] = []
        while True:
            if self._accept_keyword("primary"):
                self._expect_keyword("key")
                self._expect_punct("(")
                primary_key = self._name_list()
                self._expect_punct(")")
            elif self._accept_keyword("check"):
                self._expect_punct("(")
                checks.append(self._expression())
                self._expect_punct(")")
            else:
                columns.append(self._column_spec())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        storage_manager = None
        site = None
        partition_by = None
        partitions = None
        while True:
            if self._accept_keyword("using"):
                storage_manager = self._expect_ident("storage manager name")
            elif self._accept_keyword("at"):
                self._expect_keyword("site")
                site = self._expect_ident("site name")
            elif self._accept_word("partition"):
                self._expect_keyword("by")
                self._expect_word("hash")
                self._expect_punct("(")
                partition_by = self._expect_ident("partitioning column")
                self._expect_punct(")")
                self._expect_word("partitions")
                token = self._next()
                if token.type is not TokenType.NUMBER \
                        or not isinstance(token.value, int):
                    raise self._error("partition count must be an integer")
                partitions = token.value
            else:
                break
        return ast.CreateTableStmt(name, columns, primary_key,
                                   storage_manager, site, checks,
                                   partition_by, partitions)

    def _column_spec(self) -> ast.ColumnSpec:
        name = self._expect_ident("column name")
        type_name = self._expect_ident("type name")
        type_length = None
        if self._accept_punct("("):
            token = self._next()
            if token.type is not TokenType.NUMBER or not isinstance(token.value, int):
                raise self._error("type length must be an integer")
            type_length = token.value
            self._expect_punct(")")
        not_null = False
        primary_key = False
        check = None
        while True:
            if self._accept_keyword("not"):
                self._expect_keyword("null")
                not_null = True
            elif self._accept_keyword("primary"):
                self._expect_keyword("key")
                primary_key = True
                not_null = True
            elif self._accept_keyword("check"):
                self._expect_punct("(")
                check = self._expression()
                self._expect_punct(")")
            else:
                break
        return ast.ColumnSpec(name, type_name, type_length, not_null,
                              primary_key, check)

    def _create_index(self, unique: bool) -> ast.CreateIndexStmt:
        name = self._expect_ident("index name")
        self._expect_keyword("on")
        table_name = self._expect_ident("table name")
        self._expect_punct("(")
        column_names = self._name_list()
        self._expect_punct(")")
        kind = None
        if self._accept_keyword("using"):
            kind = self._expect_ident("access method kind")
        return ast.CreateIndexStmt(name, table_name, column_names, kind,
                                   unique)

    def _create_view(self) -> ast.CreateViewStmt:
        name = self._expect_ident("view name")
        column_names = None
        if self._accept_punct("("):
            column_names = self._name_list()
            self._expect_punct(")")
        self._expect_keyword("as")
        query = self._query_expression()
        return ast.CreateViewStmt(name, query, column_names, text=self.text)

    def _drop(self) -> ast.DropStmt:
        self._expect_keyword("drop")
        for kind in ("table", "view", "index"):
            if self._accept_keyword(kind):
                return ast.DropStmt(kind, self._expect_ident("%s name" % kind))
        raise self._error("expected TABLE, VIEW or INDEX")

    # -- expressions ------------------------------------------------------------------

    def _expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = ast.BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = ast.BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self._peek().is_keyword("not"):
            if self._peek(1).is_keyword("exists"):
                self._next()  # NOT
                self._next()  # EXISTS
                self._expect_punct("(")
                subquery = self._query_expression()
                self._expect_punct(")")
                return ast.ExistsExpr(subquery, negated=True)
            self._next()
            return ast.UnaryOp("not", self._not_expr())
        return self._comparison()

    _SET_FUNCS = ("any", "some", "all")

    def _comparison(self) -> ast.Expr:
        if self._peek().is_keyword("exists"):
            self._next()
            self._expect_punct("(")
            subquery = self._query_expression()
            self._expect_punct(")")
            return ast.ExistsExpr(subquery)
        left = self._additive()
        token = self._peek()
        if token.is_op("=", "<>", "!=", "<", "<=", ">", ">="):
            op = "<>" if token.text == "!=" else token.text
            self._next()
            quantified = self._maybe_quantified(left, op)
            if quantified is not None:
                return quantified
            return ast.BinaryOp(op, left, self._additive())
        negated = False
        if token.is_keyword("not"):
            lookahead = self._peek(1)
            if lookahead.is_keyword("in", "between", "like"):
                self._next()
                negated = True
                token = self._peek()
        if token.is_keyword("in"):
            self._next()
            return self._in_tail(left, negated)
        if token.is_keyword("between"):
            self._next()
            low = self._additive()
            self._expect_keyword("and")
            high = self._additive()
            return ast.Between(left, low, high, negated)
        if token.is_keyword("like"):
            self._next()
            return ast.Like(left, self._additive(), negated)
        if token.is_keyword("is"):
            self._next()
            is_negated = self._accept_keyword("not") is not None
            self._expect_keyword("null")
            return ast.IsNull(left, is_negated)
        return left

    def _maybe_quantified(self, left: ast.Expr, op: str) -> Optional[ast.Expr]:
        """Detect ``op ANY/ALL/SOME (query)`` or ``op <setpred> (query)``."""
        token = self._peek()
        is_builtin = token.is_keyword(*self._SET_FUNCS)
        is_named = (token.type is TokenType.IDENT and self._peek(1).is_punct("(")
                    and self._peek(2).is_keyword("select", "with"))
        if not is_builtin and not is_named:
            return None
        function = token.text if is_builtin else str(token.value)
        self._next()
        self._expect_punct("(")
        subquery = self._query_expression()
        self._expect_punct(")")
        return ast.QuantifiedComparison(left, op, function, subquery)

    def _in_tail(self, left: ast.Expr, negated: bool) -> ast.Expr:
        self._expect_punct("(")
        if self._peek().is_keyword("select", "with"):
            subquery = self._query_expression()
            self._expect_punct(")")
            return ast.InExpr(left, subquery=subquery, negated=negated)
        values = [self._expression()]
        while self._accept_punct(","):
            values.append(self._expression())
        self._expect_punct(")")
        return ast.InExpr(left, values=values, negated=negated)

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.is_op("+", "-", "||"):
                self._next()
                left = ast.BinaryOp(token.text, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.is_op("*", "/", "%"):
                self._next()
                left = ast.BinaryOp(token.text, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self._accept_op("-"):
            return ast.UnaryOp("-", self._unary())
        if self._accept_op("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER or token.type is TokenType.STRING:
            self._next()
            return ast.Literal(token.value)
        if token.is_keyword("null"):
            self._next()
            return ast.Literal(None)
        if token.is_keyword("true"):
            self._next()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self._next()
            return ast.Literal(False)
        if token.type is TokenType.PARAM:
            self._next()
            self._param_count += 1
            return ast.Param(self._param_count - 1,
                             token.value if token.value else None)
        if token.is_keyword("case"):
            return self._case()
        if token.is_keyword("cast"):
            return self._cast()
        if token.is_punct("("):
            self._next()
            if self._peek().is_keyword("select", "with"):
                subquery = self._query_expression()
                self._expect_punct(")")
                return ast.ScalarSubquery(subquery)
            expr = self._expression()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENT:
            return self._identifier_expr()
        raise self._error("expected an expression")

    def _identifier_expr(self) -> ast.Expr:
        name = self._expect_ident()
        if self._peek().is_punct("("):
            self._next()
            distinct = self._accept_keyword("distinct") is not None
            args: List[ast.Expr] = []
            if self._peek().is_op("*"):
                self._next()
                args.append(ast.Star())
            elif not self._peek().is_punct(")"):
                args.append(self._expression())
                while self._accept_punct(","):
                    args.append(self._expression())
            self._expect_punct(")")
            return ast.FunctionCall(name, args, distinct)
        if self._accept_punct("."):
            column = self._expect_ident("column name")
            return ast.ColumnRef(column, qualifier=name)
        return ast.ColumnRef(name)

    def _case(self) -> ast.Expr:
        self._expect_keyword("case")
        whens: List[Tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("when"):
            condition = self._expression()
            self._expect_keyword("then")
            whens.append((condition, self._expression()))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        else_value = self._expression() if self._accept_keyword("else") else None
        self._expect_keyword("end")
        return ast.CaseExpr(whens, else_value)

    def _cast(self) -> ast.Expr:
        self._expect_keyword("cast")
        self._expect_punct("(")
        operand = self._expression()
        self._expect_keyword("as")
        type_name = self._expect_ident("type name")
        type_length = None
        if self._accept_punct("("):
            token = self._next()
            if token.type is not TokenType.NUMBER:
                raise self._error("type length must be an integer")
            type_length = int(token.value)  # type: ignore[arg-type]
            self._expect_punct(")")
        self._expect_punct(")")
        return ast.CastExpr(operand, type_name, type_length)


def parse_statement(text: str) -> ast.Statement:
    """Parse one Hydrogen statement."""
    return Parser(text).parse()
