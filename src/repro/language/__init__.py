"""Hydrogen, Starburst's query language (section 2 of the paper).

Hydrogen is SQL-based but more orthogonal: views and set operations can
appear anywhere a table can, table expressions (``WITH``, optionally
recursive) factor out common subexpressions and express recursion, and the
language is extensible with new functions, operations and types.

This package contains the compile-time front end:

- :mod:`~repro.language.lexer` — tokenizer,
- :mod:`~repro.language.ast` — abstract syntax,
- :mod:`~repro.language.parser` — recursive-descent parser,
- :mod:`~repro.language.translator` — semantic analysis and translation to
  the Query Graph Model (parsing "produces QGM that is guaranteed valid").
"""

from repro.language.lexer import Lexer, Token, TokenType, tokenize
from repro.language.parser import Parser, parse_statement

__all__ = [
    "Lexer",
    "Token",
    "TokenType",
    "tokenize",
    "Parser",
    "parse_statement",
]
