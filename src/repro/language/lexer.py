"""Tokenizer for Hydrogen.

Hand-written single-pass scanner.  Keywords are recognized case-
insensitively; identifiers are normalized to lower case unless quoted with
double quotes.  String literals use single quotes with ``''`` escaping.
"""

from __future__ import annotations

import enum
from typing import List, NamedTuple

from repro.errors import LexerError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PARAM = "param"       # ? or :name host-variable placeholders
    EOF = "eof"


#: Reserved words.  Kept deliberately small ("a relatively small number of
#: built-in constructs keeps the grammar compact") — unreserved words parse
#: as identifiers.
KEYWORDS = frozenset("""
    select from where group by having order asc desc distinct all any some
    and or not in exists between like is null true false case when then else
    end union intersect except as on inner join left right outer full with
    recursive insert into values update set delete create table view index
    unique drop primary key using at site check references explain limit
    cast foreign
""".split())

OPERATORS = ("<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/",
             "%")
PUNCT = ("(", ")", ",", ".", ";")


class Token(NamedTuple):
    type: TokenType
    text: str
    value: object
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in words

    def is_op(self, *ops: str) -> bool:
        return self.type is TokenType.OPERATOR and self.text in ops

    def is_punct(self, *marks: str) -> bool:
        return self.type is TokenType.PUNCT and self.text in marks


class Lexer:
    """Scanner producing a token list (EOF-terminated)."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> LexerError:
        return LexerError("%s at line %d" % (message, self.line),
                          position=self.pos, line=self.line)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_noise(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text) and not (
                        self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if self.pos >= len(self.text):
                    raise self._error("unterminated block comment")
                self._advance(2)
            else:
                return

    def tokens(self) -> List[Token]:
        result: List[Token] = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.type is TokenType.EOF:
                return result

    def next_token(self) -> Token:
        self._skip_noise()
        line, column = self.line, self.column
        if self.pos >= len(self.text):
            return Token(TokenType.EOF, "", None, line, column)
        ch = self._peek()

        if ch.isalpha() or ch == "_":
            return self._word(line, column)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, column)
        if ch == "'":
            return self._string(line, column)
        if ch == '"':
            return self._quoted_ident(line, column)
        if ch == "?":
            self._advance()
            return Token(TokenType.PARAM, "?", None, line, column)
        if ch == ":" and (self._peek(1).isalpha() or self._peek(1) == "_"):
            self._advance()
            name = self._ident_text()
            return Token(TokenType.PARAM, ":" + name, name, line, column)
        for op in OPERATORS:
            if self.text.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokenType.OPERATOR, op, None, line, column)
        if ch in PUNCT:
            self._advance()
            return Token(TokenType.PUNCT, ch, None, line, column)
        raise self._error("unexpected character %r" % ch)

    def _ident_text(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and (self._peek().isalnum()
                                             or self._peek() == "_"):
            self._advance()
        return self.text[start: self.pos]

    def _word(self, line: int, column: int) -> Token:
        text = self._ident_text().lower()
        if text in KEYWORDS:
            return Token(TokenType.KEYWORD, text, None, line, column)
        return Token(TokenType.IDENT, text, text, line, column)

    def _quoted_ident(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        start = self.pos
        while self.pos < len(self.text) and self._peek() != '"':
            self._advance()
        if self.pos >= len(self.text):
            raise self._error("unterminated quoted identifier")
        text = self.text[start: self.pos]
        self._advance()  # closing quote
        return Token(TokenType.IDENT, text, text, line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        is_float = False
        while self.pos < len(self.text) and self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self.pos < len(self.text) and self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (self._peek(1).isdigit()
                                     or (self._peek(1) in "+-"
                                         and self._peek(2).isdigit())):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self.pos < len(self.text) and self._peek().isdigit():
                self._advance()
        text = self.text[start: self.pos]
        value = float(text) if is_float else int(text)
        return Token(TokenType.NUMBER, text, value, line, column)

    def _string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":     # '' escape
                    parts.append("'")
                    self._advance(2)
                    continue
                self._advance()
                break
            parts.append(ch)
            self._advance()
        text = "".join(parts)
        return Token(TokenType.STRING, text, text, line, column)


def tokenize(text: str) -> List[Token]:
    """Tokenize a complete statement, returning an EOF-terminated list."""
    return Lexer(text).tokens()
