"""Abstract syntax for Hydrogen statements and expressions.

These nodes are the parser's output and the translator's input.  They carry
no resolved semantic information (that appears only in QGM); ``repr`` forms
are SQL-ish to ease debugging.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple


class Node:
    """Base class for all AST nodes."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ()


class Literal(Expr):
    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:
        return repr(self.value)


class ColumnRef(Expr):
    """``column`` or ``qualifier.column`` (qualifier = table name or alias)."""

    __slots__ = ("qualifier", "name")

    def __init__(self, name: str, qualifier: Optional[str] = None):
        self.qualifier = qualifier
        self.name = name

    def __repr__(self) -> str:
        return "%s.%s" % (self.qualifier, self.name) if self.qualifier else self.name


class Star(Expr):
    """``*`` or ``qualifier.*`` in a select list or COUNT(*)."""

    __slots__ = ("qualifier",)

    def __init__(self, qualifier: Optional[str] = None):
        self.qualifier = qualifier

    def __repr__(self) -> str:
        return "%s.*" % self.qualifier if self.qualifier else "*"


class Param(Expr):
    """Host-variable placeholder: ``?`` (positional) or ``:name``."""

    __slots__ = ("index", "name")

    def __init__(self, index: int, name: Optional[str] = None):
        self.index = index
        self.name = name

    def __repr__(self) -> str:
        return ":%s" % self.name if self.name else "?%d" % self.index


class BinaryOp(Expr):
    """Arithmetic, comparison, AND/OR, string concat (``||``)."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return "(%r %s %r)" % (self.left, self.op, self.right)


class UnaryOp(Expr):
    """NOT and unary minus."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr):
        self.op = op
        self.operand = operand

    def __repr__(self) -> str:
        return "(%s %r)" % (self.op, self.operand)


class IsNull(Expr):
    __slots__ = ("operand", "negated")

    def __init__(self, operand: Expr, negated: bool = False):
        self.operand = operand
        self.negated = negated

    def __repr__(self) -> str:
        return "(%r IS %sNULL)" % (self.operand, "NOT " if self.negated else "")


class Between(Expr):
    __slots__ = ("operand", "low", "high", "negated")

    def __init__(self, operand: Expr, low: Expr, high: Expr,
                 negated: bool = False):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def __repr__(self) -> str:
        return "(%r %sBETWEEN %r AND %r)" % (
            self.operand, "NOT " if self.negated else "", self.low, self.high)


class Like(Expr):
    __slots__ = ("operand", "pattern", "negated")

    def __init__(self, operand: Expr, pattern: Expr, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated

    def __repr__(self) -> str:
        return "(%r %sLIKE %r)" % (self.operand, "NOT " if self.negated else "",
                                   self.pattern)


class FunctionCall(Expr):
    """Scalar or aggregate call; which one is decided during translation."""

    __slots__ = ("name", "args", "distinct")

    def __init__(self, name: str, args: Sequence[Expr],
                 distinct: bool = False):
        self.name = name.lower()
        self.args = list(args)
        self.distinct = distinct

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        if self.distinct:
            inner = "DISTINCT " + inner
        return "%s(%s)" % (self.name, inner)


class CaseExpr(Expr):
    """Searched CASE: WHEN cond THEN value ... [ELSE value] END."""

    __slots__ = ("whens", "else_value")

    def __init__(self, whens: Sequence[Tuple[Expr, Expr]],
                 else_value: Optional[Expr] = None):
        self.whens = list(whens)
        self.else_value = else_value

    def __repr__(self) -> str:
        parts = ["CASE"]
        for cond, value in self.whens:
            parts.append("WHEN %r THEN %r" % (cond, value))
        if self.else_value is not None:
            parts.append("ELSE %r" % (self.else_value,))
        parts.append("END")
        return " ".join(parts)


class CastExpr(Expr):
    __slots__ = ("operand", "type_name", "type_length")

    def __init__(self, operand: Expr, type_name: str,
                 type_length: Optional[int] = None):
        self.operand = operand
        self.type_name = type_name
        self.type_length = type_length

    def __repr__(self) -> str:
        return "CAST(%r AS %s)" % (self.operand, self.type_name)


class InExpr(Expr):
    """``x [NOT] IN (subquery)`` or ``x [NOT] IN (v1, v2, ...)``."""

    __slots__ = ("operand", "subquery", "values", "negated")

    def __init__(self, operand: Expr, subquery: Optional["SelectStmt"] = None,
                 values: Optional[Sequence[Expr]] = None,
                 negated: bool = False):
        self.operand = operand
        self.subquery = subquery
        self.values = list(values) if values is not None else None
        self.negated = negated

    def __repr__(self) -> str:
        target = "<subquery>" if self.subquery is not None else repr(self.values)
        return "(%r %sIN %s)" % (self.operand, "NOT " if self.negated else "",
                                 target)


class ExistsExpr(Expr):
    __slots__ = ("subquery", "negated")

    def __init__(self, subquery: "SelectStmt", negated: bool = False):
        self.subquery = subquery
        self.negated = negated

    def __repr__(self) -> str:
        return "(%sEXISTS <subquery>)" % ("NOT " if self.negated else "",)


class QuantifiedComparison(Expr):
    """``x op ANY (subquery)``, ``x op ALL (subquery)``, or a DBC-defined
    set-predicate function such as ``x op MAJORITY (subquery)``."""

    __slots__ = ("operand", "op", "function", "subquery")

    def __init__(self, operand: Expr, op: str, function: str,
                 subquery: "SelectStmt"):
        self.operand = operand
        self.op = op
        self.function = function.lower()
        self.subquery = subquery

    def __repr__(self) -> str:
        return "(%r %s %s <subquery>)" % (self.operand, self.op,
                                          self.function.upper())


class ScalarSubquery(Expr):
    __slots__ = ("subquery",)

    def __init__(self, subquery: "SelectStmt"):
        self.subquery = subquery

    def __repr__(self) -> str:
        return "(<scalar subquery>)"


# ---------------------------------------------------------------------------
# FROM items
# ---------------------------------------------------------------------------


class FromItem(Node):
    __slots__ = ("alias",)

    def __init__(self, alias: Optional[str]):
        self.alias = alias


class TableRef(FromItem):
    """Base table, view or named table expression (resolved later)."""

    __slots__ = ("name",)

    def __init__(self, name: str, alias: Optional[str] = None):
        super().__init__(alias)
        self.name = name

    def __repr__(self) -> str:
        return "%s %s" % (self.name, self.alias) if self.alias else self.name


class SubquerySource(FromItem):
    """Derived table: ``(SELECT ...) AS alias [(col, ...)]``."""

    __slots__ = ("query", "column_names")

    def __init__(self, query: "SelectStmt", alias: Optional[str] = None,
                 column_names: Optional[Sequence[str]] = None):
        super().__init__(alias)
        self.query = query
        self.column_names = list(column_names) if column_names else None

    def __repr__(self) -> str:
        return "(<subquery>) %s" % (self.alias or "")


class TableFunctionSource(FromItem):
    """Table-function invocation in FROM: ``SAMPLE(t, 10) AS s``.

    Arguments may be scalar expressions or nested table sources.
    """

    __slots__ = ("name", "scalar_args", "table_args", "column_names")

    def __init__(self, name: str, scalar_args: Sequence[Expr],
                 table_args: Sequence[FromItem],
                 alias: Optional[str] = None,
                 column_names: Optional[Sequence[str]] = None):
        super().__init__(alias)
        self.name = name.lower()
        self.scalar_args = list(scalar_args)
        self.table_args = list(table_args)
        self.column_names = list(column_names) if column_names else None

    def __repr__(self) -> str:
        return "%s(...) %s" % (self.name, self.alias or "")


class JoinSource(FromItem):
    """Explicit join: ``left [INNER | LEFT OUTER] JOIN right ON cond``.

    INNER joins are base-system; LEFT OUTER is the paper's worked DBC
    extension and is rejected at translation time unless enabled.
    """

    __slots__ = ("left", "right", "join_type", "condition")

    def __init__(self, left: FromItem, right: FromItem, join_type: str,
                 condition: Optional[Expr]):
        super().__init__(None)
        self.left = left
        self.right = right
        self.join_type = join_type  # 'inner' | 'left_outer'
        self.condition = condition

    def __repr__(self) -> str:
        return "(%r %s JOIN %r)" % (self.left, self.join_type.upper(),
                                    self.right)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement(Node):
    __slots__ = ()


class SelectItem(Node):
    __slots__ = ("expr", "alias")

    def __init__(self, expr: Expr, alias: Optional[str] = None):
        self.expr = expr
        self.alias = alias

    def __repr__(self) -> str:
        return "%r AS %s" % (self.expr, self.alias) if self.alias else repr(self.expr)


class OrderItem(Node):
    __slots__ = ("expr", "ascending")

    def __init__(self, expr: Expr, ascending: bool = True):
        self.expr = expr
        self.ascending = ascending

    def __repr__(self) -> str:
        return "%r %s" % (self.expr, "ASC" if self.ascending else "DESC")


class CommonTableExpr(Node):
    """One WITH element: ``name [(cols)] AS (query)``."""

    __slots__ = ("name", "column_names", "query")

    def __init__(self, name: str, query: "SelectStmt",
                 column_names: Optional[Sequence[str]] = None):
        self.name = name
        self.column_names = list(column_names) if column_names else None
        self.query = query


class SelectStmt(Statement):
    """A query expression, possibly with set operations and WITH clause.

    ``set_op``/``set_all``/``set_right`` chain set operations left-deep:
    ``a UNION b UNION c`` parses as ``(a UNION b) UNION c``.
    """

    __slots__ = ("items", "from_items", "where", "group_by", "having",
                 "order_by", "distinct", "limit", "ctes", "recursive",
                 "set_op", "set_all", "set_right")

    def __init__(self, items: Sequence[SelectItem],
                 from_items: Sequence[FromItem],
                 where: Optional[Expr] = None,
                 group_by: Optional[Sequence[Expr]] = None,
                 having: Optional[Expr] = None,
                 order_by: Optional[Sequence[OrderItem]] = None,
                 distinct: bool = False,
                 limit: Optional[int] = None,
                 ctes: Optional[Sequence[CommonTableExpr]] = None,
                 recursive: bool = False):
        self.items = list(items)
        self.from_items = list(from_items)
        self.where = where
        self.group_by = list(group_by) if group_by else []
        self.having = having
        self.order_by = list(order_by) if order_by else []
        self.distinct = distinct
        self.limit = limit
        self.ctes = list(ctes) if ctes else []
        self.recursive = recursive
        self.set_op: Optional[str] = None       # 'union'|'intersect'|'except'
        self.set_all: bool = False
        self.set_right: Optional["SelectStmt"] = None

    def __repr__(self) -> str:
        return "<SelectStmt %d items, %d sources>" % (
            len(self.items), len(self.from_items))


class InsertStmt(Statement):
    __slots__ = ("table_name", "column_names", "rows", "query")

    def __init__(self, table_name: str,
                 column_names: Optional[Sequence[str]] = None,
                 rows: Optional[Sequence[Sequence[Expr]]] = None,
                 query: Optional[SelectStmt] = None):
        self.table_name = table_name
        self.column_names = list(column_names) if column_names else None
        self.rows = [list(r) for r in rows] if rows else None
        self.query = query


class UpdateStmt(Statement):
    __slots__ = ("table_name", "assignments", "where")

    def __init__(self, table_name: str,
                 assignments: Sequence[Tuple[str, Expr]],
                 where: Optional[Expr] = None):
        self.table_name = table_name
        self.assignments = list(assignments)
        self.where = where


class DeleteStmt(Statement):
    __slots__ = ("table_name", "where")

    def __init__(self, table_name: str, where: Optional[Expr] = None):
        self.table_name = table_name
        self.where = where


class ColumnSpec(Node):
    __slots__ = ("name", "type_name", "type_length", "not_null",
                 "primary_key", "check")

    def __init__(self, name: str, type_name: str,
                 type_length: Optional[int] = None, not_null: bool = False,
                 primary_key: bool = False, check: Optional[Expr] = None):
        self.name = name
        self.type_name = type_name
        self.type_length = type_length
        self.not_null = not_null
        self.primary_key = primary_key
        self.check = check


class CreateTableStmt(Statement):
    __slots__ = ("name", "columns", "primary_key", "storage_manager", "site",
                 "checks", "partition_by", "partitions")

    def __init__(self, name: str, columns: Sequence[ColumnSpec],
                 primary_key: Optional[Sequence[str]] = None,
                 storage_manager: Optional[str] = None,
                 site: Optional[str] = None,
                 checks: Optional[Sequence[Expr]] = None,
                 partition_by: Optional[str] = None,
                 partitions: Optional[int] = None):
        self.name = name
        self.columns = list(columns)
        self.primary_key = list(primary_key) if primary_key else None
        self.storage_manager = storage_manager
        self.site = site
        self.checks = list(checks) if checks else []
        self.partition_by = partition_by
        self.partitions = partitions


class CreateIndexStmt(Statement):
    __slots__ = ("name", "table_name", "column_names", "kind", "unique")

    def __init__(self, name: str, table_name: str,
                 column_names: Sequence[str], kind: Optional[str] = None,
                 unique: bool = False):
        self.name = name
        self.table_name = table_name
        self.column_names = list(column_names)
        self.kind = kind or "btree"
        self.unique = unique


class CreateViewStmt(Statement):
    __slots__ = ("name", "column_names", "query", "text")

    def __init__(self, name: str, query: SelectStmt,
                 column_names: Optional[Sequence[str]] = None,
                 text: str = ""):
        self.name = name
        self.column_names = list(column_names) if column_names else None
        self.query = query
        self.text = text


class DropStmt(Statement):
    __slots__ = ("kind", "name")

    def __init__(self, kind: str, name: str):
        self.kind = kind  # 'table' | 'view' | 'index'
        self.name = name


class ExplainStmt(Statement):
    __slots__ = ("statement", "analyze")

    def __init__(self, statement: Statement, analyze: bool = False):
        self.statement = statement
        #: EXPLAIN ANALYZE: execute the statement and annotate the plan
        #: with actual per-operator rows and time.
        self.analyze = analyze
