"""The differential correctness harness (engine vs. reference oracle).

Four cooperating pieces, all deterministic from one integer seed:

- :mod:`repro.testkit.datagen` — random catalogs (tables, keys, indexes,
  NULL-heavy skewed data, views) built through the public Database API,
- :mod:`repro.testkit.querygen` — random Hydrogen SELECTs (joins,
  subqueries, set operations, grouping, ordering) that know how to shrink
  themselves,
- :mod:`repro.testkit.oracle` — a naive QGM interpreter with no rewrite,
  no optimizer and no compiled expressions: the ground truth,
- :mod:`repro.testkit.differential` — runs each query through the real
  pipeline under a matrix of :class:`~repro.core.options.CompileOptions`
  configurations, compares bags against the oracle, and shrinks failures
  to ready-to-paste reproductions.

Command line: ``python -m repro.testkit --seed 7`` replays one seed;
``--seeds 0:200`` sweeps a range.  See "Correctness harness" in the
README.
"""

from repro.testkit.datagen import (SchemaSpec, build_database,
                                   generate_schema)
from repro.testkit.differential import (Config, Divergence,
                                        DifferentialRunner, default_matrix,
                                        run_seed, shrink_case)
from repro.testkit.oracle import OracleError, OracleResult, ReferenceOracle
from repro.testkit.querygen import QueryGenerator, QuerySpec

__all__ = [
    "Config",
    "DifferentialRunner",
    "Divergence",
    "OracleError",
    "OracleResult",
    "QueryGenerator",
    "QuerySpec",
    "ReferenceOracle",
    "SchemaSpec",
    "build_database",
    "default_matrix",
    "generate_schema",
    "run_seed",
    "shrink_case",
]
