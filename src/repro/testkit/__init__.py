"""The differential correctness harness (engine vs. reference oracle).

Four cooperating pieces, all deterministic from one integer seed:

- :mod:`repro.testkit.datagen` — random catalogs (tables, keys, indexes,
  NULL-heavy skewed data, views) built through the public Database API,
- :mod:`repro.testkit.querygen` — random Hydrogen SELECTs (joins,
  subqueries, set operations, grouping, ordering) that know how to shrink
  themselves,
- :mod:`repro.testkit.oracle` — a naive QGM interpreter with no rewrite,
  no optimizer and no compiled expressions: the ground truth,
- :mod:`repro.testkit.differential` — runs each query through the real
  pipeline under a matrix of :class:`~repro.core.options.CompileOptions`
  configurations, compares bags against the oracle, and shrinks failures
  to ready-to-paste reproductions,
- :mod:`repro.testkit.rulecheck` — per-rewrite-rule verification: forces
  each rule to fire in isolation (and with the full rule set) on
  match-biased generated queries plus pinned templates, comparing against
  the no-rewrite reference.

Command line: ``python -m repro.testkit --seed 7`` replays one seed;
``--seeds 0:200`` sweeps a range; ``python -m repro.testkit rules``
verifies every rewrite rule.  See "Correctness harness" in the README.
"""

from repro.testkit.datagen import (SchemaSpec, build_database,
                                   generate_schema)
from repro.testkit.differential import (Config, Divergence,
                                        DifferentialRunner, default_matrix,
                                        run_seed, shrink_case)
from repro.testkit.oracle import OracleError, OracleResult, ReferenceOracle
from repro.testkit.querygen import GenBias, QueryGenerator, QuerySpec
from repro.testkit.rulecheck import (RULE_TEMPLATES, RuleCheckReport,
                                     RuleDivergence, check_all, check_rule,
                                     registered_rules)

__all__ = [
    "Config",
    "DifferentialRunner",
    "Divergence",
    "GenBias",
    "OracleError",
    "OracleResult",
    "QueryGenerator",
    "QuerySpec",
    "ReferenceOracle",
    "RULE_TEMPLATES",
    "RuleCheckReport",
    "RuleDivergence",
    "SchemaSpec",
    "build_database",
    "check_all",
    "check_rule",
    "default_matrix",
    "generate_schema",
    "registered_rules",
    "run_seed",
    "shrink_case",
]
