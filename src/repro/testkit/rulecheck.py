"""Per-rule semantic verification: the rulecheck harness.

Every rewrite rule must be an *equivalence*: firing it cannot change a
query's answer.  The differential sweep only exercises a rule when a
random query happens to both match its condition and get it scheduled, so
a rule can sit untested for hundreds of seeds.  This module checks rules
as first-class artifacts instead:

- **forced-fire isolation** — the engine's ``only_rules`` switch compiles
  a query with exactly one rule active, so a divergence implicates that
  rule and nothing else;
- **match-targeted generation** — queries come from the shared
  :class:`~repro.testkit.querygen.QueryGenerator` under a per-rule
  :class:`~repro.testkit.querygen.GenBias` that skews the draw toward QGM
  shapes the rule's condition can match (more subqueries for
  ``subquery_to_join``, more joins for ``predicate_transitivity``, ...);
  queries where the rule does not fire are discarded and redrawn;
- **deterministic templates** — some rules need shapes the generator
  cannot produce (``magic_seed_restriction`` wants WITH RECURSIVE,
  ``push_into_setop`` wants a predicate above a union view).
  :data:`RULE_TEMPLATES` pins at least one hand-built firing query per
  built-in rule, so every rule gets a guaranteed forced-fire check even
  when generation misses;
- **no-rewrite reference** — results are compared as type-aware bags
  against the same engine with rewrite disabled (plus ordered-prefix
  comparison under ORDER BY, and error-class equivalence when the
  reference raises).

A rule registered through the extension API
(:meth:`Database.register_rewrite_rule`) is verified the same way: pass a
``setup`` hook that installs it into every database the harness builds,
plus optional ``extra_templates``.
"""

from __future__ import annotations

import random
import zlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.database import Database
from repro.core.options import CompileOptions
from repro.errors import DivisionByZeroError, ReproError
from repro.testkit.datagen import build_database, generate_schema
from repro.testkit.differential import _bag, format_rows
from repro.testkit.querygen import GenBias, QueryGenerator, QuerySpec

# ---------------------------------------------------------------------------
# Match-targeted generation biases (defaults are the generator's own).
# ---------------------------------------------------------------------------

RULE_BIASES: Dict[str, GenBias] = {
    # View merging and projection narrowing want plain selects over the
    # schema's view; suppress the shapes that bury it.
    "merge_select": GenBias(grouped=0.1, setop=0.05, subquery=0.15),
    "push_into_select": GenBias(grouped=0.1, setop=0.05, subquery=0.15),
    "projection_pushdown": GenBias(grouped=0.1, setop=0.05, subquery=0.15),
    # Transitivity wants multi-source equi-joins plus constant equalities.
    "predicate_transitivity": GenBias(single_source=0.05, join_pred=0.95,
                                      subquery=0.1, setop=0.05),
    # Subquery rules want lots of subqueries; distinct relaxing wants
    # DISTINCT inside them, join conversion prefers uncorrelated ones.
    "subquery_to_join": GenBias(subquery=0.85, sub_correlated=0.25,
                                setop=0.05, grouped=0.1),
    "relax_subquery_distinct": GenBias(subquery=0.85, sub_distinct=0.9,
                                       setop=0.05, grouped=0.1),
    # The PF receive rule needs a LEFT OUTER JOIN whose preserved side is
    # a select box — only the schema's view qualifies, so maximize joins.
    "push_through_pf": GenBias(single_source=0.05, left_join=0.9,
                               subquery=0.1, setop=0.05, grouped=0.1),
    # Self-joins on the PK table are the only generator shape this rule
    # can match.
    "redundant_join_elimination": GenBias(single_source=0.0, join_pred=0.95,
                                          subquery=0.05, setop=0.05,
                                          grouped=0.05),
    # HAVING over group keys is the generator's only path above a groupby.
    "push_into_groupby": GenBias(grouped=0.9, setop=0.05, subquery=0.1),
    "push_into_setop": GenBias(setop=0.9, grouped=0.1, subquery=0.1),
}

# ---------------------------------------------------------------------------
# Deterministic forced-fire templates: (setup statements, query) pairs
# verified to fire the rule at least once.  These double as the pinned
# regression floor — a rule whose template stops firing, or fires and
# changes the answer, fails the harness without any random generation.
# ---------------------------------------------------------------------------

RULE_TEMPLATES: Dict[str, List[Tuple[List[str], str]]] = {
    "merge_select": [(
        ["CREATE TABLE t(a INT, b INT)",
         "INSERT INTO t VALUES (1,2),(3,4),(1,5),(NULL,6)",
         "CREATE VIEW v AS SELECT a, b FROM t WHERE a > 0"],
        "SELECT a, b FROM v WHERE b < 10",
    )],
    "push_into_select": [(
        ["CREATE TABLE t(a INT, b INT)",
         "INSERT INTO t VALUES (1,2),(3,4),(1,5),(NULL,6)",
         "CREATE VIEW v AS SELECT DISTINCT a, b FROM t"],
        "SELECT a, b FROM v WHERE a = 1",
    )],
    "predicate_transitivity": [(
        ["CREATE TABLE t1(a INT, b INT)",
         "CREATE TABLE t2(a INT, c INT)",
         "INSERT INTO t1 VALUES (1,2),(2,3),(3,4)",
         "INSERT INTO t2 VALUES (1,7),(2,8),(4,9)"],
        "SELECT t1.b, t2.c FROM t1, t2 WHERE t1.a = t2.a AND t1.a = 2",
    )],
    "push_into_setop": [(
        ["CREATE TABLE t1(a INT)", "CREATE TABLE t2(a INT)",
         "INSERT INTO t1 VALUES (1),(2),(3)",
         "INSERT INTO t2 VALUES (2),(3),(4)",
         "CREATE VIEW u AS SELECT a FROM t1 UNION ALL SELECT a FROM t2"],
        "SELECT a FROM u WHERE a > 1",
    )],
    "push_into_groupby": [(
        ["CREATE TABLE t(a INT, b INT)",
         "INSERT INTO t VALUES (1,2),(1,3),(2,4),(2,5)"],
        "SELECT a, SUM(b) AS s FROM t GROUP BY a HAVING a = 1",
    )],
    "push_through_pf": [(
        ["CREATE TABLE t1(a INT, b INT)", "CREATE TABLE t2(a INT, c INT)",
         "INSERT INTO t1 VALUES (1,2),(2,3)",
         "INSERT INTO t2 VALUES (1,7),(3,9)",
         "CREATE VIEW v1 AS SELECT a, b FROM t1 WHERE a > 0"],
        "SELECT v1.b, t2.c FROM v1 LEFT OUTER JOIN t2 ON v1.a = t2.a "
        "WHERE v1.b = 2",
    )],
    "subquery_to_join": [(
        ["CREATE TABLE t1(a INT, b INT)",
         "CREATE TABLE t2(a INT PRIMARY KEY)",
         "INSERT INTO t1 VALUES (1,2),(2,3),(3,4)",
         "INSERT INTO t2 VALUES (1),(3)"],
        "SELECT b FROM t1 WHERE a IN (SELECT a FROM t2)",
    )],
    "relax_subquery_distinct": [(
        ["CREATE TABLE t1(a INT, b INT)", "CREATE TABLE t2(a INT)",
         "INSERT INTO t1 VALUES (1,2),(2,3),(3,4)",
         "INSERT INTO t2 VALUES (1),(1),(3)"],
        "SELECT b FROM t1 WHERE a IN (SELECT DISTINCT a FROM t2)",
    )],
    "magic_seed_restriction": [(
        ["CREATE TABLE edges(src INT, dst INT)",
         "INSERT INTO edges VALUES (1,2),(2,3),(3,4),(5,6)"],
        "WITH RECURSIVE tc(s, d) AS ("
        "SELECT src, dst FROM edges UNION ALL "
        "SELECT t.s, e.dst FROM tc t, edges e WHERE e.src = t.d) "
        "SELECT s, d FROM tc WHERE s = 2",
    )],
    "redundant_join_elimination": [(
        ["CREATE TABLE dim(k INT PRIMARY KEY, name TEXT)",
         "INSERT INTO dim VALUES (1,'a'),(2,'b'),(3,'c')"],
        "SELECT d1.name FROM dim d1, dim d2 "
        "WHERE d1.k = d2.k AND d2.name = 'a'",
    )],
    "projection_pushdown": [(
        ["CREATE TABLE t(a INT, b INT, c INT, d INT)",
         "INSERT INTO t VALUES (1,2,3,4),(5,6,7,8)",
         "CREATE VIEW w AS SELECT a, b, c, d FROM t WHERE a > 0"],
        "SELECT a FROM w WHERE b < 10 ORDER BY 1",
    )],
}


class RuleDivergence:
    """One confirmed semantic break attributable to a rewrite rule."""

    def __init__(self, rule: str, seed: Optional[int], sql: str,
                 mode: str, detail: str,
                 expected: Optional[List[Tuple]],
                 actual: Optional[List[Tuple]],
                 statements: Sequence[str]):
        self.rule = rule
        self.seed = seed
        self.sql = sql
        #: "solo" (forced-fire isolation), "combo" (full rule set) or
        #: "template" (a pinned template query).
        self.mode = mode
        self.detail = detail
        self.expected = expected
        self.actual = actual
        self.statements = list(statements)

    def summary(self) -> str:
        where = "seed=%s" % self.seed if self.seed is not None \
            else "template"
        return "rule=%s mode=%s %s: %s\n  query: %s" % (
            self.rule, self.mode, where, self.detail, self.sql)

    def repro(self) -> str:
        """A ready-to-paste failing pytest function."""
        lines = [
            "# Rulecheck counterexample (rule %s, mode %s)."
            % (self.rule, self.mode),
            "# %s" % self.detail,
            "def test_rulecheck_%s():" % self.rule,
            "    from repro import CompileOptions, Database",
            "    db = Database()",
            "    db.enable_operation('left_outer_join')",
        ]
        for statement in self.statements:
            lines.append("    db.execute(%r)" % statement)
        lines.append("    db.analyze()")
        only = ("rewrite_only_rules=(%r,), " % self.rule
                if self.mode == "solo" else "")
        lines.append("    options = CompileOptions(%splan_cache=False)"
                     % only)
        lines.append("    result = db.execute(%r, options=options)"
                     % self.sql)
        expected = self.expected if self.expected is not None else []
        lines.append("    expected = %r" % [tuple(r) for r in expected])
        lines.append("    assert sorted(map(repr, result.rows)) == "
                     "sorted(map(repr, expected))")
        lines.append("")
        lines.append("# no-rewrite reference rows:")
        lines.append("\n".join("#" + line for line
                               in format_rows(expected).splitlines()))
        lines.append("# rewritten (actual) rows:")
        actual = self.actual if self.actual is not None else []
        lines.append("\n".join("#" + line for line
                               in format_rows(actual).splitlines()))
        return "\n".join(lines)


class RuleCheckReport:
    """The outcome of verifying one rule."""

    def __init__(self, rule: str):
        self.rule = rule
        self.seeds = 0
        #: Queries drawn (including ones the rule did not fire on).
        self.attempts = 0
        #: Generated queries the rule actually fired on (and were checked).
        self.fired_queries = 0
        #: Pinned template queries checked.
        self.template_queries = 0
        #: Queries whose forced-fire compile raised (skipped, counted).
        self.compile_errors = 0
        self.divergence: Optional[RuleDivergence] = None

    @property
    def checked(self) -> int:
        return self.fired_queries + self.template_queries

    @property
    def ok(self) -> bool:
        """Clean AND meaningful: no divergence, and the rule was really
        exercised at least once (a rule nothing fires on is a finding)."""
        return self.divergence is None and self.checked > 0

    def summary(self) -> str:
        status = "OK" if self.ok else \
            ("NEVER FIRED" if self.divergence is None else "DIVERGED")
        return ("%-28s %-11s fired=%d/%d template=%d seeds=%d"
                % (self.rule, status, self.fired_queries, self.attempts,
                   self.template_queries, self.seeds))


# ---------------------------------------------------------------------------
# Core comparison
# ---------------------------------------------------------------------------


def _rule_seed(rule_name: str, seed: int) -> int:
    """Deterministic per-(rule, seed) stream, stable across processes."""
    return zlib.crc32(rule_name.encode("utf-8")) ^ seed


def _compare(db: Database, rule: str, seed: Optional[int], sql: str,
             spec: Optional[QuerySpec],
             reference_options: CompileOptions,
             configs: Sequence[Tuple[str, CompileOptions]],
             statements: Sequence[str]) -> Optional[RuleDivergence]:
    """Bag-compare every config against the no-rewrite reference."""
    try:
        expected = db.execute(sql, options=reference_options)
    except ReproError as exc:
        expected = exc
    if isinstance(expected, ReproError):
        # The reference raised: every rewritten run must raise the same
        # error class (a rewrite that silences or changes an error is as
        # wrong as one that changes rows).
        expected_type = (DivisionByZeroError
                         if isinstance(expected, DivisionByZeroError)
                         else ReproError)
        for mode, options in configs:
            try:
                db.execute(sql, options=options)
            except expected_type:
                continue
            except ReproError as exc:
                return RuleDivergence(
                    rule, seed, sql, mode,
                    "reference raised %s but the rewritten run raised "
                    "%s: %s" % (type(expected).__name__,
                                type(exc).__name__, exc),
                    None, None, statements)
            except Exception as exc:  # bare exception = engine bug
                return RuleDivergence(
                    rule, seed, sql, mode,
                    "rewritten run raised untyped %s: %s"
                    % (type(exc).__name__, exc), None, None, statements)
            return RuleDivergence(
                rule, seed, sql, mode,
                "reference raised %s but the rewritten run returned rows"
                % type(expected).__name__, None, None, statements)
        return None
    expected_rows = expected.rows
    for mode, options in configs:
        try:
            result = db.execute(sql, options=options)
        except ReproError as exc:
            return RuleDivergence(
                rule, seed, sql, mode,
                "rewritten run raised %s: %s (reference returned %d "
                "row(s))" % (type(exc).__name__, exc, len(expected_rows)),
                expected_rows, None, statements)
        except Exception as exc:
            return RuleDivergence(
                rule, seed, sql, mode,
                "rewritten run raised untyped %s: %s"
                % (type(exc).__name__, exc), expected_rows, None,
                statements)
        if _bag(result.rows) != _bag(expected_rows):
            missing = _bag(expected_rows) - _bag(result.rows)
            extra = _bag(result.rows) - _bag(expected_rows)
            return RuleDivergence(
                rule, seed, sql, mode,
                "result bags differ: %d row(s) missing, %d spurious"
                % (sum(missing.values()), sum(extra.values())),
                expected_rows, result.rows, statements)
        if spec is not None and spec.order_by:
            positions = [pos for pos, _asc in spec.order_by]
            expected_keys = [tuple(row[pos] for pos in positions)
                             for row in expected_rows]
            actual_keys = [tuple(row[pos] for pos in positions)
                           for row in result.rows]
            if expected_keys != actual_keys:
                return RuleDivergence(
                    rule, seed, sql, mode,
                    "ORDER BY produced a different row order",
                    expected_rows, result.rows, statements)
    return None


def _firing_count(db: Database, sql: str,
                  options: CompileOptions, rule: str) -> int:
    compiled = db.compile(sql, options=options)
    report = compiled.rewrite_report
    return report.count(rule) if report is not None else 0


def _shrink(db: Database, divergence: RuleDivergence, spec: QuerySpec,
            rule: str, solo_options: CompileOptions,
            reference_options: CompileOptions,
            configs: Sequence[Tuple[str, CompileOptions]],
            statements: Sequence[str],
            max_steps: int = 60) -> RuleDivergence:
    """Greedy query-level shrink: keep a simplification only while the
    rule still fires on it and the divergence survives."""
    steps = 0
    changed = True
    while changed and steps < max_steps:
        changed = False
        for candidate in spec.simplifications():
            steps += 1
            if steps >= max_steps:
                break
            sql = candidate.render()
            try:
                if _firing_count(db, sql, solo_options, rule) == 0:
                    continue
                smaller = _compare(db, rule, divergence.seed, sql,
                                   candidate, reference_options, configs,
                                   statements)
            except (ReproError, RecursionError):
                continue
            if smaller is not None:
                divergence, spec = smaller, candidate
                changed = True
                break
    return divergence


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def check_rule(rule_name: str, seeds: int = 50, queries: int = 3,
               start_seed: int = 0,
               setup: Optional[Callable[[Database], None]] = None,
               include_templates: bool = True,
               extra_templates: Optional[
                   Sequence[Tuple[List[str], str]]] = None,
               shrink: bool = True,
               stop_on_divergence: bool = True) -> RuleCheckReport:
    """Verify one rule: forced-fire differential over ``seeds`` schemas.

    ``setup(db)`` runs on every database the harness builds — use it to
    register extension-API rules (or, in the mutation smoke test, to
    break a built-in one).  The report's :attr:`~RuleCheckReport.ok`
    requires at least one real firing to have been checked.
    """
    report = RuleCheckReport(rule_name)
    base = CompileOptions()
    solo = base.replace(rewrite_only_rules=(rule_name,), plan_cache=False,
                        label="only[%s]" % rule_name)
    combo = base.replace(plan_cache=False, label="all-rules")
    reference = base.replace(rewrite_enabled=False, plan_cache=False,
                             label="no-rewrite-ref")
    configs = (("solo", solo), ("combo", combo))
    bias = RULE_BIASES.get(rule_name)

    for index in range(seeds):
        seed = start_seed + index
        report.seeds += 1
        rng = random.Random(_rule_seed(rule_name, seed))
        schema = generate_schema(rng)
        db = build_database(schema)
        try:
            if setup is not None:
                setup(db)
            generator = QueryGenerator(rng, schema, bias=bias)
            statements = schema.statements()
            for _ in range(queries):
                spec = generator.generate()
                sql = spec.render()
                report.attempts += 1
                try:
                    fired = _firing_count(db, sql, solo, rule_name)
                except ReproError:
                    report.compile_errors += 1
                    continue
                if fired == 0:
                    continue
                report.fired_queries += 1
                divergence = _compare(db, rule_name, seed, sql, spec,
                                      reference, configs, statements)
                if divergence is not None:
                    if shrink:
                        divergence = _shrink(db, divergence, spec,
                                             rule_name, solo, reference,
                                             configs, statements)
                    if report.divergence is None:
                        report.divergence = divergence
                    if stop_on_divergence:
                        return report
        finally:
            db.close()

    templates: List[Tuple[List[str], str]] = []
    if include_templates:
        templates.extend(RULE_TEMPLATES.get(rule_name, []))
    if extra_templates:
        templates.extend(extra_templates)
    for statements, sql in templates:
        db = Database()
        try:
            db.enable_operation("left_outer_join")
            if setup is not None:
                setup(db)
            for statement in statements:
                db.execute(statement)
            db.analyze()
            try:
                fired = _firing_count(db, sql, solo, rule_name)
            except ReproError as exc:
                divergence = RuleDivergence(
                    rule_name, None, sql, "template",
                    "template failed to compile: %s" % exc, None, None,
                    statements)
                if report.divergence is None:
                    report.divergence = divergence
                if stop_on_divergence:
                    return report
                continue
            if fired == 0:
                # A template that stops firing is a rule-condition
                # regression even if answers stay right.
                divergence = RuleDivergence(
                    rule_name, None, sql, "template",
                    "pinned template no longer fires the rule",
                    None, None, statements)
                if report.divergence is None:
                    report.divergence = divergence
                if stop_on_divergence:
                    return report
                continue
            report.template_queries += 1
            divergence = _compare(db, rule_name, None, sql, None,
                                  reference, configs, statements)
            if divergence is not None:
                if report.divergence is None:
                    report.divergence = divergence
                if stop_on_divergence:
                    return report
        finally:
            db.close()
    return report


def registered_rules(setup: Optional[Callable[[Database], None]] = None
                     ) -> List[str]:
    """Names of every rule a fresh database registers (plus ``setup``'s)."""
    db = Database()
    try:
        if setup is not None:
            setup(db)
        return [rule.name for rule in db.rewrite_engine.all_rules()]
    finally:
        db.close()


def check_all(seeds: int = 50, queries: int = 3, start_seed: int = 0,
              rules: Optional[Sequence[str]] = None,
              setup: Optional[Callable[[Database], None]] = None,
              shrink: bool = True) -> List[RuleCheckReport]:
    """Run :func:`check_rule` for every registered (or named) rule."""
    names = list(rules) if rules is not None else registered_rules(setup)
    return [check_rule(name, seeds=seeds, queries=queries,
                       start_seed=start_seed, setup=setup, shrink=shrink)
            for name in names]
