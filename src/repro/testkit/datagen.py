"""Seed-driven schema and data generation for the differential harness.

Everything goes through the public :class:`repro.Database` API (DDL +
INSERT statements), so a generated catalog exercises the same code paths a
user would.  The generator deliberately produces *adversarial* data:

- tiny value domains, so joins hit, duplicates are frequent and set
  operations see skewed multiplicities,
- NULL-heavy nullable columns (SQL three-valued logic is where engines
  disagree),
- DOUBLE columns holding integral values (1.0 vs 1) so mixed
  INTEGER/DOUBLE comparisons and group keys are exercised,
- optional primary keys and secondary btree/hash indexes, so index scans
  and index-driven plans compete with table scans.

All randomness flows from one ``random.Random`` instance: the same seed
always yields the same schema, data and statement list.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

#: Value pools per column kind.  Small on purpose: collisions are the point.
INT_POOL = (0, 1, 2, 3, 4, -1)
FLOAT_POOL = (0.5, 1.0, 1.5, 2.0, 3.0, 4.0)
STR_POOL = ("ab", "abc", "b", "ba", "xy", "x")

#: SQL type per column kind.
SQL_TYPES = {"int": "INTEGER", "float": "DOUBLE", "str": "VARCHAR(8)"}


def render_literal(value) -> str:
    """One value as a Hydrogen literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        return "'%s'" % value.replace("'", "''")
    return repr(value)


class ColumnSpec:
    """One generated column."""

    def __init__(self, name: str, kind: str, nullable: bool = True,
                 primary_key: bool = False):
        self.name = name
        self.kind = kind  # 'int' | 'float' | 'str'
        self.nullable = nullable
        self.primary_key = primary_key

    def ddl(self) -> str:
        parts = [self.name, SQL_TYPES[self.kind]]
        if self.primary_key:
            parts.append("PRIMARY KEY")
        elif not self.nullable:
            parts.append("NOT NULL")
        return " ".join(parts)


class IndexSpec:
    def __init__(self, name: str, table: str, columns: Sequence[str],
                 kind: str = "btree"):
        self.name = name
        self.table = table
        self.columns = list(columns)
        self.kind = kind

    def ddl(self) -> str:
        return "CREATE %sINDEX %s ON %s (%s)" % (
            "", self.name, self.table, ", ".join(self.columns))


class TableSpec:
    """One generated table plus its rows."""

    def __init__(self, name: str, columns: List[ColumnSpec],
                 rows: List[Tuple], indexes: Optional[List[IndexSpec]] = None,
                 partition_by: Optional[str] = None, partitions: int = 0):
        self.name = name
        self.columns = columns
        self.rows = rows
        self.indexes = indexes or []
        self.partition_by = partition_by
        self.partitions = partitions

    def ddl(self) -> str:
        clause = ""
        if self.partition_by:
            clause = " PARTITION BY HASH(%s) PARTITIONS %d" % (
                self.partition_by, self.partitions)
        return "CREATE TABLE %s (%s)%s" % (
            self.name, ", ".join(c.ddl() for c in self.columns), clause)

    def insert_statements(self) -> List[str]:
        return ["INSERT INTO %s VALUES (%s)"
                % (self.name, ", ".join(render_literal(v) for v in row))
                for row in self.rows]

    def column_kinds(self) -> List[Tuple[str, str]]:
        return [(c.name, c.kind) for c in self.columns]

    def with_rows(self, rows: List[Tuple]) -> "TableSpec":
        return TableSpec(self.name, self.columns, list(rows), self.indexes,
                         self.partition_by, self.partitions)


class ViewSpec:
    """A generated view: a named projection/selection over one table."""

    def __init__(self, name: str, base_table: str, sql: str,
                 columns: List[Tuple[str, str]]):
        self.name = name
        self.base_table = base_table
        self.sql = sql  # full CREATE VIEW statement
        self.columns = columns  # (name, kind) of the view's output

    def column_kinds(self) -> List[Tuple[str, str]]:
        return list(self.columns)


class Relation:
    """What the query generator sees: a name plus typed columns."""

    def __init__(self, name: str, columns: List[Tuple[str, str]],
                 is_view: bool = False):
        self.name = name
        self.columns = columns
        self.is_view = is_view

    def columns_of_kind(self, kind: str) -> List[str]:
        return [name for name, k in self.columns if k == kind]


class SchemaSpec:
    """A whole generated catalog: tables, indexes, views, rows."""

    def __init__(self, tables: List[TableSpec],
                 views: Optional[List[ViewSpec]] = None):
        self.tables = tables
        self.views = views or []

    def relations(self) -> List[Relation]:
        rels = [Relation(t.name, t.column_kinds()) for t in self.tables]
        rels.extend(Relation(v.name, v.column_kinds(), is_view=True)
                    for v in self.views)
        return rels

    def table(self, name: str) -> TableSpec:
        for table in self.tables:
            if table.name == name:
                return table
        raise KeyError(name)

    def statements(self) -> List[str]:
        """Every statement needed to rebuild this catalog, in order."""
        out: List[str] = []
        for table in self.tables:
            out.append(table.ddl())
        for table in self.tables:
            for index in table.indexes:
                out.append(index.ddl())
        for table in self.tables:
            out.extend(table.insert_statements())
        for view in self.views:
            out.append(view.sql)
        return out

    def replace_table(self, table: TableSpec) -> "SchemaSpec":
        tables = [table if t.name == table.name else t for t in self.tables]
        return SchemaSpec(tables, self.views)

    def restrict_to(self, relation_names) -> "SchemaSpec":
        """Keep only the named relations (plus view base tables)."""
        needed = set(relation_names)
        for view in self.views:
            if view.name in needed:
                needed.add(view.base_table)
        tables = [t for t in self.tables if t.name in needed]
        views = [v for v in self.views if v.name in needed]
        if not tables:  # never produce an empty catalog
            tables = list(self.tables)
        return SchemaSpec(tables, views)

    def total_rows(self) -> int:
        return sum(len(t.rows) for t in self.tables)


def _random_value(rng: random.Random, kind: str, nullable: bool,
                  null_rate: float = 0.25):
    if nullable and rng.random() < null_rate:
        return None
    if kind == "int":
        return rng.choice(INT_POOL)
    if kind == "float":
        return rng.choice(FLOAT_POOL)
    return rng.choice(STR_POOL)


def generate_schema(rng: random.Random, min_tables: int = 2,
                    max_tables: int = 3, max_rows: int = 8,
                    with_views: bool = True) -> SchemaSpec:
    """One reproducible catalog drawn from ``rng``."""
    tables: List[TableSpec] = []
    table_count = rng.randint(min_tables, max_tables)
    for t in range(table_count):
        name = "t%d" % t
        columns: List[ColumnSpec] = []
        has_pk = rng.random() < 0.5
        if has_pk:
            columns.append(ColumnSpec("c0", "int", nullable=False,
                                      primary_key=True))
        # Always at least one plain INTEGER column so every table joins.
        columns.append(ColumnSpec("c%d" % len(columns), "int",
                                  nullable=rng.random() < 0.7))
        for _ in range(rng.randint(1, 3)):
            kind = rng.choice(("int", "float", "str"))
            columns.append(ColumnSpec("c%d" % len(columns), kind,
                                      nullable=rng.random() < 0.7))

        row_count = rng.randint(2, max_rows)
        rows: List[Tuple] = []
        for r in range(row_count):
            row = []
            for column in columns:
                if column.primary_key:
                    row.append(r)
                else:
                    row.append(_random_value(rng, column.kind,
                                             column.nullable))
            rows.append(tuple(row))

        indexes: List[IndexSpec] = []
        for i in range(rng.randint(0, 2)):
            column = rng.choice(columns)
            kind = rng.choice(("btree", "hash"))
            indexes.append(IndexSpec("ix_%s_%d" % (name, i), name,
                                     [column.name], kind))
        tables.append(TableSpec(name, columns, rows, indexes))

    views: List[ViewSpec] = []
    if with_views and rng.random() < 0.5:
        base = rng.choice(tables)
        picked = [c for c in base.columns if rng.random() < 0.7] or \
            base.columns[:1]
        where = ""
        int_columns = [c for c in picked if c.kind == "int"]
        if int_columns and rng.random() < 0.6:
            where = " WHERE %s <= %d" % (rng.choice(int_columns).name,
                                         rng.choice((1, 2, 3)))
        sql = "CREATE VIEW v0 AS SELECT %s FROM %s%s" % (
            ", ".join(c.name for c in picked), base.name, where)
        views.append(ViewSpec("v0", base.name, sql,
                              [(c.name, c.kind) for c in picked]))
    return SchemaSpec(tables, views)


def sharded_variant(schema: SchemaSpec, partitions: int = 3) -> SchemaSpec:
    """The same catalog with every eligible table hash-sharded.

    Each table that has an INTEGER column becomes ``PARTITION BY
    HASH(<first int column>) PARTITIONS <n>``; rows and indexes are
    unchanged.  Deterministic, so the differential shrinker can rebuild
    the twin database from any reduced schema.  Scan order over a
    sharded table is partition-grouped rather than insert order — the
    sharded configs therefore bag-compare against the oracle, and prove
    parallel-vs-serial byte-identity against a serial run on the *same*
    sharded twin.
    """
    tables = []
    for table in schema.tables:
        key = next((c.name for c in table.columns if c.kind == "int"),
                   None)
        if key is None:
            tables.append(table)
            continue
        tables.append(TableSpec(table.name, table.columns,
                                list(table.rows), table.indexes,
                                partition_by=key, partitions=partitions))
    return SchemaSpec(tables, schema.views)


def build_database(schema: SchemaSpec):
    """A fresh Database loaded with the generated catalog."""
    from repro import Database

    db = Database()
    db.enable_operation("left_outer_join")
    for statement in schema.statements():
        db.execute(statement)
    db.analyze()
    return db
