"""The differential runner: engine-vs-oracle under a configuration matrix.

One :func:`run_seed` call is the whole loop: seed → schema → data →
queries → for each query, execute it through the real pipeline under every
:class:`Config` in the matrix and through the naive oracle, and compare.

Comparison semantics:

- results are compared as *bags* (row multisets).  The comparison is
  type-aware — ``1`` (INTEGER) and ``1.0`` (DOUBLE) are different answers
  even though Python considers them equal — because compiled-vs-interpreted
  type drift is exactly the kind of bug this harness exists to catch,
- when the query has an ORDER BY, the sequence of values in the ordered
  positions must also match (ties may appear in any order, so only the
  ordered columns are sequence-compared),
- an engine error on a query the oracle answered is a divergence; an
  oracle error on a query the engine answered is too (oracle
  ``unsupported`` errors skip the query instead).

On a mismatch the shrinker walks :meth:`QuerySpec.simplifications` to a
fixpoint, then minimizes table data row-by-row and drops unreferenced
tables, keeping each candidate only if it still diverges.  The result is a
:class:`Divergence` whose :meth:`~Divergence.repro` is a ready-to-paste
failing pytest: seed, DDL + INSERTs, query, config, EXPLAIN output and
both result sets.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.options import CompileOptions
from repro.errors import DivisionByZeroError, ReproError
from repro.testkit.datagen import (SchemaSpec, build_database,
                                   generate_schema, sharded_variant)
from repro.testkit.oracle import OracleError, ReferenceOracle, sort_rows
from repro.testkit.querygen import QueryGenerator, QuerySpec


class Config:
    """One named point in the configuration matrix.

    ``repeat`` > 1 executes every query that many times through the
    shared database; executions after the first must be served from the
    plan cache (checked via the cache's hit counter).  With
    ``byte_identical`` the rows are additionally compared — in order —
    against a reference execution: a fresh ``plan_cache=False`` compile
    of the same options by default, or a run under ``reference`` options
    when given (the parallel configs reference the serial dop=1 plan,
    proving morsel-parallel execution is byte-identical to serial).
    """

    __slots__ = ("name", "options", "repeat", "byte_identical",
                 "reference", "sharded")

    def __init__(self, name: str, options: CompileOptions,
                 repeat: int = 1, byte_identical: bool = False,
                 reference: Optional[CompileOptions] = None,
                 sharded: bool = False):
        self.name = name
        self.options = options
        self.repeat = repeat
        self.byte_identical = byte_identical
        self.reference = reference
        #: Execute against the hash-sharded twin database (same rows,
        #: every eligible table PARTITION BY HASH) instead of the
        #: primary one.
        self.sharded = sharded


def default_matrix() -> List[Config]:
    """Every engine configuration a query must agree with the oracle on."""
    base = CompileOptions()
    return [
        Config("default", base),
        Config("no-rewrite", base.replace(rewrite_enabled=False)),
        Config("interpreted", base.replace(compile_expressions=False)),
        Config("no-rewrite-interpreted",
               base.replace(rewrite_enabled=False,
                            compile_expressions=False)),
        # Cost-driven rewrite search must compute the same bag of rows
        # as the sequential pass, but not necessarily in the same order:
        # when the optimizer proves a variant firing sequence strictly
        # cheaper the adopted plan can differ structurally (e.g. keep a
        # SUBQJOIN where the fixpoint merges the subquery into a join),
        # and without ORDER BY a different plan may emit rows in a
        # different order (seed 349 is the pinned counterexample).
        Config("rewrite-search", base.replace(rewrite_strategy="search")),
        Config("force-nl", base.replace(forced_join_method="nl")),
        Config("force-hash", base.replace(forced_join_method="hash")),
        Config("force-merge", base.replace(forced_join_method="merge")),
        Config("greedy", base.replace(join_enumeration="greedy")),
        Config("bushy-cartesian",
               base.replace(allow_bushy=True, allow_cartesian=True)),
        # Vectorized backend: a big batch (whole tables in one batch) and
        # batch_size=1 (every adapter/selection edge case, per row).
        Config("batch", base.replace(execution_mode="batch")),
        Config("batch-1", base.replace(execution_mode="batch",
                                       batch_size=1)),
        # Plan-cache serving path: run twice through the shared
        # database; the second execution must be a cache hit and must
        # return byte-for-byte what a cache-off compile returns.
        Config("plancache", base, repeat=2, byte_identical=True),
        # Auto-parameterized constants share one plan per query shape.
        Config("constparam",
               base.replace(constant_parameterization=True), repeat=2),
        # Morsel-parallel execution must be byte-identical — in row
        # order, not just as a bag — to the serial dop=1 run, both on
        # the tuple interpreter and combined with the batch backend.
        Config("parallel", base.replace(parallelism="on", dop=4),
               byte_identical=True, reference=base),
        Config("parallel-batch",
               base.replace(parallelism="on", dop=4,
                            execution_mode="batch"),
               byte_identical=True,
               reference=base.replace(execution_mode="batch")),
        # Observability must never change answers: run with per-operator
        # instrumentation on, over the heaviest config (parallel + batch,
        # so every wrapper including the worker-profile merge is live),
        # and require byte-identical rows vs the uninstrumented run.
        Config("analyze",
               base.replace(analyze=True, parallelism="on", dop=4,
                            execution_mode="batch"),
               byte_identical=True,
               reference=base.replace(parallelism="on", dop=4,
                                      execution_mode="batch")),
        # Pipeline-fusion codegen backend: fused regions must be
        # byte-identical — in row order — to the tuple interpreter, and
        # under the parallel glue to the serial compiled run.
        Config("compiled", base.replace(execution_mode="compiled"),
               byte_identical=True, reference=base),
        Config("compiled-parallel",
               base.replace(execution_mode="compiled",
                            parallelism="on", dop=4),
               byte_identical=True,
               reference=base.replace(execution_mode="compiled")),
        # Hash-sharded storage: same rows in partitioned heap segments.
        # Scan order is partition-grouped, so only the oracle bag (and
        # ORDER BY sequences) must match.  The parallel run uses dop=3
        # — the twin's partition count — so partition-wise joins and
        # group-bys run co-located where possible, and must be
        # byte-identical to a serial run on the same sharded twin.
        Config("sharded", base, sharded=True),
        Config("sharded-parallel",
               base.replace(parallelism="on", dop=3),
               byte_identical=True, reference=base, sharded=True),
    ]


def _canon(row: Sequence[Any]) -> Tuple:
    """A type-aware bag key: 1, 1.0 and TRUE are three different values."""
    out = []
    for value in row:
        if value is None:
            out.append(("null", None))
        elif isinstance(value, bool):
            out.append(("bool", value))
        elif isinstance(value, int):
            out.append(("int", value))
        elif isinstance(value, float):
            out.append(("float", value))
        else:
            out.append(("str", value))
    return tuple(out)


def _bag(rows: Sequence[Sequence[Any]]) -> Counter:
    return Counter(_canon(row) for row in rows)


def format_rows(rows: Sequence[Sequence[Any]], limit: int = 20) -> str:
    shown = [repr(tuple(row)) for row in list(rows)[:limit]]
    if len(rows) > limit:
        shown.append("... (%d rows total)" % len(rows))
    return "\n".join("    " + line for line in shown) or "    (no rows)"


class Divergence:
    """One confirmed engine/oracle disagreement, possibly shrunk."""

    def __init__(self, seed: int, schema: SchemaSpec, spec: QuerySpec,
                 config: Config, detail: str,
                 expected: Optional[List[Tuple]],
                 actual: Optional[List[Tuple]],
                 setup=None):
        self.seed = seed
        self.schema = schema
        self.spec = spec
        self.config = config
        self.detail = detail
        self.expected = expected
        self.actual = actual
        #: Optional database mutation hook (see DifferentialRunner); the
        #: shrinker re-applies it so injected bugs stay reproducible.
        self.setup = setup

    @property
    def sql(self) -> str:
        return self.spec.render()

    def summary(self) -> str:
        return "seed=%d config=%s: %s\n  query: %s" % (
            self.seed, self.config.name, self.detail, self.sql)

    def repro(self) -> str:
        """A ready-to-paste failing pytest function."""
        explain = ""
        try:
            db = build_database(self.schema)
            explain = db.explain(self.sql, options=self.config.options)
        except ReproError as exc:
            explain = "EXPLAIN failed: %s" % exc
        option_overrides = self._option_overrides()
        lines = [
            "# Differential harness counterexample (seed %d, config %s)."
            % (self.seed, self.config.name),
            "# %s" % self.detail,
            "# Reproduce the hunt with:"
            " PYTHONPATH=src python -m repro.testkit --seed %d" % self.seed,
            "def test_differential_seed_%d_%s():"
            % (self.seed, self.config.name.replace("-", "_")),
            "    from repro import CompileOptions, Database",
            "    db = Database()",
            "    db.enable_operation('left_outer_join')",
        ]
        for statement in self.schema.statements():
            lines.append("    db.execute(%r)" % statement)
        lines.append("    db.analyze()")
        lines.append("    options = CompileOptions(%s)" % option_overrides)
        lines.append("    result = db.execute(%r, options=options)"
                     % self.sql)
        expected = self.expected if self.expected is not None else []
        lines.append("    expected = %r" % [tuple(r) for r in expected])
        lines.append("    assert sorted(map(repr, result.rows)) == "
                     "sorted(map(repr, expected))")
        lines.append("")
        lines.append("# EXPLAIN under config %r:" % self.config.name)
        for explain_line in explain.splitlines():
            lines.append("#   " + explain_line)
        lines.append("# oracle (expected) rows:")
        lines.append("\n".join("#" + line
                               for line in format_rows(expected)
                               .splitlines()))
        lines.append("# engine (actual) rows:")
        actual = self.actual if self.actual is not None else []
        lines.append("\n".join("#" + line
                               for line in format_rows(actual)
                               .splitlines()))
        return "\n".join(lines)

    def _option_overrides(self) -> str:
        defaults = CompileOptions()
        parts = []
        for slot in CompileOptions.__slots__:
            if slot == "label":
                continue
            value = getattr(self.config.options, slot)
            if value != getattr(defaults, slot):
                parts.append("%s=%r" % (slot, value))
        return ", ".join(parts)


class DifferentialRunner:
    """Executes generated queries against one database + oracle pair."""

    def __init__(self, schema: SchemaSpec, seed: int,
                 configs: Optional[Sequence[Config]] = None,
                 setup=None):
        self.schema = schema
        self.seed = seed
        self.configs = list(configs) if configs is not None \
            else default_matrix()
        self.db = build_database(schema)
        #: ``setup(db)`` runs after every database build — the mutation
        #: smoke-check uses it to inject a deliberately broken rewrite
        #: rule and prove the harness catches it.
        self.setup = setup
        if setup is not None:
            setup(self.db)
        self.oracle = ReferenceOracle(self.db)
        #: Twin database with hash-sharded tables, built only when a
        #: config asks for it.
        self.sharded_db = None
        if any(config.sharded for config in self.configs):
            self.sharded_db = build_database(sharded_variant(schema))
            if setup is not None:
                setup(self.sharded_db)
        self.queries_checked = 0
        self.queries_skipped = 0

    def _db_for(self, config: Config):
        return self.sharded_db if config.sharded else self.db

    def close(self) -> None:
        self.db.close()
        if self.sharded_db is not None:
            self.sharded_db.close()

    def check_sql(self, spec: QuerySpec) -> Optional[Divergence]:
        """None when every config agrees with the oracle."""
        sql = spec.render()
        try:
            expected = self.oracle.execute(sql)
        except OracleError as exc:
            if exc.unsupported:
                self.queries_skipped += 1
                return None
            expected = exc
        except ReproError as exc:
            expected = exc
        if isinstance(expected, ReproError):
            # The oracle hit a genuine runtime error (e.g. a scalar
            # subquery with two rows): the engine must fail too.  Typed
            # error classes (division by zero) must match exactly —
            # "some error happened" would hide an engine that fails for
            # the wrong reason.
            expected_type = (DivisionByZeroError
                             if isinstance(expected, DivisionByZeroError)
                             else ReproError)
            for config in self.configs:
                # Repeated runs must fail identically: a cached plan
                # that errors differently from its cold compile is a
                # serving-path bug (no hit check here — error paths may
                # legitimately bail before reaching the cache).
                db = self._db_for(config)
                for attempt in range(config.repeat):
                    suffix = (" (on plan-cache re-execution)"
                              if attempt > 0 else "")
                    try:
                        db.execute(sql, options=config.options)
                    except expected_type:
                        continue
                    except ReproError as exc:
                        return Divergence(
                            self.seed, self.schema, spec, config,
                            "oracle raised %s but the engine raised %s: "
                            "%s%s"
                            % (type(expected).__name__,
                               type(exc).__name__, exc, suffix),
                            None, None, setup=self.setup)
                    except Exception as exc:  # bare exception = bug
                        return Divergence(
                            self.seed, self.schema, spec, config,
                            "engine raised untyped %s: %s%s"
                            % (type(exc).__name__, exc, suffix),
                            None, None, setup=self.setup)
                    return Divergence(
                        self.seed, self.schema, spec, config,
                        "oracle raised %s but the engine returned rows%s"
                        % (type(expected).__name__, suffix), None, None,
                        setup=self.setup)
            self.queries_checked += 1
            return None
        for config in self.configs:
            db = self._db_for(config)
            reference_rows = None
            if config.byte_identical:
                reference_options = (
                    config.reference if config.reference is not None
                    else config.options.replace(plan_cache=False))
                try:
                    reference_rows = db.execute(
                        sql, options=reference_options).rows
                except ReproError as exc:
                    return Divergence(
                        self.seed, self.schema, spec, config,
                        "reference execution raised %s: %s "
                        "(oracle returned %d rows)"
                        % (type(exc).__name__, exc, len(expected.rows)),
                        expected.rows, None, setup=self.setup)
            for attempt in range(config.repeat):
                cached_run = attempt > 0
                suffix = " (on plan-cache re-execution)" \
                    if cached_run else ""
                hits_before = db.plan_cache.hits
                try:
                    result = db.execute(sql, options=config.options)
                except ReproError as exc:
                    return Divergence(
                        self.seed, self.schema, spec, config,
                        "engine raised %s: %s (oracle returned %d "
                        "rows)%s" % (type(exc).__name__, exc,
                                     len(expected.rows), suffix),
                        expected.rows, None, setup=self.setup)
                except Exception as exc:  # bare exception = engine bug
                    return Divergence(
                        self.seed, self.schema, spec, config,
                        "engine raised untyped %s: %s (oracle returned "
                        "%d rows)%s" % (type(exc).__name__, exc,
                                        len(expected.rows), suffix),
                        expected.rows, None, setup=self.setup)
                if cached_run and db.plan_cache.hits <= hits_before:
                    return Divergence(
                        self.seed, self.schema, spec, config,
                        "repeated execution was not served from the "
                        "plan cache", expected.rows, result.rows,
                        setup=self.setup)
                mismatch = self._compare(expected, result.rows)
                if mismatch is not None:
                    return Divergence(
                        self.seed, self.schema, spec, config,
                        mismatch + suffix, expected.rows, result.rows,
                        setup=self.setup)
                if reference_rows is not None and \
                        [_canon(r) for r in result.rows] != \
                        [_canon(r) for r in reference_rows]:
                    return Divergence(
                        self.seed, self.schema, spec, config,
                        "rows are not byte-identical to the reference "
                        "execution%s" % suffix,
                        reference_rows, result.rows, setup=self.setup)
        self.queries_checked += 1
        return None

    @staticmethod
    def _compare(expected, actual_rows) -> Optional[str]:
        expected_bag = _bag(expected.rows)
        actual_bag = _bag(actual_rows)
        if expected_bag != actual_bag:
            missing = expected_bag - actual_bag
            extra = actual_bag - expected_bag
            return ("result bags differ: %d row(s) missing, %d spurious"
                    % (sum(missing.values()), sum(extra.values())))
        if expected.order_by:
            positions = [pos for pos, _asc in expected.order_by]
            expected_keys = [tuple(row[pos] for pos in positions)
                             for row in expected.rows]
            actual_keys = [tuple(row[pos] for pos in positions)
                           for row in actual_rows]
            if expected_keys != actual_keys:
                return "ORDER BY produced a different row order"
        return None


def run_seed(seed: int, queries: int = 4,
             configs: Optional[Sequence[Config]] = None,
             shrink: bool = True,
             setup=None) -> Tuple[Optional[Divergence], int, int, dict]:
    """Fuzz one seed.

    Returns ``(divergence-or-None, checked, skipped, cache_stats)``
    where ``cache_stats`` is the shared database's plan-cache totals
    after the run (hit/miss/invalidation counters).
    """
    rng = random.Random(seed)
    schema = generate_schema(rng)
    runner = DifferentialRunner(schema, seed, configs, setup=setup)
    generator = QueryGenerator(rng, schema)
    try:
        for _ in range(queries):
            spec = generator.generate()
            divergence = runner.check_sql(spec)
            if divergence is not None:
                if shrink:
                    divergence = shrink_case(divergence)
                return divergence, runner.queries_checked, \
                    runner.queries_skipped, runner.db.cache_stats()
        return None, runner.queries_checked, runner.queries_skipped, \
            runner.db.cache_stats()
    finally:
        # Release the parallel worker pools (if any config forked one);
        # a 500-seed sweep must not accumulate idle forked children.
        runner.close()


# -- shrinking ----------------------------------------------------------------------


def _diverges(schema: SchemaSpec, spec: QuerySpec, seed: int,
              configs: Sequence[Config],
              setup=None) -> Optional[Divergence]:
    """Re-runs one (schema, query) pair on a fresh database."""
    try:
        runner = DifferentialRunner(schema, seed, configs, setup=setup)
    except ReproError:
        return None  # candidate schema itself is broken; reject it
    try:
        return runner.check_sql(spec)
    except (ReproError, RecursionError):
        return None
    finally:
        runner.close()


def shrink_case(divergence: Divergence,
                max_steps: int = 400) -> Divergence:
    """Greedy fixpoint reduction of query, then data, then schema."""
    seed = divergence.seed
    configs = [divergence.config]
    setup = divergence.setup
    current = divergence
    steps = 0

    # 1. structurally shrink the query.
    changed = True
    while changed and steps < max_steps:
        changed = False
        for candidate in current.spec.simplifications():
            steps += 1
            if steps >= max_steps:
                break
            smaller = _diverges(current.schema, candidate, seed, configs,
                                setup=setup)
            if smaller is not None:
                current = smaller
                changed = True
                break

    # 2. drop unreferenced relations.
    referenced = current.spec.referenced_relations()
    restricted = current.schema.restrict_to(referenced)
    if len(restricted.tables) < len(current.schema.tables):
        smaller = _diverges(restricted, current.spec, seed, configs,
                            setup=setup)
        if smaller is not None:
            current = smaller

    # 3. remove table rows one at a time (greedy ddmin pass).
    for table in list(current.schema.tables):
        index = 0
        while index < len(current.schema.table(table.name).rows):
            if steps >= max_steps:
                break
            steps += 1
            live = current.schema.table(table.name)
            rows = live.rows[:index] + live.rows[index + 1:]
            candidate_schema = current.schema.replace_table(
                live.with_rows(rows))
            smaller = _diverges(candidate_schema, current.spec, seed,
                                configs, setup=setup)
            if smaller is not None:
                current = smaller
            else:
                index += 1
    return current
