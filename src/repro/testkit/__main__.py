"""CLI driver: ``python -m repro.testkit --seed N`` or ``--seeds A:B``.

Exit status is 0 when every checked seed agrees with the oracle, 1 when a
divergence was found (the shrunk reproduction is printed, and written to
``--output`` when given — CI uploads that file as the failure artifact).

``python -m repro.testkit rules`` runs the rulecheck harness instead:
every registered rewrite rule is forced-fire verified against the
no-rewrite reference over ``--seeds`` schemas (default 50) plus its
pinned templates.  Exit 1 on any divergence or any rule that was never
exercised.
"""

from __future__ import annotations

import argparse
import sys

from repro.testkit.differential import default_matrix, run_seed


def _parse_seed_range(text: str):
    if ":" in text:
        low, high = text.split(":", 1)
        return range(int(low), int(high))
    value = int(text)
    return range(value, value + 1)


def _rules_main(argv) -> int:
    from repro.testkit.rulecheck import check_rule, registered_rules

    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit rules",
        description="Forced-fire differential verification of every "
                    "registered rewrite rule.")
    parser.add_argument("--seeds", type=int, default=50,
                        help="schemas fuzzed per rule (default 50)")
    parser.add_argument("--queries", type=int, default=3,
                        help="queries generated per schema (default 3)")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule names (default: all)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report the first divergence unshrunk")
    parser.add_argument("--output", default=None,
                        help="also write the reproduction to this file")
    args = parser.parse_args(argv)

    names = (args.rules.split(",") if args.rules is not None
             else registered_rules())
    failed = False
    for name in names:
        report = check_rule(name, seeds=args.seeds, queries=args.queries,
                            shrink=not args.no_shrink)
        print(report.summary())
        if report.ok:
            continue
        failed = True
        if report.divergence is not None:
            repro = report.divergence.repro()
            print("DIVERGENCE %s" % report.divergence.summary())
            print()
            print(repro)
            if args.output:
                with open(args.output, "w") as handle:
                    handle.write(report.divergence.summary() + "\n\n"
                                 + repro + "\n")
        else:
            print("rule %s was never exercised: no generated query or "
                  "template fired it" % name)
    if not failed:
        print("all rules verified clean")
    return 1 if failed else 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "rules":
        return _rules_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit",
        description="Differential fuzzing of the query pipeline against "
                    "the naive reference oracle.  Subcommand 'rules' "
                    "runs per-rewrite-rule forced-fire verification.")
    parser.add_argument("--seed", type=int, default=None,
                        help="check exactly one seed")
    parser.add_argument("--seeds", type=_parse_seed_range, default=None,
                        metavar="A:B", help="check seeds A..B-1")
    parser.add_argument("--queries", type=int, default=4,
                        help="queries generated per seed (default 4)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report the first divergence unshrunk")
    parser.add_argument("--output", default=None,
                        help="also write the reproduction to this file")
    args = parser.parse_args(argv)

    if args.seed is not None and args.seeds is not None:
        parser.error("--seed and --seeds are mutually exclusive")
    seeds = args.seeds if args.seeds is not None else \
        _parse_seed_range(str(args.seed if args.seed is not None else 0))

    configs = default_matrix()
    total_checked = total_skipped = 0
    total_hits = total_misses = 0
    for seed in seeds:
        divergence, checked, skipped, cache_stats = run_seed(
            seed, queries=args.queries, configs=configs,
            shrink=not args.no_shrink)
        total_checked += checked
        total_skipped += skipped
        total_hits += cache_stats.get("hits", 0)
        total_misses += cache_stats.get("misses", 0)
        if divergence is not None:
            repro = divergence.repro()
            print("DIVERGENCE %s" % divergence.summary())
            print()
            print(repro)
            if args.output:
                with open(args.output, "w") as handle:
                    handle.write(divergence.summary() + "\n\n" + repro
                                 + "\n")
            return 1
        print("seed %d ok (%d queries x %d configs)"
              % (seed, checked, len(configs)))
    print("all seeds agree: %d queries checked, %d skipped, %d configs"
          % (total_checked, total_skipped, len(configs)))
    print("plan cache: %d hits, %d misses"
          % (total_hits, total_misses))
    return 0


if __name__ == "__main__":
    sys.exit(main())
