"""A deliberately naive reference interpreter for QGM.

The oracle runs the *translated* QGM directly: no rewrite rules, no
optimizer, no plan refinement, no expression compilation, no join
algorithms beyond nested loops.  Every box is evaluated by the textbook
definition of its operation — SELECT boxes enumerate the cross product of
their setformers and apply every predicate afterwards; set operations are
left-folded pairwise with exact bag semantics; GROUP BY materializes its
groups.  Its only shared machinery with the engine is the parser, the
translator, the catalog, the storage scan, and the function registry (the
DBC extension point — custom scalar/aggregate functions must mean the same
thing on both sides).

That independence is the point: when
:mod:`repro.testkit.differential` runs the same SQL through the real
pipeline under many configurations and through this interpreter, any
disagreement is a bug in the clever path, because this path has no clever
parts.

Performance is disregarded except for one concession, correlation
caching: an inner box's rows are memoized on the values of its free
(correlated) column references, which keeps nested-loop subquery
evaluation polynomial in practice on the tiny generated catalogs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import DivisionByZeroError, ReproError
from repro.language.parser import parse_statement
from repro.language.translator import translate
from repro.qgm import expressions as qe
from repro.qgm.model import (
    BaseTableBox,
    Box,
    ChooseBox,
    DistinctMode,
    GroupByBox,
    Quantifier,
    SelectBox,
    SetOpBox,
    TableFunctionBox,
)
from repro.qgm.validate import validate_qgm

Env = Dict[Quantifier, Optional[Tuple[Any, ...]]]

_SETFORMER_TYPES = ("F", "PF")


class OracleError(ReproError):
    """The oracle could not produce an answer.

    ``unsupported`` distinguishes "this query is outside the oracle's
    scope" (the differential runner skips it) from genuine runtime
    errors like a scalar subquery returning two rows (which the engine
    is expected to raise as well)."""

    def __init__(self, message: str, unsupported: bool = False):
        super().__init__(message)
        self.unsupported = unsupported


class _Desc:
    """Inverts comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Desc") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Desc) and other.value == self.value


def sort_rows(rows: List[Tuple[Any, ...]],
              positions: Sequence[Tuple[int, bool]]) -> List[Tuple[Any, ...]]:
    """Engine ordering semantics: NULLs sort last under ASC and DESC."""

    def key(row):
        parts = []
        for position, ascending in positions:
            value = row[position]
            null_rank = value is None
            filled = 0 if value is None else value
            parts.append((null_rank, filled if ascending else _Desc(filled)))
        return tuple(parts)

    return sorted(rows, key=key)


def combine_any(outcomes) -> Optional[bool]:
    saw_unknown = False
    for outcome in outcomes:
        if outcome is True:
            return True
        if outcome is None:
            saw_unknown = True
    return None if saw_unknown else False


def combine_all(outcomes) -> Optional[bool]:
    saw_unknown = False
    for outcome in outcomes:
        if outcome is False:
            return False
        if outcome is None:
            saw_unknown = True
    return None if saw_unknown else True


def _kleene_not(value: Optional[bool]) -> Optional[bool]:
    return None if value is None else (not value)


class OracleResult:
    """What the oracle says the query must return."""

    __slots__ = ("columns", "rows", "order_by")

    def __init__(self, columns: List[str], rows: List[Tuple[Any, ...]],
                 order_by: List[Tuple[int, bool]]):
        self.columns = columns
        #: order_by positions restricted to the visible prefix: these are
        #: the positions on which the produced order is actually
        #: constrained (and hence checkable).
        self.rows = rows
        self.order_by = order_by


class ReferenceOracle:
    """Evaluates Hydrogen SELECTs straight off the QGM."""

    def __init__(self, db):
        self.db = db
        self.functions = db.functions
        self._like_cache: Dict[str, Any] = {}
        self._free_refs: Dict[int, List[qe.ColRef]] = {}
        self._row_cache: Dict[Tuple, List[Tuple[Any, ...]]] = {}
        self._recursive_rows: Dict[Box, Set[Tuple[Any, ...]]] = {}

    # -- entry point ------------------------------------------------------------------

    def execute(self, sql: str) -> OracleResult:
        statement = parse_statement(sql)
        qgm = translate(statement, self.db)
        validate_qgm(qgm)
        self._free_refs.clear()
        self._row_cache.clear()
        self._recursive_rows.clear()
        rows = list(self._box_rows(qgm.root, {}))
        if qgm.order_by:
            rows = sort_rows(rows, qgm.order_by)
        if qgm.limit is not None:
            rows = rows[:qgm.limit]
        visible = qgm.visible_columns
        columns = qgm.root.head.column_names()
        if visible is not None:
            rows = [row[:visible] for row in rows]
            columns = columns[:visible]
            order_by = [(pos, asc) for pos, asc in qgm.order_by
                        if pos < visible]
        else:
            order_by = list(qgm.order_by)
        return OracleResult(columns, rows, order_by)

    # -- box evaluation ---------------------------------------------------------------

    def _box_rows(self, box: Box, env: Env) -> List[Tuple[Any, ...]]:
        active = self._recursive_rows.get(box)
        if active is not None:
            return list(active)
        cache_key = self._cache_key(box, env)
        if cache_key is not None:
            cached = self._row_cache.get(cache_key)
            if cached is not None:
                return cached
        if isinstance(box, BaseTableBox):
            rows = [row for _rid, row
                    in self.db.engine.scan(None, box.table.name)]
        elif isinstance(box, SetOpBox):
            rows = self._setop_rows(box, env)
        elif isinstance(box, GroupByBox):
            rows = self._groupby_rows(box, env)
        elif isinstance(box, ChooseBox):
            if not box.quantifiers:
                raise OracleError("CHOOSE box has no alternatives",
                                  unsupported=True)
            rows = self._box_rows(box.quantifiers[0].input, env)
        elif isinstance(box, TableFunctionBox):
            rows = self._table_function_rows(box, env)
        elif isinstance(box, SelectBox):
            if box.annotations.get("operation") == "left_outer_join":
                rows = self._outer_join_rows(box, env)
            else:
                rows = self._select_rows(box, env)
        else:
            raise OracleError("oracle cannot evaluate %s box"
                              % type(box).__name__, unsupported=True)
        if cache_key is not None:
            self._row_cache[cache_key] = rows
        return rows

    def _cache_key(self, box: Box, env: Env) -> Optional[Tuple]:
        if self._recursive_rows:
            return None  # fixpoint in progress: rows are not stable yet
        try:
            values = tuple(
                (ref.quantifier.uid,
                 self._eval_colref(ref, env))
                for ref in self._free_colrefs(box))
            return (id(box),) + values
        except (TypeError, ReproError):
            return None

    def _free_colrefs(self, box: Box) -> List[qe.ColRef]:
        """Column references escaping ``box``'s subtree (its correlation)."""
        found = self._free_refs.get(id(box))
        if found is not None:
            return found
        local: Set[Quantifier] = set()
        refs: Dict[Tuple[int, str], qe.ColRef] = {}
        seen: Set[int] = set()

        def visit(node: Box) -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            exprs: List[qe.QExpr] = [
                c.expr for c in node.head.columns if c.expr is not None]
            exprs.extend(p.expr for p in node.predicates)
            if isinstance(node, GroupByBox):
                exprs.extend(node.group_keys)
            for quantifier in node.quantifiers:
                local.add(quantifier)
                visit(quantifier.input)
            for expr in exprs:
                for sub in qe.walk(expr):
                    if isinstance(sub, qe.ColRef):
                        refs.setdefault((sub.quantifier.uid, sub.column),
                                        sub)

        visit(box)
        found = [ref for ref in refs.values()
                 if ref.quantifier not in local]
        found.sort(key=lambda ref: (ref.quantifier.uid, ref.column))
        self._free_refs[id(box)] = found
        return found

    def _select_rows(self, box: SelectBox, env: Env) -> List[Tuple[Any, ...]]:
        setformers = [q for q in box.quantifiers
                      if q.qtype in _SETFORMER_TYPES]
        # Plain predicates first, subquery-referencing ones last: this is
        # the engine's evaluation order (pushdown runs cheap filters before
        # subquery machinery), so both sides skip subqueries — and any
        # errors inside them — for the same rows.
        plain = [p.expr for p in box.predicates
                 if all(q.qtype in _SETFORMER_TYPES
                        for q in p.quantifiers())]
        with_subquery = [p.expr for p in box.predicates
                         if any(q.qtype not in _SETFORMER_TYPES
                                for q in p.quantifiers())]
        predicates = plain + with_subquery
        out: List[Tuple[Any, ...]] = []

        def bind(index: int, bound: Env) -> None:
            if index == len(setformers):
                if all(self._eval_bool(pred, bound) is True
                       for pred in predicates):
                    out.append(self._head_row(box, bound))
                return
            quantifier = setformers[index]
            for row in self._box_rows(quantifier.input, bound):
                inner = dict(bound)
                inner[quantifier] = row
                bind(index + 1, inner)

        bind(0, dict(env))
        return self._finish(box, out)

    def _outer_join_rows(self, box: SelectBox,
                         env: Env) -> List[Tuple[Any, ...]]:
        preserved = [q for q in box.quantifiers if q.qtype == "PF"]
        regular = [q for q in box.quantifiers if q.qtype == "F"]
        if len(preserved) != 1 or len(regular) != 1:
            raise OracleError("outer-join box must have one PF and one F "
                              "iterator", unsupported=True)
        outer_q, inner_q = preserved[0], regular[0]
        # The engine applies subquery-referencing predicates *after* the
        # join (including to NULL-padded rows); only plain predicates
        # decide whether a preserved row found a match.
        join_preds: List[qe.QExpr] = []
        post_preds: List[qe.QExpr] = []
        for predicate in box.predicates:
            has_subquery = any(q.qtype not in _SETFORMER_TYPES
                               for q in predicate.quantifiers())
            (post_preds if has_subquery else join_preds).append(
                predicate.expr)
        out: List[Tuple[Any, ...]] = []
        for outer_row in self._box_rows(outer_q.input, env):
            bound = dict(env)
            bound[outer_q] = outer_row
            inner_rows = self._box_rows(inner_q.input, bound)
            matched = False
            for inner_row in inner_rows:
                both = dict(bound)
                both[inner_q] = inner_row
                if all(self._eval_bool(pred, both) is True
                       for pred in join_preds):
                    matched = True
                    if all(self._eval_bool(pred, both) is True
                           for pred in post_preds):
                        out.append(self._head_row(box, both))
            if not matched:
                padded = dict(bound)
                padded[inner_q] = None
                if all(self._eval_bool(pred, padded) is True
                       for pred in post_preds):
                    out.append(self._head_row(box, padded))
        return self._finish(box, out)

    def _groupby_rows(self, box: GroupByBox,
                      env: Env) -> List[Tuple[Any, ...]]:
        quantifier = box.input_quantifier
        groups: Dict[Tuple, List[Env]] = {}
        order: List[Tuple] = []
        for row in self._box_rows(quantifier.input, env):
            bound = dict(env)
            bound[quantifier] = row
            key = tuple(self._eval(expr, bound) for expr in box.group_keys)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                order.append(key)
            bucket.append(bound)
        if not groups and not box.group_keys:
            empty = dict(env)
            empty[quantifier] = None
            row = tuple(
                self._aggregate(column.expr, [])
                if isinstance(column.expr, qe.AggCall)
                else None
                for column in box.head.columns)
            return self._finish(box, [row])
        out: List[Tuple[Any, ...]] = []
        for key in order:
            bucket = groups[key]
            values: List[Any] = []
            for column in box.head.columns:
                if isinstance(column.expr, qe.AggCall):
                    values.append(self._aggregate(column.expr, bucket))
                else:
                    values.append(self._eval(column.expr, bucket[0]))
            out.append(tuple(values))
        return self._finish(box, out)

    def _aggregate(self, agg: qe.AggCall, envs: List[Env]) -> Any:
        function = self.functions.aggregate(agg.name)
        if function is None:
            raise OracleError("unknown aggregate %s" % agg.name,
                              unsupported=True)
        accumulator = function.factory()
        seen: Set[Any] = set()
        for bound in envs:
            if agg.arg is None:
                value: Any = 1  # COUNT(*)
            else:
                value = self._eval(agg.arg, bound)
                if value is None and not function.handles_null:
                    continue
            if agg.distinct:
                if value in seen:
                    continue
                seen.add(value)
            accumulator.step(value)
        return accumulator.final()

    def _table_function_rows(self, box: TableFunctionBox,
                             env: Env) -> List[Tuple[Any, ...]]:
        """Evaluate a table function the same way the executor does:
        scalar args against the environment, each input quantifier
        materialized, output arity checked against the box head."""
        function = self.functions.table_function(box.function_name)
        if function is None:
            raise OracleError(
                "unknown table function %s" % box.function_name)
        args = [self._eval(a, env) for a in box.scalar_args]
        inputs = []
        for quantifier in box.quantifiers:
            head = quantifier.input.head
            inputs.append((head.column_names(),
                           [c.dtype for c in head.columns],
                           self._box_rows(quantifier.input, env)))
        try:
            _names, _types, rows = function.invoke(args, inputs)
        except ReproError:
            raise
        except Exception as exc:
            raise OracleError(
                "table function %s failed: %s"
                % (box.function_name, exc))
        arity = len(box.head.columns)
        out = []
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise OracleError(
                    "table function %s produced a %d-column row, "
                    "expected %d" % (box.function_name, len(row), arity))
            out.append(row)
        return out

    def _setop_rows(self, box: SetOpBox, env: Env) -> List[Tuple[Any, ...]]:
        if box.is_recursive:
            return self._recursive_setop_rows(box, env)
        children = [self._box_rows(q.input, env) for q in box.quantifiers]
        result = list(children[0])
        for right in children[1:]:
            result = _fold_setop(box.op, box.all_rows, result, right)
        if not box.all_rows:
            result = _dedupe(result)
        return self._finish(box, result)

    def _recursive_setop_rows(self, box: SetOpBox,
                              env: Env) -> List[Tuple[Any, ...]]:
        base: List[Quantifier] = []
        recursive: List[Quantifier] = []
        for quantifier in box.quantifiers:
            if _references_box(quantifier.input, box):
                recursive.append(quantifier)
            else:
                base.append(quantifier)
        total: Set[Tuple[Any, ...]] = set()
        ordered: List[Tuple[Any, ...]] = []
        for quantifier in base:
            for row in self._box_rows(quantifier.input, env):
                if row not in total:
                    total.add(row)
                    ordered.append(row)
        iterations = 0
        while True:
            iterations += 1
            if iterations > 10_000:
                raise OracleError("recursive query did not reach a "
                                  "fixpoint")
            self._recursive_rows[box] = set(total)
            grew = False
            for quantifier in recursive:
                for row in self._box_rows(quantifier.input, env):
                    if row not in total:
                        total.add(row)
                        ordered.append(row)
                        grew = True
            if not grew:
                break
        self._recursive_rows.pop(box, None)
        return self._finish(box, ordered)

    def _finish(self, box: Box, rows: List[Tuple[Any, ...]]
                ) -> List[Tuple[Any, ...]]:
        if box.head.distinct is DistinctMode.ENFORCE:
            return _dedupe(rows)
        return rows

    def _head_row(self, box: Box, env: Env) -> Tuple[Any, ...]:
        return tuple(self._head_value(column.expr, env)
                     for column in box.head.columns)

    def _head_value(self, expr: Optional[qe.QExpr], env: Env) -> Any:
        if expr is None:
            raise OracleError("head column without an expression",
                              unsupported=True)
        if any(q.qtype not in _SETFORMER_TYPES and q.qtype != "S"
               and q not in env
               for q in qe.quantifiers_in(expr)):
            return self._eval_bool(expr, env)
        return self._eval(expr, env)

    # -- expression evaluation --------------------------------------------------------

    def _eval_bool(self, expr: qe.QExpr, env: Env) -> Optional[bool]:
        if isinstance(expr, qe.BinOp) and expr.op in ("and", "or"):
            # Short-circuit exactly like the engine: the right arm (often
            # a subquery) is not evaluated when the left arm decides, so
            # neither side observes errors the other would skip.
            left = self._eval_bool(expr.left, env)
            if expr.op == "and":
                if left is False:
                    return False
                right = self._eval_bool(expr.right, env)
                if right is False:
                    return False
                if left is None or right is None:
                    return None
                return True
            if left is True:
                return True
            right = self._eval_bool(expr.right, env)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        if isinstance(expr, qe.Not):
            return _kleene_not(self._eval_bool(expr.operand, env))
        unbound = sorted(
            (q for q in qe.quantifiers_in(expr)
             if q.qtype not in _SETFORMER_TYPES and q.qtype != "S"
             and q not in env),
            key=lambda q: q.uid)
        if unbound:
            quantifier = unbound[0]
            rows = self._box_rows(quantifier.input, env)

            def outcomes():
                for row in rows:
                    inner = dict(env)
                    inner[quantifier] = row
                    yield self._eval_bool(expr, inner)

            return self._combine(quantifier, outcomes())
        value = self._eval(expr, env)
        if value is None or isinstance(value, bool):
            return value
        raise OracleError("predicate produced non-boolean %r" % (value,))

    def _combine(self, quantifier: Quantifier, outcomes) -> Optional[bool]:
        qtype = quantifier.qtype
        if qtype == "E":
            return combine_any(outcomes)
        if qtype == "A":
            return combine_all(outcomes)
        if qtype == "NE":
            return _kleene_not(combine_any(outcomes))
        function = self.functions.set_predicate_for_qtype(qtype)
        if function is not None:
            return function.combine(outcomes)
        raise OracleError("no combinator for iterator type %s" % qtype,
                          unsupported=True)

    def _eval(self, expr: qe.QExpr, env: Env) -> Any:
        if isinstance(expr, qe.Const):
            return expr.value
        if isinstance(expr, qe.ColRef):
            return self._eval_colref(expr, env)
        if isinstance(expr, qe.BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, qe.Not):
            return _kleene_not(self._eval_bool(expr.operand, env))
        if isinstance(expr, qe.Neg):
            value = self._eval(expr.operand, env)
            return None if value is None else -value
        if isinstance(expr, qe.IsNullTest):
            is_null = self._eval(expr.operand, env) is None
            return (not is_null) if expr.negated else is_null
        if isinstance(expr, qe.LikeOp):
            return self._eval_like(expr, env)
        if isinstance(expr, qe.FuncCall):
            function = self.functions.scalar(expr.name)
            if function is None:
                raise OracleError("unknown function %s" % expr.name,
                                  unsupported=True)
            args = [self._eval(a, env) for a in expr.args]
            return function.invoke(args)
        if isinstance(expr, qe.CaseOp):
            for condition, value in expr.whens:
                if self._eval_bool(condition, env) is True:
                    return self._eval(value, env)
            if expr.else_value is not None:
                return self._eval(expr.else_value, env)
            return None
        if isinstance(expr, qe.Cast):
            return self._eval_cast(expr, env)
        if isinstance(expr, qe.ExistsTest):
            if expr.quantifier in env:
                return True
            return self._eval_bool(expr, env)
        if isinstance(expr, qe.ParamRef):
            raise OracleError("parameter markers are outside the oracle",
                              unsupported=True)
        if isinstance(expr, qe.AggCall):
            raise OracleError("aggregate %s outside GROUP BY" % expr.name)
        raise OracleError("oracle cannot evaluate %s"
                          % type(expr).__name__, unsupported=True)

    def _eval_colref(self, expr: qe.ColRef, env: Env) -> Any:
        quantifier = expr.quantifier
        if quantifier in env:
            row = env[quantifier]
            if row is None:
                return None  # NULL-padded outer-join row
            return row[quantifier.input.head.index_of(expr.column)]
        if quantifier.qtype == "S":
            rows = self._box_rows(quantifier.input, env)
            if len(rows) > 1:
                raise OracleError("scalar subquery returned %d rows"
                                  % len(rows))
            if not rows:
                return None
            return rows[0][quantifier.input.head.index_of(expr.column)]
        raise OracleError("unbound iterator %s in expression"
                          % quantifier.name)

    def _eval_binop(self, expr: qe.BinOp, env: Env) -> Any:
        op = expr.op
        if op in ("and", "or"):
            return self._eval_bool(expr, env)
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        if left is None or right is None:
            return None
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise DivisionByZeroError("division by zero")
            return left / right
        if op == "%":
            if right == 0:
                raise DivisionByZeroError("division by zero")
            return left % right
        if op == "||":
            return str(left) + str(right)
        raise OracleError("unknown operator %s" % op, unsupported=True)

    def _eval_like(self, expr: qe.LikeOp, env: Env) -> Optional[bool]:
        import re

        value = self._eval(expr.operand, env)
        pattern = self._eval(expr.pattern, env)
        if value is None or pattern is None:
            return None
        compiled = self._like_cache.get(pattern)
        if compiled is None:
            parts = []
            for ch in pattern:
                if ch == "%":
                    parts.append(".*")
                elif ch == "_":
                    parts.append(".")
                else:
                    parts.append(re.escape(ch))
            compiled = re.compile("^" + "".join(parts) + "$", re.DOTALL)
            self._like_cache[pattern] = compiled
        matched = compiled.match(value) is not None
        return (not matched) if expr.negated else matched

    def _eval_cast(self, expr: qe.Cast, env: Env) -> Any:
        value = self._eval(expr.operand, env)
        if value is None:
            return None
        target = expr.dtype.name
        try:
            if target == "INTEGER":
                return int(value)
            if target == "DOUBLE":
                return float(value)
            if target == "VARCHAR":
                return str(value)
            if target == "BOOLEAN":
                return bool(value)
        except (TypeError, ValueError) as exc:
            raise OracleError("bad cast: %s" % exc)
        if expr.dtype.validate(value):
            return value
        raise OracleError("cannot cast %r to %s" % (value, target))


def _dedupe(rows: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
    seen: Set[Tuple[Any, ...]] = set()
    out: List[Tuple[Any, ...]] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


def _fold_setop(op: str, all_rows: bool, left: List[Tuple[Any, ...]],
                right: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
    """One pairwise step of a left-associated set-operation chain, with
    textbook bag semantics for the ALL variants."""
    from collections import Counter

    if op == "union":
        return left + right
    counts = Counter(right)
    if op == "intersect":
        if all_rows:
            budget = Counter(counts)
            out = []
            for row in left:
                if budget[row] > 0:
                    budget[row] -= 1
                    out.append(row)
            return out
        return [row for row in _dedupe(left) if counts[row] > 0]
    if op == "except":
        if all_rows:
            budget = Counter(counts)
            out = []
            for row in left:
                if budget[row] > 0:
                    budget[row] -= 1
                else:
                    out.append(row)
            return out
        return [row for row in _dedupe(left) if counts[row] == 0]
    raise OracleError("unknown set operation %s" % op, unsupported=True)


def _references_box(start: Box, target: Box) -> bool:
    seen: Set[int] = set()

    def visit(node: Box) -> bool:
        if id(node) in seen:
            return False
        seen.add(id(node))
        for quantifier in node.quantifiers:
            if quantifier.input is target:
                return True
            if visit(quantifier.input):
                return True
        return False

    return visit(start)
