"""Random Hydrogen query generation.

A :class:`QuerySpec` is a structured description of one SELECT statement —
select list, source chain, predicates, grouping, set operation, ordering —
that knows how to ``render()`` itself to SQL and, crucially, how to
*simplify* itself: :meth:`QuerySpec.simplifications` yields structurally
smaller variants, which is what the shrinker in
:mod:`repro.testkit.differential` walks to reduce a failing query to a
minimal reproduction.

:class:`QueryGenerator` draws specs from a ``random.Random``; the same
(seed, schema) pair always produces the same query sequence.  Coverage is
deliberately aimed at the engine's treacherous corners: NULL-laden
three-valued predicates, LEFT OUTER JOIN, correlated EXISTS / IN / scalar
subqueries, quantified comparisons, GROUP BY + aggregates, UNION /
INTERSECT / EXCEPT with and without ALL, positional ORDER BY and LIMIT.

Division and modulo ARE generated (zero divisors included): both engine
and oracle raise the typed :class:`~repro.errors.DivisionByZeroError`, so
the harness checks error class equivalence, not just row equivalence.
One deliberate omission keeps every generated query deterministic: LIMIT
only appears under an ORDER BY that covers *every* output column
(otherwise the set of surviving rows is implementation-defined).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.testkit.datagen import Relation, SchemaSpec

NUMERIC = ("int", "float")

_CONST_BY_KIND = {
    "int": ("0", "1", "2", "3", "-1"),
    "float": ("0.5", "1.0", "2.0", "3.5"),
    "str": ("'ab'", "'b'", "'xy'", "'zz'"),
}

_LIKE_PATTERNS = ("'a%'", "'%b'", "'%b%'", "'ab'", "'_b'", "'x_'")


def _fallback_const(kind: str) -> str:
    return _CONST_BY_KIND[kind][0]


class GenBias:
    """Tunable probabilities for :class:`QueryGenerator`.

    The defaults are exactly the generator's historical constants, so a
    default-constructed bias changes nothing — same (seed, schema) pair,
    same query stream.  The rulecheck harness passes skewed biases to
    steer generation toward QGM shapes a particular rewrite rule's
    condition can match (more subqueries for subquery_to_join, more
    joins for predicate_transitivity, ...).
    """

    __slots__ = ("single_source", "left_join", "join_pred", "subquery",
                 "grouped", "distinct", "setop", "sub_correlated",
                 "sub_distinct")

    def __init__(self, single_source: float = 0.35,
                 left_join: float = 0.35,
                 join_pred: float = 0.85,
                 subquery: float = 0.30,
                 grouped: float = 0.3,
                 distinct: float = 0.2,
                 setop: float = 0.25,
                 sub_correlated: float = 0.6,
                 sub_distinct: float = 0.2):
        self.single_source = single_source
        self.left_join = left_join
        self.join_pred = join_pred
        self.subquery = subquery
        self.grouped = grouped
        self.distinct = distinct
        self.setop = setop
        self.sub_correlated = sub_correlated
        self.sub_distinct = sub_distinct


class SelectItem:
    """One select-list entry: SQL text plus its output kind."""

    __slots__ = ("sql", "kind", "aliases", "is_agg", "arg")

    def __init__(self, sql: str, kind: str, aliases: Set[str],
                 is_agg: bool = False,
                 arg: Optional[Tuple[str, str, Set[str]]] = None):
        self.sql = sql
        self.kind = kind
        self.aliases = set(aliases)
        self.is_agg = is_agg
        self.arg = arg  # (sql, kind, aliases) of the aggregate argument

    def degrouped(self) -> "SelectItem":
        """This item with the aggregate peeled off (for the shrinker)."""
        if not self.is_agg:
            return self
        if self.arg is not None:
            sql, kind, aliases = self.arg
            return SelectItem(sql, kind, aliases)
        return SelectItem("1", "int", set())


class Pred:
    """One WHERE/HAVING/ON conjunct.

    ``template`` is the SQL text; when ``sub`` is set it contains a
    ``{sub}`` placeholder filled with the subquery's rendering, so the
    shrinker can swap in simplified subqueries without re-parsing text.
    ``aliases`` lists every source alias the predicate touches, including
    correlated references from inside the subquery.
    """

    __slots__ = ("template", "aliases", "sub")

    def __init__(self, template: str, aliases: Set[str],
                 sub: Optional["QuerySpec"] = None):
        self.template = template
        self.aliases = set(aliases)
        self.sub = sub

    def render(self) -> str:
        if self.sub is not None:
            return self.template.format(sub=self.sub.render(top=False))
        return self.template

    def with_sub(self, sub: "QuerySpec") -> "Pred":
        return Pred(self.template, self.aliases, sub)


class Source:
    """One FROM entry.  ``left_join`` sources chain onto the previous
    source with ``LEFT OUTER JOIN ... ON on``; others are comma-listed."""

    __slots__ = ("relation", "alias", "columns", "left_join", "on")

    def __init__(self, relation: str, alias: str,
                 columns: Sequence[Tuple[str, str]],
                 left_join: bool = False, on: Optional[Pred] = None):
        self.relation = relation
        self.alias = alias
        self.columns = list(columns)
        self.left_join = left_join
        self.on = on

    def columns_of_kind(self, kind: str) -> List[str]:
        return [name for name, k in self.columns if k == kind]

    def numeric_columns(self) -> List[Tuple[str, str]]:
        return [(name, k) for name, k in self.columns if k in NUMERIC]


class QuerySpec:
    """A structured SELECT, renderable and shrinkable."""

    def __init__(self, items: List[SelectItem], sources: List[Source],
                 where: Optional[List[Pred]] = None, distinct: bool = False,
                 group_by: Optional[List[SelectItem]] = None,
                 having: Optional[List[Pred]] = None,
                 setop: Optional[Tuple[str, bool, "QuerySpec"]] = None,
                 order_by: Optional[List[Tuple[int, bool]]] = None,
                 limit: Optional[int] = None):
        self.items = items
        self.sources = sources
        self.where = where or []
        self.distinct = distinct
        self.group_by = group_by or []
        self.having = having or []
        self.setop = setop  # (op, all_rows, right)
        self.order_by = order_by or []
        self.limit = limit

    # -- rendering --------------------------------------------------------------------

    def render(self, top: bool = True) -> str:
        parts = ["SELECT "]
        if self.distinct:
            parts.append("DISTINCT ")
        rendered_items = []
        for position, item in enumerate(self.items):
            if top:
                rendered_items.append("%s AS c%d" % (item.sql, position))
            else:
                rendered_items.append(item.sql)
        parts.append(", ".join(rendered_items))
        parts.append(" FROM ")
        chunks: List[str] = []
        for source in self.sources:
            ref = "%s %s" % (source.relation, source.alias)
            if source.left_join and chunks:
                on_sql = source.on.render() if source.on else "1 = 1"
                chunks[-1] += " LEFT OUTER JOIN %s ON %s" % (ref, on_sql)
            else:
                chunks.append(ref)
        parts.append(", ".join(chunks))
        if self.where:
            parts.append(" WHERE ")
            parts.append(" AND ".join("(%s)" % p.render()
                                      for p in self.where))
        if self.group_by:
            parts.append(" GROUP BY ")
            parts.append(", ".join(key.sql for key in self.group_by))
        if self.having:
            parts.append(" HAVING ")
            parts.append(" AND ".join("(%s)" % p.render()
                                      for p in self.having))
        if self.setop is not None:
            op, all_rows, right = self.setop
            parts.append(" %s%s %s" % (op.upper(),
                                       " ALL" if all_rows else "",
                                       right.render(top=False)))
        if self.order_by:
            parts.append(" ORDER BY ")
            parts.append(", ".join("%d %s" % (pos + 1,
                                              "ASC" if asc else "DESC")
                                   for pos, asc in self.order_by))
        if self.limit is not None:
            parts.append(" LIMIT %d" % self.limit)
        return "".join(parts)

    # -- introspection ----------------------------------------------------------------

    def referenced_relations(self) -> Set[str]:
        names = {source.relation for source in self.sources}
        for pred in self.where + self.having:
            if pred.sub is not None:
                names |= pred.sub.referenced_relations()
        for source in self.sources:
            if source.on is not None and source.on.sub is not None:
                names |= source.on.sub.referenced_relations()
        if self.setop is not None:
            names |= self.setop[2].referenced_relations()
        return names

    def kinds(self) -> List[str]:
        return [item.kind for item in self.items]

    def _copy(self, **overrides) -> "QuerySpec":
        fields = dict(items=self.items, sources=self.sources,
                      where=self.where, distinct=self.distinct,
                      group_by=self.group_by, having=self.having,
                      setop=self.setop, order_by=self.order_by,
                      limit=self.limit)
        fields.update(overrides)
        return QuerySpec(**fields)

    # -- shrinking --------------------------------------------------------------------

    def simplifications(self) -> Iterator["QuerySpec"]:
        """Structurally smaller variants of this query, most aggressive
        first.  Every yielded spec renders to valid Hydrogen on its own;
        the shrinker keeps a variant only if it still reproduces the
        divergence."""
        if self.setop is not None:
            yield self._copy(setop=None)
        for index in range(1, len(self.sources)):
            dropped = self._drop_source(index)
            if dropped is not None:
                yield dropped
        for index in range(len(self.where)):
            yield self._copy(where=self.where[:index]
                             + self.where[index + 1:])
        for index, pred in enumerate(self.where):
            if pred.sub is None:
                continue
            for smaller in pred.sub.simplifications():
                replaced = list(self.where)
                replaced[index] = pred.with_sub(smaller)
                yield self._copy(where=replaced)
        if self.group_by:
            yield self._copy(items=[item.degrouped()
                                    for item in self.items],
                             group_by=[], having=[])
        for index in range(len(self.having)):
            yield self._copy(having=self.having[:index]
                             + self.having[index + 1:])
        if self.setop is not None:
            for smaller in self.setop[2].simplifications():
                if smaller.kinds() == self.setop[2].kinds():
                    yield self._copy(setop=(self.setop[0], self.setop[1],
                                            smaller))
        if self.limit is not None:
            yield self._copy(limit=None)
        if self.order_by:
            yield self._copy(order_by=[], limit=None)
        if self.distinct:
            yield self._copy(distinct=False)
        if len(self.items) > 1 and self.setop is None:
            for index in range(len(self.items)):
                yield self._drop_item(index)

    def _drop_item(self, index: int) -> "QuerySpec":
        items = self.items[:index] + self.items[index + 1:]
        order_by = []
        for pos, asc in self.order_by:
            if pos == index:
                continue
            order_by.append((pos - 1 if pos > index else pos, asc))
        limit = self.limit
        if limit is not None and {pos for pos, _ in order_by} != \
                set(range(len(items))):
            limit = None
        return self._copy(items=items, order_by=order_by, limit=limit)

    def _drop_source(self, index: int) -> Optional["QuerySpec"]:
        victim = self.sources[index]
        for other_index, other in enumerate(self.sources):
            if other_index == index or other.on is None:
                continue
            if victim.alias in other.on.aliases:
                return None  # a later join's ON condition needs this source
        alias = victim.alias
        sources = self.sources[:index] + self.sources[index + 1:]
        where = [p for p in self.where if alias not in p.aliases]
        having = [p for p in self.having if alias not in p.aliases]
        group_by = [key for key in self.group_by
                    if alias not in key.aliases]
        keep = [i for i, item in enumerate(self.items)
                if alias not in item.aliases]
        if self.setop is not None and len(keep) != len(self.items):
            return None  # cannot change arity under a set operation
        items = [self.items[i] for i in keep]
        if not items:
            items = [SelectItem("1", "int", set())]
            keep = []
        remap = {old: new for new, old in enumerate(keep)}
        order_by = [(remap[pos], asc) for pos, asc in self.order_by
                    if pos in remap]
        limit = self.limit
        if limit is not None and {pos for pos, _ in order_by} != \
                set(range(len(items))):
            limit = None
        return self._copy(items=items, sources=sources, where=where,
                          group_by=group_by, having=having,
                          order_by=order_by, limit=limit)


class QueryGenerator:
    """Draws reproducible :class:`QuerySpec` values from one rng."""

    def __init__(self, rng: random.Random, schema: SchemaSpec,
                 bias: Optional[GenBias] = None):
        self.rng = rng
        self.schema = schema
        self.bias = bias if bias is not None else GenBias()
        self.relations = schema.relations()
        self._alias_counter = 0

    def _fresh_alias(self) -> str:
        alias = "a%d" % self._alias_counter
        self._alias_counter += 1
        return alias

    def generate(self) -> QuerySpec:
        return self._query(depth=0)

    # -- query assembly ---------------------------------------------------------------

    def _query(self, depth: int,
               outer_sources: Sequence[Source] = ()) -> QuerySpec:
        rng = self.rng
        bias = self.bias
        max_sources = 3 if depth == 0 else 2
        source_count = 1 if rng.random() < bias.single_source else \
            rng.randint(1, max_sources)
        sources = self._sources(source_count)

        where: List[Pred] = []
        # Equi-join the comma-listed sources most of the time, so the plan
        # space has real join orders to explore (the rest stay Cartesian
        # on purpose: tiny tables, and the enumerator must handle them).
        for index in range(1, len(sources)):
            if sources[index].left_join:
                continue
            if rng.random() < bias.join_pred:
                pred = self._join_pred(sources[:index], sources[index])
                if pred is not None:
                    where.append(pred)
        for _ in range(rng.randint(0, 2)):
            where.append(self._predicate(sources, outer_sources, depth))

        grouped = depth == 0 and rng.random() < bias.grouped
        group_by: List[SelectItem] = []
        having: List[Pred] = []
        if grouped:
            items, group_by, having = self._grouped_select(sources)
        else:
            items = self._select_items(sources)

        distinct = not grouped and rng.random() < bias.distinct

        setop = None
        if depth == 0 and rng.random() < bias.setop:
            op = rng.choice(("union", "intersect", "except"))
            all_rows = rng.random() < 0.5
            setop = (op, all_rows, self._setop_side(self.kinds_of(items)))

        order_by: List[Tuple[int, bool]] = []
        limit = None
        if depth == 0 and rng.random() < 0.55:
            positions = list(range(len(items)))
            rng.shuffle(positions)
            kept = positions[:rng.randint(1, len(positions))]
            order_by = [(pos, rng.random() < 0.65) for pos in kept]
            if len(kept) == len(items) and rng.random() < 0.45:
                limit = rng.randint(1, 5)

        return QuerySpec(items, sources, where=where, distinct=distinct,
                         group_by=group_by, having=having, setop=setop,
                         order_by=order_by, limit=limit)

    @staticmethod
    def kinds_of(items: Sequence[SelectItem]) -> List[str]:
        return [item.kind for item in items]

    def _sources(self, count: int) -> List[Source]:
        rng = self.rng
        sources: List[Source] = []
        for index in range(count):
            relation = rng.choice(self.relations)
            alias = self._fresh_alias()
            source = Source(relation.name, alias, relation.columns)
            if index > 0 and rng.random() < self.bias.left_join:
                on = self._join_pred([sources[-1]], source)
                if on is not None:
                    source.left_join = True
                    source.on = on
            sources.append(source)
        return sources

    def _join_pred(self, candidates: Sequence[Source],
                   source: Source) -> Optional[Pred]:
        rng = self.rng
        right = source.numeric_columns()
        if not right:
            return None
        partners = [(other, column) for other in candidates
                    for column in other.numeric_columns()]
        if not partners:
            return None
        other, (left_col, _) = rng.choice(partners)
        right_col, _ = rng.choice(right)
        sql = "%s.%s = %s.%s" % (other.alias, left_col,
                                 source.alias, right_col)
        return Pred(sql, {other.alias, source.alias})

    # -- select lists -----------------------------------------------------------------

    def _column_item(self, sources: Sequence[Source]) -> SelectItem:
        rng = self.rng
        source = rng.choice(list(sources))
        name, kind = rng.choice(source.columns)
        return SelectItem("%s.%s" % (source.alias, name), kind,
                          {source.alias})

    def _select_items(self, sources: Sequence[Source]) -> List[SelectItem]:
        rng = self.rng
        items: List[SelectItem] = []
        for _ in range(rng.randint(1, 3)):
            roll = rng.random()
            if roll < 0.72:
                items.append(self._column_item(sources))
            elif roll < 0.88:
                source = rng.choice(list(sources))
                numeric = source.numeric_columns()
                if numeric:
                    name, kind = rng.choice(numeric)
                    const = rng.choice(_CONST_BY_KIND[rng.choice(NUMERIC)])
                    op = rng.choice(("+", "-", "*", "/", "%"))
                    if op == "/":
                        out = "float"  # SQL / here is true division
                    else:
                        out = "float" if (kind == "float" or "." in const) \
                            else "int"
                    items.append(SelectItem(
                        "%s.%s %s %s" % (source.alias, name, op, const),
                        out, {source.alias}))
                else:
                    items.append(self._column_item(sources))
            else:
                kind = rng.choice(("int", "float", "str"))
                items.append(SelectItem(rng.choice(_CONST_BY_KIND[kind]),
                                        kind, set()))
        return items

    def _aggregate_item(self, sources: Sequence[Source]) -> SelectItem:
        rng = self.rng
        name = rng.choice(("count", "count", "sum", "min", "max", "avg"))
        if name == "count" and rng.random() < 0.5:
            return SelectItem("COUNT(*)", "int", set(), is_agg=True)
        source = rng.choice(list(sources))
        if name in ("sum", "avg"):
            pool = source.numeric_columns()
            if not pool:
                return SelectItem("COUNT(*)", "int", set(), is_agg=True)
            column, kind = rng.choice(pool)
        else:
            column, kind = rng.choice(source.columns)
        arg = "%s.%s" % (source.alias, column)
        distinct = "DISTINCT " if rng.random() < 0.2 else ""
        if name == "count":
            out = "int"
        elif name == "avg":
            out = "float"
        else:
            out = kind
        return SelectItem("%s(%s%s)" % (name.upper(), distinct, arg), out,
                          {source.alias}, is_agg=True,
                          arg=(arg, kind, {source.alias}))

    def _grouped_select(self, sources: Sequence[Source]):
        rng = self.rng
        keys: List[SelectItem] = []
        seen: Set[str] = set()
        for _ in range(rng.randint(1, 2)):
            item = self._column_item(sources)
            if item.sql not in seen:
                seen.add(item.sql)
                keys.append(item)
        items: List[SelectItem] = [key for key in keys
                                   if rng.random() < 0.8]
        for _ in range(rng.randint(1, 2)):
            items.append(self._aggregate_item(sources))
        if not items:
            items = [self._aggregate_item(sources)]
        having: List[Pred] = []
        if rng.random() < 0.35:
            agg = self._aggregate_item(sources)
            op = rng.choice((">", ">=", "<", "<=", "=", "<>"))
            const = rng.choice(_CONST_BY_KIND["float" if agg.kind == "float"
                                              else "int"])
            having.append(Pred("%s %s %s" % (agg.sql, op, const),
                               agg.aliases))
        return items, keys, having

    # -- predicates -------------------------------------------------------------------

    def _predicate(self, sources: Sequence[Source],
                   outer_sources: Sequence[Source], depth: int) -> Pred:
        rng = self.rng
        roll = rng.random()
        if depth < 2 and roll < self.bias.subquery:
            return self._subquery_pred(sources, outer_sources, depth)
        if roll < 0.42:
            left = self._predicate_simple(sources)
            right = self._predicate_simple(sources)
            op = "OR" if rng.random() < 0.6 else "AND"
            inner = "(%s) %s (%s)" % (left.template, op, right.template)
            if rng.random() < 0.3:
                inner = "NOT (%s)" % inner
            return Pred(inner, left.aliases | right.aliases)
        return self._predicate_simple(sources, outer_sources)

    def _predicate_simple(self, sources: Sequence[Source],
                          outer_sources: Sequence[Source] = ()) -> Pred:
        rng = self.rng
        source = rng.choice(list(sources))
        name, kind = rng.choice(source.columns)
        column = "%s.%s" % (source.alias, name)
        aliases = {source.alias}
        roll = rng.random()
        if roll < 0.30:
            op = rng.choice(("=", "<>", "<", "<=", ">", ">="))
            if kind in NUMERIC:
                const = rng.choice(_CONST_BY_KIND[rng.choice(NUMERIC)])
            else:
                const = rng.choice(_CONST_BY_KIND[kind])
            return Pred("%s %s %s" % (column, op, const), aliases)
        if roll < 0.45:
            pool: List[Tuple[Source, str]] = []
            for other in list(sources) + list(outer_sources):
                for other_name, other_kind in other.columns:
                    comparable = (kind in NUMERIC and other_kind in NUMERIC) \
                        or kind == other_kind
                    if comparable:
                        pool.append((other,
                                     "%s.%s" % (other.alias, other_name)))
            if pool:
                other, other_column = rng.choice(pool)
                op = rng.choice(("=", "<>", "<", ">="))
                return Pred("%s %s %s" % (column, op, other_column),
                            aliases | {other.alias})
            return Pred("%s IS NOT NULL" % column, aliases)
        if roll < 0.60:
            negated = "NOT " if rng.random() < 0.5 else ""
            return Pred("%s IS %sNULL" % (column, negated), aliases)
        if roll < 0.72 and kind in NUMERIC:
            low, high = sorted(rng.sample(range(-1, 5), 2))
            negated = "NOT " if rng.random() < 0.3 else ""
            return Pred("%s %sBETWEEN %d AND %d"
                        % (column, negated, low, high), aliases)
        if roll < 0.85:
            values = rng.sample(_CONST_BY_KIND[kind],
                                rng.randint(2, 3))
            negated = "NOT " if rng.random() < 0.35 else ""
            return Pred("%s %sIN (%s)" % (column, negated,
                                          ", ".join(values)), aliases)
        if kind == "str":
            negated = "NOT " if rng.random() < 0.3 else ""
            return Pred("%s %sLIKE %s"
                        % (column, negated, rng.choice(_LIKE_PATTERNS)),
                        aliases)
        op = rng.choice(("=", "<>", "<", ">"))
        const = rng.choice(_CONST_BY_KIND[kind])
        return Pred("%s %s %s" % (column, op, const), aliases)

    def _subquery_pred(self, sources: Sequence[Source],
                       outer_sources: Sequence[Source], depth: int) -> Pred:
        rng = self.rng
        outer_scope = list(sources) + list(outer_sources)
        style = rng.choice(("exists", "exists", "in", "in", "quant",
                            "scalar"))
        if style == "exists":
            sub = self._subquery(depth + 1, outer_scope, signature=None)
            negated = "NOT " if rng.random() < 0.4 else ""
            return Pred("%sEXISTS ({sub})" % negated,
                        self._correlated_aliases(sub, sources), sub)
        source = rng.choice(list(sources))
        name, kind = rng.choice(source.columns)
        column = "%s.%s" % (source.alias, name)
        if style == "scalar":
            sub = self._scalar_subquery(depth + 1, outer_scope, kind)
            op = rng.choice(("=", "<>", "<", "<=", ">", ">="))
            return Pred("%s %s ({sub})" % (column, op),
                        {source.alias}
                        | self._correlated_aliases(sub, sources), sub)
        sub = self._subquery(depth + 1, outer_scope, signature=[kind])
        if style == "in":
            negated = "NOT " if rng.random() < 0.4 else ""
            return Pred("%s %sIN ({sub})" % (column, negated),
                        {source.alias}
                        | self._correlated_aliases(sub, sources), sub)
        op = rng.choice(("=", "<>", "<", "<=", ">", ">="))
        quantifier = rng.choice(("ANY", "ALL", "SOME"))
        return Pred("%s %s %s ({sub})" % (column, op, quantifier),
                    {source.alias}
                    | self._correlated_aliases(sub, sources), sub)

    @staticmethod
    def _correlated_aliases(sub: QuerySpec,
                            sources: Sequence[Source]) -> Set[str]:
        local = {source.alias for source in sources}
        used: Set[str] = set()
        for pred in sub.where:
            used |= pred.aliases & local
        return used

    def _subquery(self, depth: int, outer_scope: Sequence[Source],
                  signature: Optional[List[str]]) -> QuerySpec:
        rng = self.rng
        relation = rng.choice(self.relations)
        alias = self._fresh_alias()
        source = Source(relation.name, alias, relation.columns)
        where: List[Pred] = []
        if outer_scope and rng.random() < self.bias.sub_correlated:
            pred = self._correlation_pred(source, outer_scope)
            if pred is not None:
                where.append(pred)
        if rng.random() < 0.5:
            where.append(self._predicate_simple([source], outer_scope))
        if signature is None:
            items = [SelectItem("1", "int", set())]
        else:
            items = [self._item_of_kind(source, kind) for kind in signature]
        distinct = rng.random() < self.bias.sub_distinct
        return QuerySpec(items, [source], where=where, distinct=distinct)

    def _scalar_subquery(self, depth: int, outer_scope: Sequence[Source],
                         kind: str) -> QuerySpec:
        """An aggregate subquery with no GROUP BY: exactly one row."""
        rng = self.rng
        relation = rng.choice(self.relations)
        alias = self._fresh_alias()
        source = Source(relation.name, alias, relation.columns)
        pool = [name for name, k in source.columns
                if k == kind or (kind in NUMERIC and k in NUMERIC)]
        if pool:
            agg = rng.choice(("MIN", "MAX"))
            sql = "%s(%s.%s)" % (agg, alias, rng.choice(pool))
        else:
            sql = "COUNT(*)"
        where: List[Pred] = []
        if outer_scope and rng.random() < self.bias.sub_correlated:
            pred = self._correlation_pred(source, outer_scope)
            if pred is not None:
                where.append(pred)
        item = SelectItem(sql, kind, {alias}, is_agg=True)
        return QuerySpec([item], [source], where=where)

    def _correlation_pred(self, source: Source,
                          outer_scope: Sequence[Source]) -> Optional[Pred]:
        rng = self.rng
        pool = []
        for outer in outer_scope:
            for outer_name, outer_kind in outer.columns:
                for name, kind in source.columns:
                    if (kind in NUMERIC and outer_kind in NUMERIC) \
                            or kind == outer_kind:
                        pool.append((outer, outer_name, name))
        if not pool:
            return None
        outer, outer_name, name = rng.choice(pool)
        op = "=" if rng.random() < 0.7 else rng.choice(("<", ">", "<>"))
        return Pred("%s.%s %s %s.%s" % (source.alias, name, op,
                                        outer.alias, outer_name),
                    {source.alias, outer.alias})

    def _item_of_kind(self, source: Source, kind: str) -> SelectItem:
        pool = source.columns_of_kind(kind)
        if pool:
            name = self.rng.choice(pool)
            return SelectItem("%s.%s" % (source.alias, name), kind,
                              {source.alias})
        return SelectItem(_fallback_const(kind), kind, set())

    def _setop_side(self, signature: List[str]) -> QuerySpec:
        rng = self.rng
        relation = rng.choice(self.relations)
        alias = self._fresh_alias()
        source = Source(relation.name, alias, relation.columns)
        items = [self._item_of_kind(source, kind) for kind in signature]
        where: List[Pred] = []
        if rng.random() < 0.5:
            where.append(self._predicate_simple([source]))
        return QuerySpec(items, [source], where=where,
                         distinct=rng.random() < 0.2)
