"""Schema objects stored in the catalog.

These are plain data holders; behaviour (storage, access paths, statistics)
lives in the subsystems that consume them.  Names are case-insensitive and
normalized to lower case, matching Hydrogen's identifier rules.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.datatypes.types import DataType
from repro.errors import CatalogError


def normalize_name(name: str) -> str:
    """Normalize an identifier (tables, columns, indexes) to lower case."""
    return name.lower()


class ColumnDef:
    """A column of a base table or view."""

    __slots__ = ("name", "dtype", "nullable", "position")

    def __init__(self, name: str, dtype: DataType, nullable: bool = True,
                 position: int = -1):
        self.name = normalize_name(name)
        self.dtype = dtype
        self.nullable = nullable
        #: Ordinal position within the table; filled in by TableDef.
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        null = "" if self.nullable else " NOT NULL"
        return "<Column %s %s%s>" % (self.name, self.dtype.name, null)


class TableDef:
    """A base table: columns, storage manager, home site, primary key."""

    def __init__(self, name: str, columns: Sequence[ColumnDef],
                 storage_manager: str = "heap", site: str = "local",
                 primary_key: Optional[Sequence[str]] = None,
                 partition_by: Optional[str] = None,
                 partitions: int = 0):
        self.name = normalize_name(name)
        self.columns: List[ColumnDef] = list(columns)
        if not self.columns:
            raise CatalogError("table %s must have at least one column" % name)
        seen = set()
        for position, column in enumerate(self.columns):
            if column.name in seen:
                raise CatalogError(
                    "duplicate column %s in table %s" % (column.name, name)
                )
            seen.add(column.name)
            column.position = position
        self.storage_manager = storage_manager
        self.site = site
        self.primary_key: List[str] = [normalize_name(c) for c in (primary_key or [])]
        for key_col in self.primary_key:
            if key_col not in seen:
                raise CatalogError(
                    "primary key column %s not in table %s" % (key_col, name)
                )
        #: HASH partitioning: column name and shard count (0 = unpartitioned).
        self.partition_by: Optional[str] = (
            normalize_name(partition_by) if partition_by else None)
        self.partitions: int = int(partitions or 0)
        if (self.partition_by is None) != (self.partitions == 0):
            raise CatalogError(
                "table %s: PARTITION BY and PARTITIONS go together" % name)
        if self.partition_by is not None:
            if self.partition_by not in seen:
                raise CatalogError(
                    "partitioning column %s not in table %s"
                    % (self.partition_by, name))
            if self.partitions < 1:
                raise CatalogError(
                    "table %s needs at least 1 partition" % name)
            if storage_manager != "heap":
                raise CatalogError(
                    "PARTITION BY requires the heap storage manager "
                    "(table %s uses %s)" % (name, storage_manager))
        #: Assigned by the catalog on registration.
        self.table_id: int = -1

    def column(self, name: str) -> ColumnDef:
        """Look up a column by name, raising :class:`CatalogError`."""
        wanted = normalize_name(name)
        for column in self.columns:
            if column.name == wanted:
                return column
        raise CatalogError("no column %s in table %s" % (name, self.name))

    def has_column(self, name: str) -> bool:
        wanted = normalize_name(name)
        return any(column.name == wanted for column in self.columns)

    def column_names(self) -> List[str]:
        return [column.name for column in self.columns]

    def column_index(self, name: str) -> int:
        return self.column(name).position

    @property
    def arity(self) -> int:
        return len(self.columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Table %s (%d columns, sm=%s, site=%s)>" % (
            self.name, len(self.columns), self.storage_manager, self.site)


class IndexDef:
    """An access-method attachment registered on a table.

    ``kind`` selects the attachment implementation ('btree', 'hash',
    'rtree', or any DBC-registered kind); ``unique`` asks the attachment to
    enforce uniqueness of the key.
    """

    def __init__(self, name: str, table_name: str, column_names: Sequence[str],
                 kind: str = "btree", unique: bool = False):
        self.name = normalize_name(name)
        self.table_name = normalize_name(table_name)
        self.column_names: List[str] = [normalize_name(c) for c in column_names]
        if not self.column_names:
            raise CatalogError("index %s must cover at least one column" % name)
        self.kind = kind
        self.unique = unique

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Index %s ON %s(%s) kind=%s%s>" % (
            self.name, self.table_name, ", ".join(self.column_names),
            self.kind, " UNIQUE" if self.unique else "")


class ViewDef:
    """A view: a named Hydrogen query.

    The view body is stored both as source text and as a parsed AST; the
    translator expands the AST into the referencing query's QGM, after which
    the *view merging* rewrite rules may merge it into the consumer
    (section 5 of the paper).
    """

    def __init__(self, name: str, text: str, ast=None,
                 column_names: Optional[Sequence[str]] = None):
        self.name = normalize_name(name)
        self.text = text
        self.ast = ast
        self.column_names: Optional[List[str]] = (
            [normalize_name(c) for c in column_names] if column_names else None
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<View %s>" % self.name
