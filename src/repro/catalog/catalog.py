"""The catalog proper: tables, views, indexes, sites and statistics.

The catalog is the compile-time face of Core's metadata.  Corona's semantic
analysis resolves names against it, the rewrite phase fetches view bodies
from it, and the optimizer reads statistics and access-method attachments
through it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.catalog.schema import IndexDef, TableDef, ViewDef, normalize_name
from repro.catalog.statistics import TableStatistics
from repro.errors import CatalogError

#: Site name used for tables created without an explicit site (the local
#: node in the simulated distributed configuration).
DEFAULT_SITE = "local"


class Catalog:
    """In-memory catalog for one database instance."""

    def __init__(self):
        self._tables: Dict[str, TableDef] = {}
        self._views: Dict[str, ViewDef] = {}
        self._indexes: Dict[str, IndexDef] = {}
        self._indexes_by_table: Dict[str, List[IndexDef]] = {}
        self._statistics: Dict[str, TableStatistics] = {}
        self._sites: Dict[str, float] = {DEFAULT_SITE: 0.0}
        self._next_table_id = 1

    # -- tables ------------------------------------------------------------

    def create_table(self, table: TableDef) -> TableDef:
        """Register a table definition.  Name clashes (with tables or views)
        raise :class:`CatalogError`."""
        if table.name in self._tables or table.name in self._views:
            raise CatalogError("name %s already exists" % table.name)
        if table.site not in self._sites:
            raise CatalogError(
                "unknown site %s (register it with add_site first)" % table.site
            )
        table.table_id = self._next_table_id
        self._next_table_id += 1
        self._tables[table.name] = table
        self._statistics[table.name] = TableStatistics(table.column_names())
        self._indexes_by_table.setdefault(table.name, [])
        return table

    def drop_table(self, name: str) -> None:
        key = normalize_name(name)
        if key not in self._tables:
            raise CatalogError("no table %s" % name)
        del self._tables[key]
        del self._statistics[key]
        for index in self._indexes_by_table.pop(key, []):
            self._indexes.pop(index.name, None)

    def table(self, name: str) -> TableDef:
        key = normalize_name(name)
        try:
            return self._tables[key]
        except KeyError:
            raise CatalogError("no table %s" % name) from None

    def has_table(self, name: str) -> bool:
        return normalize_name(name) in self._tables

    def tables(self) -> List[TableDef]:
        return list(self._tables.values())

    # -- views ---------------------------------------------------------------

    def create_view(self, view: ViewDef) -> ViewDef:
        if view.name in self._views or view.name in self._tables:
            raise CatalogError("name %s already exists" % view.name)
        self._views[view.name] = view
        return view

    def drop_view(self, name: str) -> None:
        key = normalize_name(name)
        if key not in self._views:
            raise CatalogError("no view %s" % name)
        del self._views[key]

    def view(self, name: str) -> ViewDef:
        key = normalize_name(name)
        try:
            return self._views[key]
        except KeyError:
            raise CatalogError("no view %s" % name) from None

    def has_view(self, name: str) -> bool:
        return normalize_name(name) in self._views

    def views(self) -> List[ViewDef]:
        return list(self._views.values())

    # -- indexes (access-method attachments) ---------------------------------

    def create_index(self, index: IndexDef) -> IndexDef:
        if index.name in self._indexes:
            raise CatalogError("index %s already exists" % index.name)
        table = self.table(index.table_name)
        for column_name in index.column_names:
            table.column(column_name)  # raises on unknown column
        self._indexes[index.name] = index
        self._indexes_by_table.setdefault(table.name, []).append(index)
        return index

    def drop_index(self, name: str) -> None:
        key = normalize_name(name)
        index = self._indexes.pop(key, None)
        if index is None:
            raise CatalogError("no index %s" % name)
        self._indexes_by_table[index.table_name].remove(index)

    def index(self, name: str) -> IndexDef:
        key = normalize_name(name)
        try:
            return self._indexes[key]
        except KeyError:
            raise CatalogError("no index %s" % name) from None

    def indexes_on(self, table_name: str) -> List[IndexDef]:
        return list(self._indexes_by_table.get(normalize_name(table_name), []))

    # -- statistics -----------------------------------------------------------

    def statistics(self, table_name: str) -> TableStatistics:
        key = normalize_name(table_name)
        try:
            return self._statistics[key]
        except KeyError:
            raise CatalogError("no table %s" % table_name) from None

    # -- sites (simulated distribution) ----------------------------------------

    def add_site(self, name: str, ship_cost_per_row: float = 0.01) -> None:
        """Register a site.  ``ship_cost_per_row`` feeds the SHIP LOLEPOP's
        cost function; the default site has cost zero."""
        self._sites[name] = ship_cost_per_row

    def sites(self) -> List[str]:
        return list(self._sites)

    def ship_cost(self, site: str) -> float:
        try:
            return self._sites[site]
        except KeyError:
            raise CatalogError("unknown site %s" % site) from None

    def has_site(self, name: str) -> bool:
        return name in self._sites
