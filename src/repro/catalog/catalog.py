"""The catalog proper: tables, views, indexes, sites and statistics.

The catalog is the compile-time face of Core's metadata.  Corona's semantic
analysis resolves names against it, the rewrite phase fetches view bodies
from it, and the optimizer reads statistics and access-method attachments
through it.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.catalog.schema import IndexDef, TableDef, ViewDef, normalize_name
from repro.catalog.statistics import TableStatistics
from repro.errors import CatalogError

#: Site name used for tables created without an explicit site (the local
#: node in the simulated distributed configuration).
DEFAULT_SITE = "local"

#: A table's statistics are declared stale for cached plans once this many
#: rows have been inserted/deleted since the last statistics epoch bump...
STATS_DML_FLOOR = 64
#: ...or this fraction of the row count at the last bump, whichever is
#: larger (so bulk loads don't bump the epoch on every page of rows).
STATS_DML_FRACTION = 0.2


class Catalog:
    """In-memory catalog for one database instance."""

    def __init__(self):
        self._tables: Dict[str, TableDef] = {}
        self._views: Dict[str, ViewDef] = {}
        self._indexes: Dict[str, IndexDef] = {}
        self._indexes_by_table: Dict[str, List[IndexDef]] = {}
        self._statistics: Dict[str, TableStatistics] = {}
        self._sites: Dict[str, float] = {DEFAULT_SITE: 0.0}
        self._next_table_id = 1
        #: Monotone counter bumped by every schema-shaped change (DDL on
        #: tables/views/indexes/constraints, registry events).  Cached
        #: plans record the value they were compiled under.
        self.schema_epoch = 0
        #: Epoch of the last *global* schema event (type/function/storage
        #: manager/access method/rule registration): invalidates every
        #: cached plan, not just the ones touching one relation.
        self._schema_floor = 0
        #: Per-relation epoch of the last schema change touching it.  The
        #: marker survives DROP so a re-created name looks changed.
        self._table_schema_epochs: Dict[str, int] = {}
        #: Monotone counter for statistics changes (RUNSTATS, large DML
        #: deltas); plans whose dependency set intersects the changed
        #: tables are recompiled rather than trusted.
        self.stats_epoch = 0
        self._table_stats_epochs: Dict[str, int] = {}
        self._dml_since_stats: Dict[str, int] = {}
        self._rows_at_stats: Dict[str, int] = {}
        #: Monotone clock of *every* row mutation (insert, update, delete,
        #: undo), independent of the stats-epoch thresholds above.  The
        #: parallel runtime keys its forked worker pool on it: any
        #: mutation makes a copy-on-write snapshot stale.
        self.dml_clock = 0
        #: Epoch bumps are read-modify-write over several fields; the
        #: serving layer's concurrent writers take this lock so a bump
        #: is never lost (re-entrant: note_dml calls bump_stats_epoch).
        self._epoch_lock = threading.RLock()

    # -- epochs (plan-cache invalidation) -----------------------------------

    def reinit_locks(self) -> None:
        """Fresh epoch lock after ``fork()`` (a parent thread may have
        held the old one at fork time)."""
        self._epoch_lock = threading.RLock()

    def bump_schema_epoch(self, table_name: Optional[str] = None) -> int:
        """Note a schema change.  With a name, only plans depending on
        that relation go stale; without one (registry-wide events) every
        cached plan does."""
        with self._epoch_lock:
            self.schema_epoch += 1
            if table_name is None:
                self._schema_floor = self.schema_epoch
            else:
                self._table_schema_epochs[normalize_name(table_name)] = \
                    self.schema_epoch
            return self.schema_epoch

    def schema_floor(self) -> int:
        return self._schema_floor

    def schema_epoch_of(self, name: str) -> int:
        """Epoch of the last schema change touching one relation name."""
        return self._table_schema_epochs.get(normalize_name(name), 0)

    def bump_stats_epoch(self, table_name: str) -> int:
        """Note a statistics change (RUNSTATS or a large DML delta)."""
        with self._epoch_lock:
            self.stats_epoch += 1
            key = normalize_name(table_name)
            self._table_stats_epochs[key] = self.stats_epoch
            self._dml_since_stats[key] = 0
            stats = self._statistics.get(key)
            self._rows_at_stats[key] = stats.row_count if stats else 0
            return self.stats_epoch

    def stats_epoch_of(self, name: str) -> int:
        return self._table_stats_epochs.get(normalize_name(name), 0)

    def note_mutation(self) -> None:
        """Tick the mutation clock (update paths that bypass note_dml)."""
        with self._epoch_lock:
            self.dml_clock += 1

    def note_dml(self, table_name: str) -> None:
        """Count one inserted/deleted row; bump the statistics epoch once
        the delta since the last bump is large enough to move plans."""
        with self._epoch_lock:
            self.dml_clock += 1
            key = normalize_name(table_name)
            count = self._dml_since_stats.get(key, 0) + 1
            baseline = self._rows_at_stats.get(key, 0)
            if count >= max(STATS_DML_FLOOR,
                            STATS_DML_FRACTION * baseline):
                self.bump_stats_epoch(key)
            else:
                self._dml_since_stats[key] = count

    # -- tables ------------------------------------------------------------

    def create_table(self, table: TableDef) -> TableDef:
        """Register a table definition.  Name clashes (with tables or views)
        raise :class:`CatalogError`."""
        if table.name in self._tables or table.name in self._views:
            raise CatalogError("name %s already exists" % table.name)
        if table.site not in self._sites:
            raise CatalogError(
                "unknown site %s (register it with add_site first)" % table.site
            )
        table.table_id = self._next_table_id
        self._next_table_id += 1
        self._tables[table.name] = table
        self._statistics[table.name] = TableStatistics(table.column_names())
        self._indexes_by_table.setdefault(table.name, [])
        self.bump_schema_epoch(table.name)
        return table

    def drop_table(self, name: str) -> None:
        key = normalize_name(name)
        if key not in self._tables:
            raise CatalogError("no table %s" % name)
        del self._tables[key]
        del self._statistics[key]
        for index in self._indexes_by_table.pop(key, []):
            self._indexes.pop(index.name, None)
        self.bump_schema_epoch(key)

    def table(self, name: str) -> TableDef:
        key = normalize_name(name)
        try:
            return self._tables[key]
        except KeyError:
            raise CatalogError("no table %s" % name) from None

    def has_table(self, name: str) -> bool:
        return normalize_name(name) in self._tables

    def tables(self) -> List[TableDef]:
        return list(self._tables.values())

    # -- views ---------------------------------------------------------------

    def create_view(self, view: ViewDef) -> ViewDef:
        if view.name in self._views or view.name in self._tables:
            raise CatalogError("name %s already exists" % view.name)
        self._views[view.name] = view
        self.bump_schema_epoch(view.name)
        return view

    def drop_view(self, name: str) -> None:
        key = normalize_name(name)
        if key not in self._views:
            raise CatalogError("no view %s" % name)
        del self._views[key]
        self.bump_schema_epoch(key)

    def view(self, name: str) -> ViewDef:
        key = normalize_name(name)
        try:
            return self._views[key]
        except KeyError:
            raise CatalogError("no view %s" % name) from None

    def has_view(self, name: str) -> bool:
        return normalize_name(name) in self._views

    def views(self) -> List[ViewDef]:
        return list(self._views.values())

    # -- indexes (access-method attachments) ---------------------------------

    def create_index(self, index: IndexDef) -> IndexDef:
        if index.name in self._indexes:
            raise CatalogError("index %s already exists" % index.name)
        table = self.table(index.table_name)
        for column_name in index.column_names:
            table.column(column_name)  # raises on unknown column
        self._indexes[index.name] = index
        self._indexes_by_table.setdefault(table.name, []).append(index)
        self.bump_schema_epoch(table.name)
        return index

    def drop_index(self, name: str) -> None:
        key = normalize_name(name)
        index = self._indexes.pop(key, None)
        if index is None:
            raise CatalogError("no index %s" % name)
        self._indexes_by_table[index.table_name].remove(index)
        self.bump_schema_epoch(index.table_name)

    def index(self, name: str) -> IndexDef:
        key = normalize_name(name)
        try:
            return self._indexes[key]
        except KeyError:
            raise CatalogError("no index %s" % name) from None

    def indexes_on(self, table_name: str) -> List[IndexDef]:
        return list(self._indexes_by_table.get(normalize_name(table_name), []))

    # -- statistics -----------------------------------------------------------

    def statistics(self, table_name: str) -> TableStatistics:
        key = normalize_name(table_name)
        try:
            return self._statistics[key]
        except KeyError:
            raise CatalogError("no table %s" % table_name) from None

    # -- sites (simulated distribution) ----------------------------------------

    def add_site(self, name: str, ship_cost_per_row: float = 0.01) -> None:
        """Register a site.  ``ship_cost_per_row`` feeds the SHIP LOLEPOP's
        cost function; the default site has cost zero."""
        self._sites[name] = ship_cost_per_row

    def sites(self) -> List[str]:
        return list(self._sites)

    def ship_cost(self, site: str) -> float:
        try:
            return self._sites[site]
        except KeyError:
            raise CatalogError("unknown site %s" % site) from None

    def has_site(self, name: str) -> bool:
        return name in self._sites
