"""Catalog: the schema metadata Corona consults during compilation.

Starburst's Corona includes extensible data definition, authorization and
catalog management ([HAAS88]).  This package provides the pieces the query
processor needs: table, column, view, index and site definitions plus
per-table statistics for the cost model.
"""

from repro.catalog.schema import ColumnDef, IndexDef, TableDef, ViewDef
from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.catalog.catalog import Catalog, DEFAULT_SITE

__all__ = [
    "Catalog",
    "ColumnDef",
    "TableDef",
    "IndexDef",
    "ViewDef",
    "ColumnStatistics",
    "TableStatistics",
    "DEFAULT_SITE",
]
