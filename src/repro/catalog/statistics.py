"""Table and column statistics for the optimizer's cost model.

The Starburst plan generator starts property evaluation "with statistics on
stored tables" (section 6).  We keep the System-R-style statistics that the
selectivity formulas in ``repro.optimizer.cost`` consume:

- table cardinality and page count,
- per-column distinct-value count, min/max (for numeric interpolation) and
  null count.

Statistics are maintained incrementally on DML and can be recomputed exactly
with :meth:`TableStatistics.recompute` (the moral equivalent of RUNSTATS).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Sequence, Tuple


class ColumnStatistics:
    """Statistics for a single column."""

    __slots__ = ("n_distinct", "min_value", "max_value", "null_count")

    def __init__(self, n_distinct: int = 0, min_value: Any = None,
                 max_value: Any = None, null_count: int = 0):
        self.n_distinct = n_distinct
        self.min_value = min_value
        self.max_value = max_value
        self.null_count = null_count

    def observe(self, value: Any) -> None:
        """Cheap incremental update on insert.

        ``n_distinct`` is maintained as a lower bound: a value outside the
        known [min, max] range is certainly new, so every range extension
        bumps the count.  Monotone loads (ascending keys) thus keep an
        exact distinct count without ever scanning, and equality
        predicates on incrementally-loaded tables are costed from real
        evidence instead of the zero-distinct fallback.
        """
        if value is None:
            self.null_count += 1
            return
        extended = False
        try:
            if self.min_value is None or value < self.min_value:
                self.min_value = value
                extended = True
            if self.max_value is None or value > self.max_value:
                self.max_value = value
                extended = True
        except TypeError:
            # Externally defined types without an order: keep counts only.
            return
        if extended:
            self.n_distinct += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ColStats distinct=%d range=[%r, %r] nulls=%d>" % (
            self.n_distinct, self.min_value, self.max_value, self.null_count)


class TableStatistics:
    """Statistics for one table, keyed by column name."""

    def __init__(self, column_names: Sequence[str]):
        self.row_count: int = 0
        self.page_count: int = 1
        self.columns: Dict[str, ColumnStatistics] = {
            name: ColumnStatistics() for name in column_names
        }

    def column(self, name: str) -> ColumnStatistics:
        return self.columns.setdefault(name, ColumnStatistics())

    def on_insert(self, named_row: Dict[str, Any]) -> None:
        """Incrementally account for one inserted row."""
        self.row_count += 1
        for name, value in named_row.items():
            self.column(name).observe(value)

    def on_delete(self) -> None:
        """Incrementally account for one deleted row (ranges are kept)."""
        if self.row_count > 0:
            self.row_count -= 1

    def recompute(self, rows: Iterable[Tuple[Any, ...]],
                  column_names: Sequence[str],
                  page_count: Optional[int] = None) -> None:
        """Exact statistics from a full scan (RUNSTATS equivalent)."""
        distinct = {name: set() for name in column_names}
        stats = {name: ColumnStatistics() for name in column_names}
        count = 0
        for row in rows:
            count += 1
            for name, value in zip(column_names, row):
                stats[name].observe(value)
                if value is not None:
                    try:
                        distinct[name].add(value)
                    except TypeError:
                        pass
        for name in column_names:
            stats[name].n_distinct = len(distinct[name])
        self.row_count = count
        self.columns = stats
        if page_count is not None:
            self.page_count = max(1, page_count)

    def n_distinct(self, column_name: str) -> int:
        """Distinct count with a sane fallback when stats are missing."""
        stat = self.columns.get(column_name)
        if stat is None or stat.n_distinct <= 0:
            # Default guess: a tenth of the rows are distinct, at least 1.
            return max(1, self.row_count // 10)
        return stat.n_distinct

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<TableStats rows=%d pages=%d>" % (self.row_count, self.page_count)
