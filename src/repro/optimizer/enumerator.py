"""Join enumeration.

"A join enumerator then enumerates all valid join sequences by iteratively
constructing progressively larger sets of iterators from two smaller
iterator sets, starting initially from the plans generated earlier for sets
of a single iterator.  For each such pair of iterator sets, the join
enumerator invokes the plan generator to generate and evaluate alternative
QEPs for that join ... Two other parameters allow the join enumerator to
prune join sequences having composite inners ("bushy trees") or no join
predicate (Cartesian products), as System R and R* always did."

This module implements that dynamic program.  Plans are memoized per
iterator set, pruned to the cheapest plan per *interesting property class*
(order + site + predicates applied), so interesting orders survive for
merge joins above.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

from repro.errors import OptimizerError
from repro.optimizer.plans import PlanOp
from repro.optimizer.stars import PlanGenerator
from repro.qgm.model import Predicate, Quantifier


class EnumeratorStats:
    """Counters for benchmark E5."""

    def __init__(self):
        self.sets_enumerated = 0
        self.pairs_considered = 0
        self.plans_generated = 0
        self.plans_kept = 0
        self.cartesian_skipped = 0
        self.bushy_skipped = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("<EnumStats sets=%d pairs=%d plans=%d kept=%d>"
                % (self.sets_enumerated, self.pairs_considered,
                   self.plans_generated, self.plans_kept))


def prune_plans(plans: Sequence[PlanOp]) -> List[PlanOp]:
    """Keep the cheapest plan per interesting property class."""
    best: Dict[tuple, PlanOp] = {}
    for plan in plans:
        key = plan.props.interesting_key()
        current = best.get(key)
        if current is None or plan.props.cost < current.props.cost:
            best[key] = plan
    return list(best.values())


class JoinEnumerator:
    """Join-order search over iterator sets.

    The default ``strategy`` is the System-R dynamic program ('dp').  The
    'greedy' strategy instead grows one join sequence by repeatedly
    attaching the iterator whose join is currently cheapest — linear in
    the number of iterators, no optimality guarantee, but every plan it
    emits must compute the same answer (the differential harness checks
    exactly that).
    """

    def __init__(self, generator: PlanGenerator, allow_bushy: bool = False,
                 allow_cartesian: bool = False, strategy: str = "dp",
                 dependencies=None, trace=None):
        if strategy not in ("dp", "greedy"):
            raise OptimizerError(
                "unknown join enumeration strategy %r" % (strategy,))
        self.generator = generator
        #: Optional :class:`repro.obs.Trace`; pruning decisions emit
        #: ``optimizer.prune`` events with the losing plans' costs.
        self.trace = trace
        self.allow_bushy = allow_bushy
        self.allow_cartesian = allow_cartesian
        self.strategy = strategy
        #: Lateral dependencies: quantifier -> sibling quantifiers its
        #: input subtree references (correlated setformers, e.g. after the
        #: subquery-to-join rewrite).  A dependent iterator is only valid
        #: on the inner side of a nested-loops join whose outer side binds
        #: every dependency.
        self.dependencies = dict(dependencies or {})
        self.stats = EnumeratorStats()

    def _deps(self, quantifier: Quantifier) -> FrozenSet[Quantifier]:
        return self.dependencies.get(quantifier, frozenset())

    def _emit_prune(self, subset, plans: List[PlanOp],
                    kept: List[PlanOp]) -> None:
        if self.trace is None or len(plans) <= len(kept):
            return
        kept_ids = {id(plan) for plan in kept}
        losing = sorted(plan.props.cost for plan in plans
                        if id(plan) not in kept_ids)
        self.trace.event(
            "optimizer.prune",
            subset=sorted(q.name for q in subset),
            considered=len(plans), kept=len(kept),
            losing_costs=[round(cost, 2) for cost in losing[:8]])

    def _outer_ok(self, outer_set: FrozenSet[Quantifier]) -> bool:
        """An outer side must be self-contained: it is evaluated before
        the inner side binds anything."""
        return all(self._deps(q) <= outer_set for q in outer_set)

    def _lateral(self, outer_set: FrozenSet[Quantifier],
                 inner_set: FrozenSet[Quantifier]) -> bool:
        return any(self._deps(q) & outer_set for q in inner_set)

    def enumerate(self, single_plans: Dict[Quantifier, List[PlanOp]],
                  join_preds: Sequence[Predicate]) -> List[PlanOp]:
        """Best plans for the full set of iterators.

        ``single_plans`` maps each setformer to its access plans;
        ``join_preds`` are the predicates connecting two or more of them.
        """
        quantifiers = list(single_plans)
        if not quantifiers:
            raise OptimizerError("nothing to enumerate")
        memo: Dict[FrozenSet[Quantifier], List[PlanOp]] = {}
        for quantifier, plans in single_plans.items():
            memo[frozenset([quantifier])] = prune_plans(plans)
            self.stats.sets_enumerated += 1

        full = frozenset(quantifiers)
        if len(quantifiers) == 1:
            return memo[full]

        pred_sets = [(p, frozenset(q for q in p.quantifiers()
                                   if q in full)) for p in join_preds]

        if self.strategy == "greedy":
            return self._enumerate_greedy(memo, pred_sets, quantifiers)

        for size in range(2, len(quantifiers) + 1):
            for subset in _subsets_of_size(quantifiers, size):
                plans: List[PlanOp] = []
                had_connected_split = False
                for left_set, right_set in self._splits(subset):
                    left_plans = memo.get(left_set)
                    right_plans = memo.get(right_set)
                    if not left_plans or not right_plans:
                        continue
                    if not self._outer_ok(left_set):
                        continue
                    if any(self._deps(q) - subset for q in right_set):
                        continue  # a dependency is not even joined yet
                    lateral = self._lateral(left_set, right_set)
                    applicable = self._applicable_preds(
                        pred_sets, subset, left_set, right_set)
                    connected = lateral or any(
                        qs & left_set and qs & right_set
                        for _p, qs in pred_sets
                        if qs and qs <= subset
                    )
                    if not connected and not self.allow_cartesian:
                        self.stats.cartesian_skipped += 1
                        continue
                    had_connected_split = had_connected_split or connected
                    for outer in left_plans:
                        for inner in right_plans:
                            self.stats.pairs_considered += 1
                            produced = self.generator.evaluate(
                                "JoinRoot", outer=outer, inner=inner,
                                preds=applicable, lateral=lateral)
                            self.stats.plans_generated += len(produced)
                            plans.extend(produced)
                if plans:
                    memo[subset] = prune_plans(plans)
                    self._emit_prune(subset, plans, memo[subset])
                    self.stats.plans_kept += len(memo[subset])
                    self.stats.sets_enumerated += 1

        if full not in memo:
            if not self.allow_cartesian:
                # Disconnected query graph: fall back to allowing Cartesian
                # products rather than failing (System R did the same).
                fallback = JoinEnumerator(self.generator,
                                          allow_bushy=self.allow_bushy,
                                          allow_cartesian=True,
                                          dependencies=self.dependencies,
                                          trace=self.trace)
                result = fallback.enumerate(single_plans, join_preds)
                self.stats.pairs_considered += fallback.stats.pairs_considered
                self.stats.plans_generated += fallback.stats.plans_generated
                return result
            raise OptimizerError("join enumeration produced no plan")
        return memo[full]

    def _enumerate_greedy(self, memo, pred_sets,
                          quantifiers: Sequence[Quantifier]) -> List[PlanOp]:
        """Cheapest-next greedy join ordering (left-deep only).

        Start from the iterator with the cheapest access plan, then at
        each step join in the remaining iterator whose best join plan is
        cheapest, preferring iterators connected by a join predicate.
        When no remaining iterator is connected the step is a Cartesian
        product regardless of ``allow_cartesian`` (same escape hatch the
        DP strategy uses for disconnected query graphs).
        """
        def cheapest_cost(plans: List[PlanOp]) -> float:
            return min(plan.props.cost for plan in plans)

        remaining = sorted(quantifiers, key=lambda q: q.uid)
        independent = [q for q in remaining if not self._deps(q)]
        if not independent:
            raise OptimizerError(
                "every iterator has lateral dependencies: no valid "
                "greedy start")
        start = min(independent,
                    key=lambda q: (cheapest_cost(memo[frozenset([q])]),
                                   q.uid))
        remaining.remove(start)
        current_set = frozenset([start])
        current_plans = memo[current_set]

        while remaining:
            eligible = [q for q in remaining
                        if self._deps(q) <= current_set]
            if not eligible:
                raise OptimizerError(
                    "unsatisfiable lateral dependencies in greedy "
                    "enumeration")
            connected = [
                q for q in eligible
                if self._deps(q)
                or any(qset & current_set and q in qset
                       for _p, qset in pred_sets)
            ]
            pool = connected or eligible
            if not connected:
                self.stats.cartesian_skipped += 1
            best = None  # (cost, uid, quantifier, plans)
            for candidate in pool:
                joined_set = current_set | {candidate}
                lateral = bool(self._deps(candidate))
                applicable = self._applicable_preds(
                    pred_sets, joined_set, current_set,
                    frozenset([candidate]))
                plans: List[PlanOp] = []
                for outer in current_plans:
                    for inner in memo[frozenset([candidate])]:
                        self.stats.pairs_considered += 1
                        produced = self.generator.evaluate(
                            "JoinRoot", outer=outer, inner=inner,
                            preds=applicable, lateral=lateral)
                        self.stats.plans_generated += len(produced)
                        plans.extend(produced)
                if not plans:
                    continue
                cost = cheapest_cost(plans)
                if best is None or (cost, candidate.uid) < best[:2]:
                    best = (cost, candidate.uid, candidate, plans)
            if best is None:
                raise OptimizerError(
                    "greedy enumeration produced no join plan")
            _cost, _uid, chosen, plans = best
            remaining.remove(chosen)
            current_set = current_set | {chosen}
            current_plans = prune_plans(plans)
            self._emit_prune(current_set, plans, current_plans)
            self.stats.plans_kept += len(current_plans)
            self.stats.sets_enumerated += 1
        return current_plans

    def _splits(self, subset: FrozenSet[Quantifier]):
        """Yield (outer, inner) splits of ``subset``.

        Without bushy trees the inner side must be a single iterator
        (left-deep plans only); with them, any proper partition is legal.
        """
        members = sorted(subset, key=lambda q: q.uid)
        if self.allow_bushy:
            # all proper, non-empty bipartitions (each once per direction)
            count = len(members)
            for mask in range(1, (1 << count) - 1):
                left = frozenset(members[i] for i in range(count)
                                 if mask & (1 << i))
                right = subset - left
                yield left, right
        else:
            for member in members:
                inner = frozenset([member])
                outer = subset - inner
                if outer:
                    yield outer, inner
                    self.stats.bushy_skipped += 0  # explicit: no composites

    @staticmethod
    def _applicable_preds(pred_sets, subset, left_set, right_set):
        """Predicates fully contained in ``subset`` that span the split
        (or reference more than two iterators, all now available)."""
        applicable = []
        for predicate, qset in pred_sets:
            if not qset or not qset <= subset:
                continue
            if qset & left_set and qset & right_set:
                applicable.append(predicate)
        return applicable


def _subsets_of_size(items: Sequence[Quantifier], size: int):
    """All frozensets of the given size, in a deterministic order."""
    from itertools import combinations

    for combo in combinations(sorted(items, key=lambda q: q.uid), size):
        yield frozenset(combo)
