"""STARs: strategy alternative rules, and the rule-driven plan generator.

"Executable plans are defined using a grammar-like set of parameterized
production rules called strategy alternative rules (STARs) ... A STAR
consists of a name (the nonterminals of our grammar), zero or more
parameters, and one or more alternative definitions in terms of LOLEPOPs or
other STAR names.  IF conditions can be attached to any alternative ...
Required properties are achieved by additional *glue* STARs that find the
cheapest plan satisfying the requirements."

The :class:`PlanGenerator` is the paper's three-part design: (1) a
general-purpose STAR evaluator, (2) a search strategy choosing evaluation
order with rank-based pruning, (3) an array of STARs — each part replaceable
without touching the others.  ``default_star_array`` builds the base
system's rule array; counting its rules reproduces the paper's "all of the
R* strategies ... in under 20 rules" claim (benchmark E6).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExtensionError, OptimizerError
from repro.optimizer.cost import CostModel
from repro.optimizer.plans import (
    DerivedScan,
    Exchange,
    Filter,
    Gather,
    GroupBy,
    HashJoin,
    IndexScan,
    LimitOp,
    MergeGather,
    MergeJoin,
    NLJoin,
    PartitionGather,
    PlanOp,
    Project,
    Repartition,
    Ship,
    Sort,
    SubplanBinding,
    SubqueryJoin,
    TableScan,
    Temp,
    TopSort,
)
from repro.optimizer.properties import order_key
from repro.qgm import expressions as qe
from repro.qgm.model import BaseTableBox, Predicate, Quantifier

Args = Dict[str, Any]
Condition = Callable[["PlanGenerator", Args], bool]
Producer = Callable[["PlanGenerator", Args], List[PlanOp]]


class Alternative:
    """One alternative definition of a STAR: IF condition THEN production.

    ``rank`` orders alternatives; the generator prunes alternatives whose
    rank exceeds the configured cutoff ("alternatives exceeding a given
    rank can be pruned by the plan generator").
    """

    def __init__(self, name: str, produce: Producer,
                 condition: Optional[Condition] = None, rank: float = 1.0):
        self.name = name
        self.produce = produce
        self.condition = condition
        self.rank = rank


class STAR:
    """A named nonterminal with its alternative definitions."""

    def __init__(self, name: str, alternatives: Sequence[Alternative]):
        self.name = name
        self.alternatives = list(alternatives)


class GeneratorStats:
    """Counters reported by the optimizer benchmarks."""

    def __init__(self):
        self.star_evaluations = 0
        self.alternatives_tried = 0
        self.alternatives_pruned = 0
        self.plans_generated = 0

    def reset(self) -> None:
        self.__init__()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("<GenStats evals=%d tried=%d pruned=%d plans=%d>"
                % (self.star_evaluations, self.alternatives_tried,
                   self.alternatives_pruned, self.plans_generated))


class PlanGenerator:
    """The STAR evaluator.

    ``context`` supplies the environment rules need:
    ``cm`` (CostModel), ``access_methods(table_name)``, and ``settings``
    (rank_cutoff, sort_by_rank).  The STAR array can be modified (add /
    replace / remove rules) without touching the evaluator — the paper's
    orthogonality requirement.
    """

    def __init__(self, stars: Dict[str, STAR], context):
        # Copy the array one level deep: rule edits made through this
        # generator (add/remove alternatives) must not leak into the
        # database-wide array another compilation will use.
        self.stars = {name: STAR(star.name, list(star.alternatives))
                      for name, star in stars.items()}
        self.context = context
        self.stats = GeneratorStats()
        #: Optional :class:`repro.obs.Trace`; when set, every expansion
        #: that produces plans emits a ``star`` event.
        self.trace = None

    # -- rule array maintenance (DBC API) -----------------------------------------

    def add_star(self, star: STAR, replace: bool = False) -> None:
        if star.name in self.stars and not replace:
            raise ExtensionError("STAR %s already defined" % star.name)
        self.stars[star.name] = star

    def add_alternative(self, star_name: str,
                        alternative: Alternative) -> None:
        try:
            self.stars[star_name].alternatives.append(alternative)
        except KeyError:
            raise ExtensionError("no STAR named %s" % star_name) from None

    def remove_alternative(self, star_name: str, alt_name: str) -> None:
        star = self.stars.get(star_name)
        if star is None:
            raise ExtensionError("no STAR named %s" % star_name)
        star.alternatives = [a for a in star.alternatives
                             if a.name != alt_name]

    def rule_count(self) -> int:
        """Total number of alternatives across the array (E6 benchmark)."""
        return sum(len(star.alternatives) for star in self.stars.values())

    # -- evaluation --------------------------------------------------------------------

    def evaluate(self, star_name: str, **args: Any) -> List[PlanOp]:
        """Expand a STAR: try each applicable alternative, collect plans."""
        star = self.stars.get(star_name)
        if star is None:
            raise OptimizerError("no STAR named %s" % star_name)
        self.stats.star_evaluations += 1
        settings = self.context.settings
        alternatives = star.alternatives
        if settings.sort_by_rank:
            alternatives = sorted(alternatives, key=lambda a: a.rank)
        plans: List[PlanOp] = []
        for alternative in alternatives:
            if alternative.rank > settings.rank_cutoff:
                self.stats.alternatives_pruned += 1
                continue
            if alternative.condition is not None \
                    and not alternative.condition(self, args):
                continue
            self.stats.alternatives_tried += 1
            produced = alternative.produce(self, args)
            self.stats.plans_generated += len(produced)
            plans.extend(produced)
        if self.trace is not None and plans:
            self.trace.event(
                "star", star=star_name, alternatives=len(star.alternatives),
                produced=len(plans),
                plans=[plan.describe() for plan in plans[:3]])
        return plans

    def cheapest(self, star_name: str, **args: Any) -> Optional[PlanOp]:
        plans = self.evaluate(star_name, **args)
        if not plans:
            return None
        return min(plans, key=lambda p: p.props.cost)

    @property
    def cm(self) -> CostModel:
        return self.context.cm


# ---------------------------------------------------------------------------
# Helper predicates for index matching
# ---------------------------------------------------------------------------


def _constant_side(expr: qe.QExpr, quantifier: Quantifier):
    """For ``q.col OP other`` return (col, OP, other-expr) when the other
    side is independent of ``quantifier`` (constant, parameter, or an outer
    correlation)."""
    if not isinstance(expr, qe.BinOp):
        return None
    comparisons = {"=", "<", "<=", ">", ">="}
    if expr.op not in comparisons:
        return None
    mirror = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    for left, right, op in ((expr.left, expr.right, expr.op),
                            (expr.right, expr.left, mirror[expr.op])):
        if (isinstance(left, qe.ColRef) and left.quantifier is quantifier
                and quantifier not in qe.quantifiers_in(right)):
            return left.column, op, right
    return None


def match_index(index, quantifier: Quantifier,
                preds: Sequence[Predicate]):
    """Match predicates against an index: equality prefix + optional range.

    Returns (eq_exprs, range_bounds, matched, residual) or None when the
    index is useless for these predicates.
    """
    by_column: Dict[str, List[Tuple[str, qe.QExpr, Predicate]]] = {}
    for predicate in preds:
        hit = _constant_side(predicate.expr, quantifier)
        if hit is not None:
            column, op, other = hit
            by_column.setdefault(column, []).append((op, other, predicate))

    eq_exprs: List[qe.QExpr] = []
    matched: List[Predicate] = []
    range_bounds = None
    for column in index.key_columns:
        hits = by_column.get(column, [])
        eq_hit = next((h for h in hits if h[0] == "="), None)
        if eq_hit is not None:
            eq_exprs.append(eq_hit[1])
            matched.append(eq_hit[2])
            continue
        if index.supports_range:
            low = high = None
            low_inc = high_inc = True
            for op, other, predicate in hits:
                if op in (">", ">=") and low is None:
                    low, low_inc = other, (op == ">=")
                    matched.append(predicate)
                elif op in ("<", "<=") and high is None:
                    high, high_inc = other, (op == "<=")
                    matched.append(predicate)
            if low is not None or high is not None:
                range_bounds = (low, low_inc, high, high_inc)
        break  # stop at the first non-equality key column
    if not eq_exprs and range_bounds is None:
        return None
    if not index.supports_range and len(eq_exprs) != len(index.key_columns):
        return None  # hash indexes need the full key
    matched_set = set(id(p) for p in matched)
    residual = [p for p in preds if id(p) not in matched_set]
    return eq_exprs, range_bounds, matched, residual


# ---------------------------------------------------------------------------
# The default STAR array
# ---------------------------------------------------------------------------


def default_star_array() -> Dict[str, STAR]:
    """The base system's rule array.

    Nonterminals:

    - ``AccessRoot(quantifier, preds, child_plan?)`` — all ways to produce a
      stream for one iterator (table scan, every matching index, derived),
    - ``JoinRoot(outer, inner, preds)`` — all ways to join two plan sets,
    - ``SubqueryRoot(outer, binding, kind, preds)`` — subquery join kinds,
    - ``RequireOrder(plan, keys)`` / ``RequireSite(plan, site)`` — glue.
    """

    # ---- access alternatives ------------------------------------------------

    def table_scan(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        quantifier = args["quantifier"]
        return [TableScan(gen.cm, quantifier.input.table, quantifier,
                          args["preds"])]

    def is_base_table(gen: PlanGenerator, args: Args) -> bool:
        return isinstance(args["quantifier"].input, BaseTableBox)

    def index_scans(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        quantifier = args["quantifier"]
        table = quantifier.input.table
        preds = args["preds"]
        plans: List[PlanOp] = []
        for access in gen.context.access_methods(table.name):
            hit = match_index(access, quantifier, preds)
            if hit is None:
                # An ordered index with no matching predicate is still an
                # interesting-order access path when it covers few rows.
                if access.provides_order and args.get("want_order"):
                    plans.append(IndexScan(
                        gen.cm, table, quantifier, access.index,
                        [], None, [], list(preds),
                        ordered=True,
                    ))
                continue
            eq_exprs, range_bounds, matched, residual = hit
            plans.append(IndexScan(
                gen.cm, table, quantifier, access.index, eq_exprs,
                range_bounds, matched, residual,
                ordered=access.provides_order,
            ))
        return plans

    def derived_scan(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        quantifier = args["quantifier"]
        child = args["child_plan"]
        return [DerivedScan(gen.cm, child, quantifier.input, quantifier,
                            args["preds"])]

    def is_derived(gen: PlanGenerator, args: Args) -> bool:
        return args.get("child_plan") is not None

    access_root = STAR("AccessRoot", [
        Alternative("TableScan", table_scan, condition=is_base_table,
                    rank=1.0),
        Alternative("IndexScan", index_scans, condition=is_base_table,
                    rank=1.5),
        Alternative("DerivedScan", derived_scan, condition=is_derived,
                    rank=1.0),
    ])

    # ---- join alternatives ------------------------------------------------------

    def _join_keys(preds: Sequence[Predicate], outer: PlanOp,
                   inner: PlanOp):
        """Split predicates into equi-join keys and residual predicates."""
        outer_keys: List[qe.QExpr] = []
        inner_keys: List[qe.QExpr] = []
        residual: List[Predicate] = []
        key_preds: List[Predicate] = []
        for predicate in preds:
            pair = qe.is_column_equality(predicate.expr)
            if pair is not None:
                left, right = pair
                if (left.quantifier in outer.props.quantifiers
                        and right.quantifier in inner.props.quantifiers):
                    outer_keys.append(left)
                    inner_keys.append(right)
                    key_preds.append(predicate)
                    continue
                if (right.quantifier in outer.props.quantifiers
                        and left.quantifier in inner.props.quantifiers):
                    outer_keys.append(right)
                    inner_keys.append(left)
                    key_preds.append(predicate)
                    continue
            residual.append(predicate)
        return outer_keys, inner_keys, key_preds, residual

    def nl_join(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        outer, inner = args["outer"], args["inner"]
        kind = args.get("kind", "regular")
        plans = [NLJoin(gen.cm, outer, inner, kind, args["preds"])]
        # Variant: materialize the inner so replays are cheap.  A lateral
        # inner references outer bindings, so it must be re-evaluated per
        # outer row — never cached in a Temp.
        if not args.get("lateral"):
            plans.append(NLJoin(gen.cm, outer, Temp(gen.cm, inner), kind,
                                args["preds"]))
        return plans

    def merge_join(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        outer, inner = args["outer"], args["inner"]
        kind = args.get("kind", "regular")
        outer_keys, inner_keys, key_preds, residual = _join_keys(
            args["preds"], outer, inner)
        if not outer_keys:
            return []
        sorted_outer = gen.cheapest(
            "RequireOrder", plan=outer,
            keys=[(k, True) for k in outer_keys])
        sorted_inner = gen.cheapest(
            "RequireOrder", plan=inner,
            keys=[(k, True) for k in inner_keys])
        if sorted_outer is None or sorted_inner is None:
            return []
        return [MergeJoin(gen.cm, sorted_outer, sorted_inner, kind,
                          outer_keys, inner_keys, key_preds, residual)]

    def hash_join(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        outer, inner = args["outer"], args["inner"]
        kind = args.get("kind", "regular")
        outer_keys, inner_keys, key_preds, residual = _join_keys(
            args["preds"], outer, inner)
        if not outer_keys:
            return []
        return [HashJoin(gen.cm, outer, inner, kind, outer_keys, inner_keys,
                         key_preds, residual)]

    def same_site(gen: PlanGenerator, args: Args) -> bool:
        return True  # sites are reconciled by the glue below

    def co_locate(gen: PlanGenerator, args: Args) -> Args:
        return args

    _METHOD_STARS = {
        "nl": ("NLJoinAlt",),
        "merge": ("MergeJoinAlt",),
        "hash": ("HashJoinAlt",),
    }

    def join_root_produce(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        # Reconcile sites first (glue), then try every join method — or
        # only the forced one when the settings pin a method.  Nested
        # loops remains the fallback when the forced method produces no
        # plan (merge/hash joins need equi-join keys).
        outer, inner = args["outer"], args["inner"]
        if outer.props.site != inner.props.site:
            shipped = gen.cheapest("RequireSite", plan=inner,
                                   site=outer.props.site)
            if shipped is not None:
                inner = shipped
        forced = getattr(gen.context.settings, "forced_join_method", None)
        if args.get("lateral"):
            # The inner side references iterators bound by the outer side
            # (a correlated setformer, e.g. after subquery-to-join): it
            # must be re-evaluated per outer row, which only the nested
            # loops method does.  Merge and hash materialize the inner
            # once, before the outer bindings exist — correctness beats
            # any forced method here.
            methods = ("NLJoinAlt",)
        else:
            methods = _METHOD_STARS.get(
                forced, ("NLJoinAlt", "MergeJoinAlt", "HashJoinAlt"))
        produced: List[PlanOp] = []
        for method in methods:
            produced.extend(gen.evaluate(
                method, outer=outer, inner=inner, preds=args["preds"],
                kind=args.get("kind", "regular"),
                lateral=args.get("lateral", False)))
        if not produced and forced is not None and "NLJoinAlt" not in methods:
            produced = gen.evaluate(
                "NLJoinAlt", outer=outer, inner=inner, preds=args["preds"],
                kind=args.get("kind", "regular"),
                lateral=args.get("lateral", False))
        return produced

    join_root = STAR("JoinRoot", [
        Alternative("Methods", join_root_produce, rank=1.0),
    ])
    nl_star = STAR("NLJoinAlt", [Alternative("NL", nl_join, rank=1.0)])
    merge_star = STAR("MergeJoinAlt",
                      [Alternative("Merge", merge_join, rank=2.0)])
    hash_star = STAR("HashJoinAlt",
                     [Alternative("Hash", hash_join, rank=1.5)])

    # ---- subquery join kinds -------------------------------------------------------

    def subquery_join(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        binding: SubplanBinding = args["binding"]
        return [SubqueryJoin(gen.cm, args["outer"], binding, args["kind"],
                             args["preds"])]

    subquery_root = STAR("SubqueryRoot", [
        Alternative("SubqueryJoin", subquery_join, rank=1.0),
    ])

    # ---- glue -------------------------------------------------------------------------

    def order_satisfied(gen: PlanGenerator, args: Args) -> bool:
        keys = tuple((order_key(expr), asc) for expr, asc in args["keys"])
        return args["plan"].props.satisfies_order(keys)

    def keep_plan(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        return [args["plan"]]

    def add_sort(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        return [Sort(gen.cm, args["plan"], args["keys"])]

    require_order = STAR("RequireOrder", [
        Alternative("AlreadyOrdered", keep_plan, condition=order_satisfied,
                    rank=0.5),
        Alternative("AddSort", add_sort, rank=1.0),
    ])

    def site_satisfied(gen: PlanGenerator, args: Args) -> bool:
        return args["plan"].props.site == args["site"]

    def add_ship(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        return [Ship(gen.cm, args["plan"], args["site"])]

    require_site = STAR("RequireSite", [
        Alternative("AlreadyThere", keep_plan, condition=site_satisfied,
                    rank=0.5),
        Alternative("AddShip", add_ship, rank=1.0),
    ])

    def partitioning_satisfied(gen: PlanGenerator, args: Args) -> bool:
        required = ("hash", (order_key(args["key"]),), args["n"])
        return args["plan"].props.partitioning == required

    def partitioning_unsatisfied(gen: PlanGenerator, args: Args) -> bool:
        return not partitioning_satisfied(gen, args)

    def add_repartition(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        return [Repartition(gen.cm, args["plan"], args["n"], args["scan"],
                            [args["key"]])]

    # Glue mirroring RequireSite: a stream already hash-partitioned on
    # the required key (a SCAN of a sharded table) is kept as-is — the
    # co-located case, no data moves — otherwise a REPARTITION shuffle
    # establishes the property.  The alternatives are mutually exclusive
    # rather than cost-compared: a satisfied plan's cost is its serial
    # cost (each partition worker scans 1/n of it), and shuffling an
    # already-correctly-partitioned stream can never win — it reads the
    # same data and adds wire traffic.
    require_partitioning = STAR("RequirePartitioning", [
        Alternative("AlreadyPartitioned", keep_plan,
                    condition=partitioning_satisfied, rank=0.5),
        Alternative("AddRepartition", add_repartition,
                    condition=partitioning_unsatisfied, rank=1.0),
    ])

    # ---- execution backend (refinement-phase glue) --------------------------
    #
    # Evaluated per plan node during refinement (not plan search): decides
    # which executor backend runs the node.  ``capable`` means the
    # vectorized engine structurally supports the node (operators +
    # batch-compilable, self-contained expressions); ``eligible`` carries
    # the auto-mode heuristic (contiguous batch subtree over enough rows).
    # A DBC can re-rank or replace these alternatives to steer backend
    # choice, exactly like any other STAR.

    def compiled_eligible(gen: PlanGenerator, args: Args) -> bool:
        # ``compiled`` is set only by the codegen selection pass
        # (execution_mode "compiled"/"auto"); the vectorized selection
        # pass does not pass it, so ``get`` keeps it falsy there.
        return bool(args.get("compiled"))

    def batch_eligible(gen: PlanGenerator, args: Args) -> bool:
        if compiled_eligible(gen, args):
            return False
        return bool(args["capable"]) and (
            args["mode"] in ("batch", "compiled")
            or (args["mode"] == "auto" and args["eligible"]))

    def tuple_only(gen: PlanGenerator, args: Args) -> bool:
        return (not compiled_eligible(gen, args)
                and not batch_eligible(gen, args))

    def mark_compiled(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        plan = args["plan"]
        plan.exec_backend = "compiled"
        return [plan]

    def mark_batch(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        plan = args["plan"]
        plan.exec_backend = "batch"
        return [plan]

    def mark_tuple(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        plan = args["plan"]
        plan.exec_backend = "tuple"
        return [plan]

    exec_backend = STAR("ExecBackend", [
        Alternative("Compiled", mark_compiled, condition=compiled_eligible,
                    rank=0.4),
        Alternative("Batch", mark_batch, condition=batch_eligible,
                    rank=0.5),
        Alternative("Tuple", mark_tuple, condition=tuple_only,
                    rank=1.0),
    ])

    # ---- parallelism (refinement-phase glue) --------------------------------
    #
    # Evaluated per candidate subtree by :func:`parallelize_plan`:
    # ``capable`` means the subtree is structurally parallelizable (a
    # row-producing pyramid over a Filter*/SCAN chain on a local heap
    # table, self-contained expressions); ``eligible`` carries the
    # cost-model gate (enough rows read to amortize worker startup).
    # ``build`` constructs the Exchange when the alternative fires, so a
    # DBC can replace the glue without knowing how to build the operator.

    def parallel_eligible(gen: PlanGenerator, args: Args) -> bool:
        return bool(args["capable"]) and (
            args["mode"] == "on"
            or (args["mode"] == "auto" and args["eligible"]))

    def serial_only(gen: PlanGenerator, args: Args) -> bool:
        return not parallel_eligible(gen, args)

    def splice_exchange(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        return [args["build"](gen)]

    def keep_serial(gen: PlanGenerator, args: Args) -> List[PlanOp]:
        return [args["plan"]]

    parallelism = STAR("Parallelism", [
        Alternative("Exchange", splice_exchange, condition=parallel_eligible,
                    rank=0.5),
        Alternative("Serial", keep_serial, condition=serial_only,
                    rank=1.0),
    ])

    return {
        star.name: star
        for star in (access_root, join_root, nl_star, merge_star, hash_star,
                     subquery_root, require_order, require_site,
                     require_partitioning, exec_backend, parallelism)
    }


# ---------------------------------------------------------------------------
# Parallel glue driver (refinement phase)
# ---------------------------------------------------------------------------


def _chain_scan(node: PlanOp) -> Optional[TableScan]:
    """The SCAN leaf of a Filter*/SCAN chain rooted at ``node``, or None.

    Only this shape parallelizes today: the chain carves into page-range
    morsels with no cross-morsel state.  Any join, sort, subquery stream
    or derived input breaks the chain.
    """
    while isinstance(node, Filter):
        node = node.children[0]
    if not isinstance(node, TableScan):
        return None
    if node.table.storage_manager != "heap" or node.table.site != "local":
        return None
    return node


def _chain_preds(node: PlanOp) -> List[Predicate]:
    preds: List[Predicate] = []
    while isinstance(node, Filter):
        preds.extend(node.preds)
        node = node.children[0]
    preds.extend(node.preds)
    return preds


def _self_contained(exprs, allowed) -> bool:
    """Do all expressions reference only quantifiers bound inside the
    parallel subtree (and parameters/constants)?  Correlated references
    need the caller's bindings, which forked workers do not have."""
    for expr in exprs:
        if expr is not None and not (qe.quantifiers_in(expr) <= allowed):
            return False
    return True


def _aggregates_mergeable(groupby: GroupBy, catalog, resolve) -> bool:
    """Can per-morsel partial results of these aggregates be merged
    without changing the answer byte-for-byte?

    COUNT/MIN/MAX always merge; SUM merges only over provably-integer
    base columns (float addition is order sensitive); AVG and DBC
    aggregates never do.  DISTINCT aggregates need global dedup.
    ``resolve`` traces a ColRef over a derived quantifier down to the
    expression that produces it.
    """
    for agg in groupby.aggregates:
        if agg.distinct:
            return False
        if agg.name == "count" or agg.name in ("min", "max"):
            continue
        if agg.name == "sum":
            arg = resolve(agg.arg)
            if (isinstance(arg, qe.ColRef)
                    and isinstance(arg.quantifier.input, BaseTableBox)):
                table = arg.quantifier.input.table
                column = next((c for c in table.columns
                               if c.name == arg.column), None)
                if column is not None and column.dtype.name == "INTEGER":
                    continue
            return False
        return False
    return True


def _project_candidate(node: PlanOp) -> Optional[TableScan]:
    """``node`` is a parallelizable PROJECT pyramid: PROJECT over a
    Filter*/SCAN chain, no subquery streams, self-contained."""
    if not isinstance(node, Project) or node.subplans:
        return None
    scan = _chain_scan(node.children[0])
    if scan is None:
        return None
    exprs = list(node.exprs) + [p.expr for p in _chain_preds(node.children[0])]
    if not _self_contained(exprs, {scan.quantifier}):
        return None
    return scan


def _groupby_candidate(node: PlanOp, catalog) -> Optional[TableScan]:
    """``node`` is a GROUPBY whose input carves into morsels: either a
    bare Filter*/SCAN chain, or — the shape box lowering actually emits —
    an ACCESS/PROJECT pyramid over that chain."""
    if not isinstance(node, GroupBy):
        return None
    child = node.children[0]
    allowed = set()
    inner_exprs: List[qe.QExpr] = []
    resolve = lambda expr: expr
    if isinstance(child, DerivedScan):
        project = child.children[0]
        if not isinstance(project, Project) or project.subplans:
            return None
        names, derived = project.names, project.exprs
        quantifier = child.quantifier

        def resolve(expr):
            # Trace q.col through the derived table to its defining
            # expression, so SUM's integer-base-column proof still works.
            if (isinstance(expr, qe.ColRef) and expr.quantifier is quantifier
                    and expr.column in names):
                return derived[names.index(expr.column)]
            return expr

        allowed.add(quantifier)
        inner_exprs = list(derived) + [p.expr for p in child.preds]
        child = project.children[0]
    scan = _chain_scan(child)
    if scan is None:
        return None
    if not _aggregates_mergeable(node, catalog, resolve):
        return None
    exprs = (list(node.group_exprs)
             + [a.arg for a in node.aggregates]
             + inner_exprs
             + [p.expr for p in _chain_preds(child)])
    allowed.add(scan.quantifier)
    if not _self_contained(exprs, allowed):
        return None
    return scan


def _shard_partitions(scan: TableScan, key: qe.ColRef) -> int:
    """Partition count when ``scan``'s table is hash-sharded on exactly
    the routing key column, else 0."""
    table = scan.table
    if (table.partition_by and table.partitions
            and key.column == table.partition_by):
        return table.partitions
    return 0


def _partition_join_candidate(node: PlanOp):
    """``node`` is a partition-wise-joinable pyramid: PROJECT over a
    HASHJOIN of two Filter*/SCAN chains on distinct local heap tables.

    Routing uses the first equi-join key pair, which must be plain
    column references on each side's own scan quantifier (rows with
    equal first keys co-locate, and equal rows have equal first keys, so
    joining each partition independently is exhaustive).  Returns
    ``(join, outer_scan, inner_scan, outer_key, inner_key)`` or None.
    """
    if not isinstance(node, Project) or node.subplans:
        return None
    join = node.children[0]
    if not isinstance(join, HashJoin) \
            or join.kind not in ("regular", "left_outer"):
        return None
    if not join.outer_keys:
        return None
    outer_scan = _chain_scan(join.children[0])
    inner_scan = _chain_scan(join.children[1])
    if outer_scan is None or inner_scan is None or outer_scan is inner_scan:
        return None
    okey, ikey = join.outer_keys[0], join.inner_keys[0]
    if not (isinstance(okey, qe.ColRef)
            and okey.quantifier is outer_scan.quantifier):
        return None
    if not (isinstance(ikey, qe.ColRef)
            and ikey.quantifier is inner_scan.quantifier):
        return None
    allowed = {outer_scan.quantifier, inner_scan.quantifier}
    exprs = (list(node.exprs)
             + list(join.outer_keys) + list(join.inner_keys)
             + [p.expr for p in join.preds]
             + [p.expr for p in join.residual]
             + [p.expr for p in _chain_preds(join.children[0])]
             + [p.expr for p in _chain_preds(join.children[1])])
    if not _self_contained(exprs, allowed):
        return None
    return join, outer_scan, inner_scan, okey, ikey


def _partition_groupby_candidate(node: PlanOp):
    """``node`` is a GROUPBY whose first grouping key is a plain column
    of the scanned table — partition-wise aggregation keeps every group
    whole inside one partition, so it needs no merge step and handles
    the aggregates :func:`_aggregates_mergeable` rejects (AVG, float
    SUM, DISTINCT).  Returns ``(scan, key, resolved_group_exprs,
    splice)`` where ``splice(new_chain)`` re-parents the chain, or None.
    """
    if not isinstance(node, GroupBy) or not node.group_exprs:
        return None
    child = node.children[0]
    allowed = set()
    inner_exprs: List[qe.QExpr] = []
    resolve = lambda expr: expr  # noqa: E731 - mirrors _groupby_candidate
    owner, slot = node, 0
    if isinstance(child, DerivedScan):
        project = child.children[0]
        if not isinstance(project, Project) or project.subplans:
            return None
        names, derived = project.names, project.exprs
        quantifier = child.quantifier

        def resolve(expr):
            if (isinstance(expr, qe.ColRef) and expr.quantifier is quantifier
                    and expr.column in names):
                return derived[names.index(expr.column)]
            return expr

        allowed.add(quantifier)
        inner_exprs = list(derived) + [p.expr for p in child.preds]
        owner, slot = project, 0
        child = project.children[0]
    scan = _chain_scan(child)
    if scan is None:
        return None
    resolved = [resolve(expr) for expr in node.group_exprs]
    key = resolved[0]
    if not (isinstance(key, qe.ColRef) and key.quantifier is scan.quantifier):
        return None
    exprs = (resolved
             + [a.arg for a in node.aggregates]
             + inner_exprs
             + [p.expr for p in _chain_preds(child)])
    allowed.add(scan.quantifier)
    if not _self_contained(exprs, allowed):
        return None
    chain = owner.children[slot]

    def splice(new_chain: PlanOp) -> None:
        children = list(owner.children)
        children[slot] = new_chain
        owner.children = tuple(children)

    return scan, key, resolved, chain, splice


def parallelize_plan(plan: PlanOp, generator: PlanGenerator,
                     options) -> PlanOp:
    """Parallel glue phase: splice Exchange LOLEPOPs where eligible.

    Walks the refined plan top-down; for each candidate subtree it asks
    the ``Parallelism`` STAR whether to splice (``on`` always does,
    ``auto`` only when the cost model says the rows read amortize worker
    startup).  Candidates:

    - ``PROJECT`` over Filter*/SCAN        → GATHER above the PROJECT,
    - ``GROUPBY`` (mergeable aggregates)   → GATHER merging partial
      per-morsel aggregates,
    - ``ORDERBY`` [under LIMIT] over such a PROJECT → MERGEGATHER below
      the ORDERBY, sorting (and top-K truncating) inside the workers,
    - ``PROJECT`` over ``HASHJOIN`` of two chains → PARTITIONGATHER with
      a REPARTITION shuffle per side (skipped for sides already sharded
      on the join key — the co-located case),
    - ``GROUPBY`` (non-mergeable aggregates, grouped on a column) →
      PARTITIONGATHER over a REPARTITION on the grouping key.

    Ineligible subtrees are simply left at dop=1 — degradation is per
    subtree, never per query.  Returns the (possibly new) plan root.
    """
    if plan is None or options.parallelism == "off" or options.dop <= 1:
        return plan
    from repro.executor.parallel import fork_available

    if not fork_available():
        # Recorded by executor.parallel; the whole feature degrades to
        # serial on platforms without fork (the COW snapshot needs it).
        return plan

    cm = generator.cm
    dop = options.dop

    def mark_dop(subtree: PlanOp) -> None:
        for node in subtree.walk():
            node.props = node.props.evolve(dop=dop)

    def eligible(scan: TableScan) -> bool:
        pages = cm.catalog.statistics(scan.table.name).page_count
        return pages >= 2 and cm.should_parallelize(scan.input_rows, dop)

    def ask(node: PlanOp, scan: TableScan, build) -> PlanOp:
        plans = generator.evaluate(
            "Parallelism", plan=node, capable=True,
            mode=options.parallelism, eligible=eligible(scan),
            build=build)
        chosen = plans[0] if plans else node
        if isinstance(chosen, Exchange):
            mark_dop(chosen.children[0])
            backend = chosen.children[0].exec_backend
            if backend in ("batch", "compiled"):
                # EXPLAIN annotation: the exchange consumes rows, so a
                # backend→tuple adapter sits directly below it.
                chosen.fallback_mark = "%s-below" % backend
        if generator.trace is not None:
            generator.trace.event(
                "glue.parallel", node=node.describe(),
                scan=scan.table.name, eligible=eligible(scan),
                spliced=(chosen.describe() if isinstance(chosen, Exchange)
                         else None), dop=dop)
        return chosen

    def rewrite(node: PlanOp, limit_above: Optional[int] = None) -> PlanOp:
        # DML and fixpoint operators re-drive their inputs under locks or
        # across iterations; leave them (and everything below) serial.
        from repro.optimizer import plans as pl

        if isinstance(node, (pl.InsertPlan, pl.UpdatePlan, pl.DeletePlan,
                             pl.Recurse, Exchange)):
            return node

        # ORDERBY [under LIMIT] over a PROJECT pyramid: push the sort
        # (and the top-K cut) into the workers via MERGEGATHER.
        if isinstance(node, TopSort):
            child = node.children[0]
            scan = _project_candidate(child)
            if scan is not None:
                built = ask(child, scan, lambda gen: MergeGather(
                    gen.cm, child, dop, scan, node.positions,
                    limit_hint=limit_above))
                if built is not child:
                    node.children = (built,)
                return node

        if options.repartition:
            join_hit = _partition_join_candidate(node)
            if join_hit is not None:
                join, outer_scan, inner_scan, okey, ikey = join_hit
                n = (_shard_partitions(outer_scan, okey)
                     or _shard_partitions(inner_scan, ikey)
                     or dop)
                if n > 1:
                    def build_join(gen, node=node, join=join, n=n,
                                   outer_scan=outer_scan,
                                   inner_scan=inner_scan,
                                   okey=okey, ikey=ikey):
                        outer = gen.cheapest(
                            "RequirePartitioning", plan=join.children[0],
                            key=okey, n=n, scan=outer_scan)
                        inner = gen.cheapest(
                            "RequirePartitioning", plan=join.children[1],
                            key=ikey, n=n, scan=inner_scan)
                        sources = [p for p in (outer, inner)
                                   if isinstance(p, Repartition)]
                        colocated = [
                            s for p, s in ((outer, outer_scan),
                                           (inner, inner_scan))
                            if not isinstance(p, Repartition)]
                        join.children = (outer, inner)
                        return PartitionGather(
                            gen.cm, node, n, outer_scan, sources=sources,
                            colocated_scans=colocated)
                    return ask(node, outer_scan, build_join)
            group_hit = _partition_groupby_candidate(node)
            if group_hit is not None \
                    and _groupby_candidate(node, cm.catalog) is None:
                # Mergeable aggregates take the cheaper partial-aggregate
                # GATHER below; partition-wise handles the rest.
                scan, key, resolved, chain, splice = group_hit
                n = _shard_partitions(scan, key) or dop
                if n > 1:
                    def build_group(gen, node=node, scan=scan, key=key,
                                    resolved=resolved, chain=chain,
                                    splice=splice, n=n):
                        part = gen.cheapest(
                            "RequirePartitioning", plan=chain,
                            key=key, n=n, scan=scan)
                        sources = []
                        colocated = []
                        if isinstance(part, Repartition):
                            sources.append(part)
                            splice(part)
                        else:
                            colocated.append(scan)
                        gather = PartitionGather(
                            gen.cm, node, n, scan, sources=sources,
                            colocated_scans=colocated)
                        gather.tag_exprs = resolved
                        return gather
                    return ask(node, scan, build_group)

        scan = _project_candidate(node)
        if scan is not None:
            return ask(node, scan,
                       lambda gen: Gather(gen.cm, node, dop, scan))
        scan = _groupby_candidate(node, cm.catalog)
        if scan is not None:
            return ask(node, scan,
                       lambda gen: Gather(gen.cm, node, dop, scan,
                                          merge_groups=node))

        new_children = []
        changed = False
        for child in node.children:
            limit = node.limit if isinstance(node, LimitOp) else None
            rewritten = rewrite(child, limit)
            changed = changed or rewritten is not child
            new_children.append(rewritten)
        if changed:
            node.children = tuple(new_children)
        return node

    return rewrite(plan)
