"""Plan properties.

"Every table (either a base table or the result of a plan) has a set of
properties ... of three types: relational (tables joined, columns accessed,
predicates applied thus far), operational (order of tuples, site of result)
and estimated ((cumulative) cost, cardinality)."  Each LOLEPOP's property
function computes its output properties from its inputs.

Properties are immutable; LOLEPOP constructors derive new instances.  DBCs
can extend them through ``extras`` (a frozen dict) without touching the
core fields — the paper's "add a new property" extension.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional, Tuple

from repro.qgm.expressions import QExpr

#: An order spec: tuple of (expression key, ascending) pairs.  Expression
#: keys are canonical strings (repr of the QGM expression) so that order
#: produced by a SORT on ``q1.partno`` is recognized as satisfying a merge
#: join's requirement on the same expression.
OrderSpec = Tuple[Tuple[str, bool], ...]


def order_key(expr: QExpr) -> str:
    """Canonical key for an ordering expression."""
    return repr(expr)


class PlanProperties:
    """Immutable property bundle attached to every plan operator."""

    __slots__ = ("quantifiers", "preds_applied", "order", "site", "dop",
                 "partitioning", "cost", "card", "extras")

    def __init__(self, quantifiers: FrozenSet = frozenset(),
                 preds_applied: FrozenSet[int] = frozenset(),
                 order: OrderSpec = (), site: str = "local",
                 dop: int = 1,
                 partitioning: Optional[Tuple] = None,
                 cost: float = 0.0, card: float = 1.0,
                 extras: Optional[Dict[str, Any]] = None):
        self.quantifiers = quantifiers
        self.preds_applied = preds_applied
        self.order = order
        self.site = site
        #: Degree of parallelism of the stream this plan produces.  Like
        #: ``site``, it is an operational property: an Exchange LOLEPOP is
        #: the glue that re-establishes ``dop == 1`` for consumers that
        #: need a single stream (the paper's parallelism extension).
        self.dop = dop
        #: How the stream is split across workers/shards, or None for an
        #: unpartitioned stream.  ``("hash", (key expr keys...), n)`` —
        #: rows with equal key values land in the same one of ``n``
        #: partitions.  Mirrors ``site``: a Repartition LOLEPOP is the
        #: glue that establishes it, and the RequirePartitioning STAR is
        #: the glue rule that finds the cheapest way to satisfy it.
        self.partitioning = partitioning
        self.cost = cost
        self.card = card
        self.extras = dict(extras) if extras else {}

    def evolve(self, **changes: Any) -> "PlanProperties":
        """Copy with selected fields replaced (LOLEPOP property functions)."""
        values = {
            "quantifiers": self.quantifiers,
            "preds_applied": self.preds_applied,
            "order": self.order,
            "site": self.site,
            "dop": self.dop,
            "partitioning": self.partitioning,
            "cost": self.cost,
            "card": self.card,
            "extras": self.extras,
        }
        values.update(changes)
        return PlanProperties(**values)

    def satisfies_order(self, required: OrderSpec) -> bool:
        """Does this plan's order satisfy the required prefix order?"""
        if not required:
            return True
        if len(self.order) < len(required):
            return False
        return tuple(self.order[: len(required)]) == tuple(required)

    def interesting_key(self) -> Tuple:
        """Dedup key for the DP memo: plans with the same key compete."""
        return (self.quantifiers, self.preds_applied, self.order, self.site,
                self.dop, self.partitioning)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return ("<Props n=%d cost=%.2f card=%.1f order=%s site=%s dop=%d>"
                % (len(self.quantifiers), self.cost, self.card,
                   self.order, self.site, self.dop))
