"""LOLEPOPs: low-level plan operators.

"LOLEPOPs are a variation of the relational algebra (e.g. JOIN, UNION,
etc.) supplemented with physical operators such as SCAN, SORT, SHIP ...
Each LOLEPOP is expressed as a function that operates on 0 or more streams
of tuples and produces 0 or more new streams."  Every operator's
constructor *is* its property function: it derives the output
:class:`~repro.optimizer.properties.PlanProperties` (including cost and
cardinality) from its inputs.

Two stream flavours flow between operators:

- **binding streams** carry an environment mapping quantifiers to rows —
  these exist inside one QGM box (scans, joins, filters),
- **row streams** carry plain tuples — the output of PROJECT, GROUP BY and
  set operations, i.e. a *table* crossing a box boundary.

Join operators take a ``kind`` parameter separating the *join method*
(control structure: NL / merge / hash) from the *join kind* (function:
regular, exists, not_exists, all, scalar, left_outer, or any DBC-registered
kind) exactly as section 7 of the paper prescribes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.catalog.schema import IndexDef, TableDef
from repro.optimizer.cost import CostModel
from repro.optimizer.properties import PlanProperties, order_key
from repro.qgm import expressions as qe
from repro.qgm.model import Box, Predicate, Quantifier

#: Join kinds that add the inner quantifier's row to the binding stream.
BINDING_JOIN_KINDS = ("regular", "scalar", "left_outer")


class SubplanBinding:
    """A subquery quantifier's plan plus its correlation signature.

    ``correlation`` lists the outer-quantifier column references appearing
    free inside the subplan; the executor caches subquery results keyed by
    their values ("evaluate-on-demand ... avoid re-evaluating the subquery
    when the correlation values have not changed").
    """

    __slots__ = ("quantifier", "plan", "correlation")

    def __init__(self, quantifier: Quantifier, plan: "PlanOp",
                 correlation: Sequence[qe.ColRef]):
        self.quantifier = quantifier
        self.plan = plan
        self.correlation = list(correlation)


class PlanOp:
    """Base class for all LOLEPOPs."""

    op_name = "ABSTRACT"
    #: True when the operator emits plain tuples rather than bindings.
    produces_rows = False
    #: Which executor backend runs this node: "tuple" (the stream
    #: interpreter), "batch" (the vectorized engine) or "compiled" (the
    #: pipeline-fusion codegen backend).  The refinement phase flips this
    #: per subtree via the ExecBackend STAR.
    exec_backend = "tuple"

    def __init__(self, children: Sequence["PlanOp"],
                 props: PlanProperties):
        self.children: Tuple[PlanOp, ...] = tuple(children)
        self.props = props

    # -- display ------------------------------------------------------------------

    def describe(self) -> str:
        return self.op_name

    def explain(self, depth: int = 0) -> str:
        program = getattr(self, "codegen_program", None)
        lines = ["%s%s  (cost=%.2f card=%.1f%s%s%s%s%s%s)" % (
            "  " * depth, self.describe(), self.props.cost, self.props.card,
            (" order=" + str(list(self.props.order))) if self.props.order else "",
            " backend=%s" % self.exec_backend
            if self.exec_backend != "tuple" else "",
            " fused=%d" % program.n_pipelines if program is not None else "",
            " dop=%d" % self.props.dop if self.props.dop > 1 else "",
            " partitioned=%s:%d" % (self.props.partitioning[0],
                                    self.props.partitioning[2])
            if self.props.partitioning else "",
            " fallback=%s" % self.fallback_mark
            if getattr(self, "fallback_mark", None) else "",
        )]
        for child in self.children:
            lines.append(child.explain(depth + 1))
        for binding in getattr(self, "subplans", []):
            lines.append("%s[subquery %s:%s]" % ("  " * (depth + 1),
                                                 binding.quantifier.name,
                                                 binding.quantifier.qtype))
            lines.append(binding.plan.explain(depth + 2))
        return "\n".join(lines)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()
        for binding in getattr(self, "subplans", []):
            yield from binding.plan.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<%s cost=%.2f>" % (self.op_name, self.props.cost)


# ---------------------------------------------------------------------------
# Access operators
# ---------------------------------------------------------------------------


class TableScan(PlanOp):
    """SCAN: stored table → binding stream, applying pushed predicates.

    "SCAN changes a stored table to a memory-resident stream of tuples, but
    optionally can also subset columns and apply predicates."
    """

    op_name = "SCAN"

    def __init__(self, cm: CostModel, table: TableDef,
                 quantifier: Quantifier, preds: Sequence[Predicate]):
        self.table = table
        self.quantifier = quantifier
        self.preds = list(preds)
        rows = cm.table_cardinality(table.name)
        #: Stored-table cardinality from TableStatistics: the rows this
        #: scan *reads* (before predicates), which is what backend
        #: selection in "auto" mode must size against — a selective
        #: filter doesn't make a big scan cheap to read.
        self.input_rows = rows
        selectivity = 1.0
        for predicate in self.preds:
            selectivity *= cm.selectivity(predicate)
        partitioning = None
        if table.partition_by and table.partitions:
            # The stored table is hash-sharded: its scan stream is born
            # partitioned, which is what lets a co-located join skip the
            # Repartition glue entirely.
            partitioning = (
                "hash",
                (order_key(qe.ColRef(quantifier, table.partition_by)),),
                table.partitions,
            )
        props = PlanProperties(
            quantifiers=frozenset([quantifier]),
            preds_applied=frozenset(p.uid for p in self.preds),
            order=(),
            site=table.site,
            partitioning=partitioning,
            cost=cm.scan_cost(cm.table_pages(table.name), rows),
            card=max(0.1, rows * selectivity),
        )
        super().__init__((), props)

    def describe(self) -> str:
        extra = " + %d pred(s)" % len(self.preds) if self.preds else ""
        return "SCAN(%s as %s%s)" % (self.table.name, self.quantifier.name,
                                     extra)


class IndexScan(PlanOp):
    """Index access: equality prefix and/or a range on the next key column,
    then fetch + residual predicates."""

    op_name = "ISCAN"

    def __init__(self, cm: CostModel, table: TableDef,
                 quantifier: Quantifier, index: IndexDef,
                 eq_exprs: Sequence[qe.QExpr],
                 range_bounds: Optional[Tuple[Optional[qe.QExpr], bool,
                                              Optional[qe.QExpr], bool]],
                 matched_preds: Sequence[Predicate],
                 residual_preds: Sequence[Predicate],
                 ordered: bool):
        self.table = table
        self.quantifier = quantifier
        self.index = index
        self.eq_exprs = list(eq_exprs)
        self.range_bounds = range_bounds
        self.matched_preds = list(matched_preds)
        self.residual_preds = list(residual_preds)
        self.preds = self.matched_preds + self.residual_preds

        rows = cm.table_cardinality(table.name)
        match_sel = 1.0
        for predicate in self.matched_preds:
            match_sel *= cm.selectivity(predicate)
        matching = max(0.1, rows * match_sel)
        #: Rows the index access actually fetches (the matched range),
        #: before residual predicates — the "auto" backend decision input.
        self.input_rows = matching
        residual_sel = 1.0
        for predicate in self.residual_preds:
            residual_sel *= cm.selectivity(predicate)
        order: Tuple = ()
        if ordered:
            order = tuple(
                (order_key(qe.ColRef(quantifier, column)), True)
                for column in index.column_names
            )
        props = PlanProperties(
            quantifiers=frozenset([quantifier]),
            preds_applied=frozenset(p.uid for p in self.preds),
            order=order,
            site=table.site,
            cost=cm.index_scan_cost(matching, rows,
                                    cm.table_pages(table.name)),
            card=max(0.1, matching * residual_sel),
        )
        super().__init__((), props)

    def describe(self) -> str:
        return "ISCAN(%s as %s via %s, eq=%d%s)" % (
            self.table.name, self.quantifier.name, self.index.name,
            len(self.eq_exprs), ", range" if self.range_bounds else "")


class DerivedScan(PlanOp):
    """Access to a derived table: bind the child's rows to a quantifier."""

    op_name = "ACCESS"

    def __init__(self, cm: CostModel, child: "PlanOp", box: Box,
                 quantifier: Quantifier, preds: Sequence[Predicate] = ()):
        self.box = box
        self.quantifier = quantifier
        self.preds = list(preds)
        selectivity = 1.0
        for predicate in self.preds:
            selectivity *= cm.selectivity(predicate)
        props = PlanProperties(
            quantifiers=frozenset([quantifier]),
            preds_applied=frozenset(p.uid for p in self.preds),
            order=tuple(
                (order_key(qe.ColRef(quantifier,
                                     box.head.columns[pos].name)), asc)
                for pos, asc in _positional_order(child)
            ),
            site=child.props.site,
            cost=child.props.cost + cm.per_row_cpu(child.props.card),
            card=max(0.1, child.props.card * selectivity),
            extras={"replay_cost": child.props.extras.get(
                "replay_cost", child.props.cost)},
        )
        super().__init__((child,), props)

    def describe(self) -> str:
        return "ACCESS(%s as %s)" % (self.box.label(), self.quantifier.name)


def _positional_order(child: PlanOp) -> List[Tuple[int, bool]]:
    """Decode a row stream's positional order keys ("$i")."""
    result = []
    for key, asc in child.props.order:
        if key.startswith("$"):
            try:
                result.append((int(key[1:]), asc))
            except ValueError:
                break
        else:
            break
    return result


class DeltaScan(PlanOp):
    """Access to the delta of a recursive table (semi-naive evaluation)."""

    op_name = "DELTA"

    def __init__(self, cm: CostModel, box: Box, quantifier: Quantifier):
        self.box = box
        self.quantifier = quantifier
        self.preds: List[Predicate] = []
        props = PlanProperties(
            quantifiers=frozenset([quantifier]),
            cost=1.0,
            card=50.0,  # a guess; recursion sizes are unknowable statically
        )
        super().__init__((), props)

    def describe(self) -> str:
        return "DELTA(%s as %s)" % (self.box.label(), self.quantifier.name)


# ---------------------------------------------------------------------------
# Filters
# ---------------------------------------------------------------------------


class Filter(PlanOp):
    """FILTER: apply subquery-free predicates to a binding stream."""

    op_name = "FILTER"

    def __init__(self, cm: CostModel, child: PlanOp,
                 preds: Sequence[Predicate]):
        self.preds = list(preds)
        selectivity = 1.0
        for predicate in self.preds:
            selectivity *= cm.selectivity(predicate)
        props = child.props.evolve(
            preds_applied=child.props.preds_applied
            | frozenset(p.uid for p in self.preds),
            cost=child.props.cost + cm.per_row_cpu(child.props.card),
            card=max(0.1, child.props.card * selectivity),
        )
        super().__init__((child,), props)

    def describe(self) -> str:
        return "FILTER(%s)" % ", ".join(repr(p.expr) for p in self.preds)


class QuantifiedFilter(PlanOp):
    """The OR operator (section 7): evaluates predicates that mention
    subquery quantifiers — possibly disjunctively — over a binding stream.

    Each referenced subquery has a :class:`SubplanBinding`; evaluation is
    on demand with correlation-value caching.
    """

    op_name = "ORFILTER"

    def __init__(self, cm: CostModel, child: PlanOp,
                 preds: Sequence[Predicate],
                 subplans: Sequence[SubplanBinding]):
        self.preds = list(preds)
        self.subplans = list(subplans)
        selectivity = 1.0
        for predicate in self.preds:
            selectivity *= cm.selectivity(predicate)
        inner_cost = sum(b.plan.props.cost for b in self.subplans)
        inner_rows = sum(b.plan.props.card for b in self.subplans)
        props = child.props.evolve(
            preds_applied=child.props.preds_applied
            | frozenset(p.uid for p in self.preds),
            cost=(child.props.cost + inner_cost
                  + cm.per_row_cpu(child.props.card * (1.0 + inner_rows))),
            card=max(0.1, child.props.card * selectivity),
        )
        super().__init__((child,), props)

    def describe(self) -> str:
        return "ORFILTER(%s; %d subquery stream(s))" % (
            ", ".join(repr(p.expr) for p in self.preds), len(self.subplans))


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


def _join_props(cm: CostModel, outer: PlanOp, inner: PlanOp, kind: str,
                preds: Sequence[Predicate], cost: float,
                order) -> PlanProperties:
    selectivity = 1.0
    for predicate in preds:
        selectivity *= cm.selectivity(predicate)
    if kind == "regular":
        card = max(0.1, outer.props.card * inner.props.card * selectivity)
        quantifiers = outer.props.quantifiers | inner.props.quantifiers
    elif kind == "left_outer":
        card = max(outer.props.card,
                   outer.props.card * inner.props.card * selectivity)
        quantifiers = outer.props.quantifiers | inner.props.quantifiers
    elif kind == "scalar":
        card = outer.props.card
        quantifiers = outer.props.quantifiers | inner.props.quantifiers
    else:  # exists / not_exists / all / DBC kinds: semijoin-like
        card = max(0.1, outer.props.card * 0.5)
        quantifiers = outer.props.quantifiers
    return PlanProperties(
        quantifiers=quantifiers,
        preds_applied=(outer.props.preds_applied | inner.props.preds_applied
                       | frozenset(p.uid for p in preds)),
        order=order,
        site=outer.props.site,
        cost=cost,
        card=card,
    )


class NLJoin(PlanOp):
    """Nested-loop join; the inner stream is re-opened per outer row."""

    op_name = "NLJOIN"

    def __init__(self, cm: CostModel, outer: PlanOp, inner: PlanOp,
                 kind: str, preds: Sequence[Predicate]):
        self.kind = kind
        self.preds = list(preds)
        replay = inner.props.extras.get("replay_cost", inner.props.cost)
        cost = (outer.props.cost + inner.props.cost
                + max(0.0, outer.props.card - 1.0) * replay
                + cm.per_row_cpu(outer.props.card * inner.props.card))
        props = _join_props(cm, outer, inner, kind, preds, cost,
                            outer.props.order)
        super().__init__((outer, inner), props)

    def describe(self) -> str:
        return "NLJOIN[%s](%s)" % (self.kind,
                                   ", ".join(repr(p.expr) for p in self.preds))


class MergeJoin(PlanOp):
    """Sort-merge join; requires both inputs ordered on the join keys."""

    op_name = "MERGEJOIN"

    def __init__(self, cm: CostModel, outer: PlanOp, inner: PlanOp,
                 kind: str, outer_keys: Sequence[qe.QExpr],
                 inner_keys: Sequence[qe.QExpr],
                 preds: Sequence[Predicate],
                 residual: Sequence[Predicate] = ()):
        self.kind = kind
        self.outer_keys = list(outer_keys)
        self.inner_keys = list(inner_keys)
        self.preds = list(preds)
        self.residual = list(residual)
        cost = (outer.props.cost + inner.props.cost
                + cm.per_row_cpu(outer.props.card + inner.props.card))
        props = _join_props(cm, outer, inner, kind,
                            list(preds) + list(residual), cost,
                            outer.props.order)
        super().__init__((outer, inner), props)

    def describe(self) -> str:
        return "MERGEJOIN[%s](%s)" % (
            self.kind,
            ", ".join("%r=%r" % (o, i)
                      for o, i in zip(self.outer_keys, self.inner_keys)))


class HashJoin(PlanOp):
    """Hash join: build on the inner, probe with the outer."""

    op_name = "HASHJOIN"

    def __init__(self, cm: CostModel, outer: PlanOp, inner: PlanOp,
                 kind: str, outer_keys: Sequence[qe.QExpr],
                 inner_keys: Sequence[qe.QExpr],
                 preds: Sequence[Predicate],
                 residual: Sequence[Predicate] = ()):
        self.kind = kind
        self.outer_keys = list(outer_keys)
        self.inner_keys = list(inner_keys)
        self.preds = list(preds)
        self.residual = list(residual)
        cost = (outer.props.cost + inner.props.cost
                + cm.hash_cost(inner.props.card, outer.props.card))
        props = _join_props(cm, outer, inner, kind,
                            list(preds) + list(residual), cost,
                            outer.props.order)
        super().__init__((outer, inner), props)

    def describe(self) -> str:
        return "HASHJOIN[%s](%s)" % (
            self.kind,
            ", ".join("%r=%r" % (o, i)
                      for o, i in zip(self.outer_keys, self.inner_keys)))


class SubqueryJoin(PlanOp):
    """Join against a subquery stream by *kind* (exists/all/scalar/...).

    This is the evaluate-on-demand operator: the inner plan is evaluated
    lazily per outer row, with caching keyed on the correlation values.
    """

    op_name = "SUBQJOIN"

    def __init__(self, cm: CostModel, outer: PlanOp,
                 binding: SubplanBinding, kind: str,
                 preds: Sequence[Predicate]):
        self.kind = kind
        self.binding = binding
        self.subplans = [binding]
        self.preds = list(preds)
        inner = binding.plan
        correlated = bool(binding.correlation)
        evaluations = outer.props.card if correlated else 1.0
        cost = (outer.props.cost
                + inner.props.cost * min(evaluations,
                                         max(1.0, outer.props.card * 0.2))
                + cm.per_row_cpu(outer.props.card * max(1.0, inner.props.card)))
        selectivity = 1.0
        for predicate in self.preds:
            selectivity *= cm.selectivity(predicate)
        quantifiers = outer.props.quantifiers
        card = max(0.1, outer.props.card
                   * (selectivity if kind in ("exists", "scalar") else 0.5))
        if kind == "scalar":
            card = outer.props.card
        props = PlanProperties(
            quantifiers=quantifiers,
            preds_applied=outer.props.preds_applied
            | frozenset(p.uid for p in self.preds),
            order=outer.props.order,
            site=outer.props.site,
            cost=cost,
            card=card,
        )
        super().__init__((outer,), props)

    def describe(self) -> str:
        return "SUBQJOIN[%s](%s as %s; %s)" % (
            self.kind, self.binding.plan.op_name,
            self.binding.quantifier.name,
            ", ".join(repr(p.expr) for p in self.preds) or "non-empty")


# ---------------------------------------------------------------------------
# Order / site / materialization operators
# ---------------------------------------------------------------------------


class Sort(PlanOp):
    """SORT a binding stream on expression keys (merge-join glue)."""

    op_name = "SORT"

    def __init__(self, cm: CostModel, child: PlanOp,
                 keys: Sequence[Tuple[qe.QExpr, bool]]):
        self.keys = list(keys)
        props = child.props.evolve(
            order=tuple((order_key(expr), asc) for expr, asc in self.keys),
            cost=child.props.cost + cm.sort_cost(child.props.card),
            extras={"replay_cost": cm.per_row_cpu(child.props.card)},
        )
        super().__init__((child,), props)

    def describe(self) -> str:
        return "SORT(%s)" % ", ".join(
            "%r %s" % (expr, "ASC" if asc else "DESC")
            for expr, asc in self.keys)


class TopSort(PlanOp):
    """Final ORDER BY over a row stream (positional keys)."""

    op_name = "ORDERBY"

    def __init__(self, cm: CostModel, child: PlanOp,
                 positions: Sequence[Tuple[int, bool]]):
        self.positions = list(positions)
        props = child.props.evolve(
            order=tuple(("$%d" % pos, asc) for pos, asc in self.positions),
            cost=child.props.cost + cm.sort_cost(child.props.card),
        )
        super().__init__((child,), props)
    produces_rows = True

    def describe(self) -> str:
        return "ORDERBY(%s)" % ", ".join(
            "%d %s" % (pos + 1, "ASC" if asc else "DESC")
            for pos, asc in self.positions)


class Ship(PlanOp):
    """SHIP a stream to another site (simulated distribution)."""

    op_name = "SHIP"

    def __init__(self, cm: CostModel, child: PlanOp, to_site: str):
        self.to_site = to_site
        props = child.props.evolve(
            site=to_site,
            partitioning=None,
            cost=child.props.cost + cm.ship_cost(child.props.card, to_site),
        )
        super().__init__((child,), props)
        self.produces_rows = child.produces_rows

    def describe(self) -> str:
        return "SHIP(to %s)" % self.to_site


class Temp(PlanOp):
    """TEMP: materialize a stream so it can be replayed cheaply."""

    op_name = "TEMP"

    def __init__(self, cm: CostModel, child: PlanOp):
        props = child.props.evolve(
            cost=child.props.cost + cm.per_row_cpu(child.props.card),
            extras={"replay_cost": cm.per_row_cpu(child.props.card)},
        )
        super().__init__((child,), props)
        self.produces_rows = child.produces_rows

    def describe(self) -> str:
        return "TEMP"


# ---------------------------------------------------------------------------
# Exchange operators (intra-query parallelism glue)
# ---------------------------------------------------------------------------


class Exchange(PlanOp):
    """Base of the Exchange family: glue LOLEPOPs that change the ``dop``
    property the way SHIP changes ``site``.

    The subtree below runs at ``self.dop`` over page-range morsels of
    ``morsel_scan`` (a heap-table SCAN marked as the partitioned source);
    the Exchange re-establishes a single dop=1 stream for its consumer.
    When the runtime cannot fork, or a worker pool cannot be built, the
    operator degrades to executing its child inline at dop=1 — counted in
    ``stats.parallel_fallbacks`` and visible as a ``fallback=`` EXPLAIN
    mark on the node.
    """

    op_name = "EXCHANGE"
    #: "gather" | "merge" | "repartition" — how worker streams recombine.
    mode = "gather"

    def __init__(self, cm: CostModel, child: PlanOp, dop: int,
                 morsel_scan: TableScan):
        self.dop = dop
        self.morsel_scan = morsel_scan
        props = child.props.evolve(
            dop=1,
            partitioning=None,
            cost=(child.props.cost / float(max(1, dop))
                  + cm.parallel_startup(dop)
                  + cm.exchange_cost(child.props.card)),
        )
        super().__init__((child,), props)
        self.produces_rows = child.produces_rows

    def describe(self) -> str:
        return "%s(dop=%d over %s)" % (self.op_name, self.dop,
                                       self.morsel_scan.table.name)


class Gather(Exchange):
    """GATHER: concatenate worker result streams in morsel order.

    Morsel order equals serial scan order, so the gathered stream is
    byte-identical to dop=1 execution.  With ``merge_groups`` set (a
    GroupBy whose partial results the workers computed per-morsel), the
    gather instead merges partial groups by key, combining order-safe
    accumulators (COUNT/MIN/MAX/integer SUM) — the paper's "push work
    below the glue" move applied to aggregation.
    """

    op_name = "GATHER"
    mode = "gather"

    def __init__(self, cm: CostModel, child: PlanOp, dop: int,
                 morsel_scan: TableScan,
                 merge_groups: Optional["GroupBy"] = None):
        self.merge_groups = merge_groups
        super().__init__(cm, child, dop, morsel_scan)

    def describe(self) -> str:
        base = Exchange.describe(self)
        return base + (" merge-partial-aggs" if self.merge_groups else "")


class MergeGather(Exchange):
    """MERGEGATHER: merge locally-sorted worker runs, preserving order.

    Spliced under ORDER BY (+ LIMIT): each worker sorts its morsel's rows
    on ``positions`` and, with ``limit_hint``, keeps only the local top-K,
    so at most dop*K rows cross the exchange.  The stable merge emits
    ties in morsel (= scan) order, matching the serial stable sort.
    """

    op_name = "MERGEGATHER"
    mode = "merge"

    def __init__(self, cm: CostModel, child: PlanOp, dop: int,
                 morsel_scan: TableScan,
                 positions: Sequence[Tuple[int, bool]],
                 limit_hint: Optional[int] = None):
        self.positions = list(positions)
        self.limit_hint = limit_hint
        super().__init__(cm, child, dop, morsel_scan)
        self.props = self.props.evolve(
            order=tuple(("$%d" % pos, asc) for pos, asc in self.positions))

    def describe(self) -> str:
        base = Exchange.describe(self)
        if self.limit_hint is not None:
            base += " top-%d" % self.limit_hint
        return base


class Repartition(Exchange):
    """REPARTITION: hash-shuffle a binding stream on key expressions so
    each of ``dop`` consumer workers sees exactly the rows whose keys
    hash to its partition — the glue that *establishes* the partitioning
    property, the way SHIP establishes site.

    Executed as real inter-process data movement: producer workers scan
    page-range morsels of ``morsel_scan``, evaluate ``keys`` per binding
    and ship the row (wire-encoded, batched, sequence-tagged) to the
    destination partition's queue.  Spliced only under a PartitionGather;
    at runtime a consumer worker resolves its partition's feed through
    the execution context, and when no feed is present (serial or
    fallback execution) the operator is a transparent pass-through of
    its child.
    """

    op_name = "REPARTITION"
    mode = "repartition"

    def __init__(self, cm: CostModel, child: PlanOp, dop: int,
                 morsel_scan: TableScan, keys: Sequence[qe.QExpr]):
        self.keys = list(keys)
        super().__init__(cm, child, dop, morsel_scan)
        #: Estimated bytes this shuffle puts on the wire; the benchmark
        #: checks it against the measured transfer (within 2x).
        self.est_wire_bytes = cm.estimate_wire_bytes(
            child.props.card,
            [column.dtype for column in morsel_scan.table.columns])
        self.props = self.props.evolve(
            dop=dop,
            partitioning=("hash",
                          tuple(order_key(k) for k in self.keys), dop),
            cost=(child.props.cost / float(max(1, dop))
                  + cm.repartition_cost(child.props.card,
                                        self.est_wire_bytes, dop)),
        )

    def describe(self) -> str:
        return "%s(dop=%d on %s)" % (
            self.op_name, self.dop,
            ", ".join(repr(k) for k in self.keys) or "<no keys>")


class PartitionGather(Exchange):
    """PARTITIONGATHER: run one consumer stream per hash partition and
    merge the per-partition results back into serial order.

    The child is a PROJECT over a partition-wise HASHJOIN (whose inputs
    are REPARTITION nodes, or co-located sharded scans) or a
    partition-wise GROUPBY over a repartitioned stream.  Each worker
    executes the child restricted to one partition; output rows carry
    serial sequence tags so the final merge reproduces dop=1 output
    byte-for-byte.  ``colocated`` marks plans where every input is
    already sharded on the join keys with matching partition counts —
    no data moves at all.
    """

    op_name = "PARTITIONGATHER"
    mode = "partition"

    def __init__(self, cm: CostModel, child: PlanOp, dop: int,
                 morsel_scan: TableScan,
                 sources: Sequence["Repartition"] = (),
                 colocated_scans: Sequence[TableScan] = ()):
        #: The Repartition nodes inside ``child`` (empty when fully
        #: co-located).
        self.sources = list(sources)
        #: SCANs of sharded tables already partitioned on the routing
        #: key: each consumer restricts them to its own partition
        #: instead of shuffling.
        self.colocated_scans = list(colocated_scans)
        self.colocated = not self.sources
        #: For the partition-wise GROUPBY shape: the grouping key
        #: expressions resolved to the scan quantifier, used by workers
        #: to tag each output group with its serial first-seen sequence.
        self.tag_exprs = None
        super().__init__(cm, child, dop, morsel_scan)
        self.est_wire_bytes = sum(s.est_wire_bytes for s in self.sources)

    def describe(self) -> str:
        return "%s(dop=%d%s)" % (
            self.op_name, self.dop,
            " colocated" if self.colocated else
            " sources=%d" % len(self.sources))


# ---------------------------------------------------------------------------
# Box-boundary operators (row producers)
# ---------------------------------------------------------------------------


class Project(PlanOp):
    """Evaluate head expressions: binding stream → row stream."""

    op_name = "PROJECT"
    produces_rows = True

    def __init__(self, cm: CostModel, child: PlanOp,
                 exprs: Sequence[qe.QExpr], names: Sequence[str],
                 subplans: Sequence[SubplanBinding] = ()):
        self.exprs = list(exprs)
        self.names = list(names)
        self.subplans = list(subplans)
        # Translate a child order on head expressions into positional order.
        child_order = list(child.props.order)
        positional = []
        expr_keys = [order_key(e) for e in self.exprs]
        for key, asc in child_order:
            if key in expr_keys:
                positional.append(("$%d" % expr_keys.index(key), asc))
            else:
                break
        props = child.props.evolve(
            order=tuple(positional),
            partitioning=None,
            cost=child.props.cost + cm.per_row_cpu(child.props.card),
        )
        super().__init__((child,), props)

    def describe(self) -> str:
        return "PROJECT(%s)" % ", ".join(self.names)


class Distinct(PlanOp):
    """Duplicate elimination over a row stream (hash based)."""

    op_name = "DISTINCT"
    produces_rows = True

    def __init__(self, cm: CostModel, child: PlanOp):
        props = child.props.evolve(
            cost=child.props.cost + cm.hash_cost(child.props.card, 0.0),
            card=max(0.1, child.props.card * 0.9),
        )
        super().__init__((child,), props)

    def describe(self) -> str:
        return "DISTINCT"


class LimitOp(PlanOp):
    op_name = "LIMIT"
    produces_rows = True

    def __init__(self, cm: CostModel, child: PlanOp, limit: int):
        self.limit = limit
        props = child.props.evolve(card=min(child.props.card, float(limit)))
        super().__init__((child,), props)

    def describe(self) -> str:
        return "LIMIT(%d)" % self.limit


class GroupBy(PlanOp):
    """Hash aggregation: binding stream → row stream of group results."""

    op_name = "GROUPBY"
    produces_rows = True

    def __init__(self, cm: CostModel, child: PlanOp,
                 group_exprs: Sequence[qe.QExpr],
                 aggregates: Sequence[qe.AggCall],
                 names: Sequence[str]):
        self.group_exprs = list(group_exprs)
        self.aggregates = list(aggregates)
        self.names = list(names)
        if self.group_exprs:
            groups = max(1.0, child.props.card * 0.1)
        else:
            groups = 1.0
        props = child.props.evolve(
            order=(),
            partitioning=None,
            cost=child.props.cost + cm.hash_cost(child.props.card, 0.0),
            card=groups,
        )
        super().__init__((child,), props)

    def describe(self) -> str:
        return "GROUPBY(keys=%d, aggs=%s)" % (
            len(self.group_exprs),
            ", ".join(a.name for a in self.aggregates))


class SetOpPlan(PlanOp):
    """UNION / INTERSECT / EXCEPT over row streams."""

    op_name = "SETOP"
    produces_rows = True

    def __init__(self, cm: CostModel, op: str, all_rows: bool,
                 children: Sequence[PlanOp]):
        self.op = op
        self.all_rows = all_rows
        cards = [c.props.card for c in children]
        if op == "union":
            card = sum(cards)
        elif op == "intersect":
            card = min(cards)
        else:  # except
            card = max(0.1, cards[0] - sum(cards[1:]) * 0.5)
        cost = sum(c.props.cost for c in children)
        if not all_rows or op != "union":
            cost += cm.hash_cost(sum(cards), 0.0)
        props = PlanProperties(
            site=children[0].props.site,
            cost=cost,
            card=max(0.1, card),
        )
        super().__init__(tuple(children), props)

    def describe(self) -> str:
        return "%s%s" % (self.op.upper(), " ALL" if self.all_rows else "")


class TableFunctionPlan(PlanOp):
    """Invoke a DBC table function over materialized input tables."""

    op_name = "TFUNC"
    produces_rows = True

    def __init__(self, cm: CostModel, function_name: str,
                 scalar_args: Sequence[qe.QExpr],
                 children: Sequence[PlanOp], box: Box):
        self.function_name = function_name
        self.scalar_args = list(scalar_args)
        self.box = box
        card = sum(c.props.card for c in children) or 10.0
        cost = sum(c.props.cost for c in children) + cm.per_row_cpu(card)
        props = PlanProperties(cost=cost, card=max(0.1, card))
        super().__init__(tuple(children), props)

    def describe(self) -> str:
        return "TFUNC(%s)" % self.function_name


class Recurse(PlanOp):
    """Fixpoint evaluation of a recursive table expression (semi-naive)."""

    op_name = "RECURSE"
    produces_rows = True

    def __init__(self, cm: CostModel, box: Box,
                 base_plans: Sequence[PlanOp],
                 recursive_plans: Sequence[PlanOp],
                 naive: bool = False):
        self.box = box
        self.base_plans = list(base_plans)
        self.recursive_plans = list(recursive_plans)
        self.naive = naive
        base_card = sum(p.props.card for p in base_plans)
        card = max(1.0, base_card * 10.0)  # fixpoint size is a guess
        cost = (sum(p.props.cost for p in base_plans)
                + 10.0 * sum(p.props.cost for p in recursive_plans))
        props = PlanProperties(cost=cost, card=card)
        super().__init__(tuple(base_plans) + tuple(recursive_plans), props)

    def describe(self) -> str:
        mode = "naive" if self.naive else "semi-naive"
        return "RECURSE[%s](%s)" % (mode, self.box.label())


# ---------------------------------------------------------------------------
# DML operators
# ---------------------------------------------------------------------------


class InsertPlan(PlanOp):
    op_name = "INSERT"
    produces_rows = True

    def __init__(self, cm: CostModel, table: TableDef,
                 column_positions: Sequence[int],
                 source: Optional[PlanOp],
                 literal_rows: Optional[List[List[qe.QExpr]]]):
        self.table = table
        self.column_positions = list(column_positions)
        self.literal_rows = literal_rows
        children = (source,) if source is not None else ()
        card = (source.props.card if source is not None
                else float(len(literal_rows or [])))
        cost = (source.props.cost if source is not None else 0.0) + card
        super().__init__(children, PlanProperties(cost=cost, card=card))

    def describe(self) -> str:
        return "INSERT(%s)" % self.table.name


class UpdatePlan(PlanOp):
    op_name = "UPDATE"
    produces_rows = True

    def __init__(self, cm: CostModel, table: TableDef, target: PlanOp,
                 target_quantifier: Quantifier,
                 assignments: Sequence[Tuple[str, qe.QExpr]],
                 subplans: Sequence[SubplanBinding] = ()):
        self.table = table
        self.target_quantifier = target_quantifier
        self.assignments = list(assignments)
        self.subplans = list(subplans)
        props = PlanProperties(cost=target.props.cost + target.props.card,
                               card=target.props.card)
        super().__init__((target,), props)

    def describe(self) -> str:
        return "UPDATE(%s SET %s)" % (
            self.table.name,
            ", ".join(name for name, _ in self.assignments))


class DeletePlan(PlanOp):
    op_name = "DELETE"
    produces_rows = True

    def __init__(self, cm: CostModel, table: TableDef, target: PlanOp,
                 target_quantifier: Quantifier,
                 subplans: Sequence[SubplanBinding] = ()):
        self.table = table
        self.target_quantifier = target_quantifier
        self.subplans = list(subplans)
        props = PlanProperties(cost=target.props.cost + target.props.card,
                               card=target.props.card)
        super().__init__((target,), props)

    def describe(self) -> str:
        return "DELETE(%s)" % self.table.name
