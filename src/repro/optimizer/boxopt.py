"""Bottom-up, per-box plan optimization.

"The optimizer algorithm optimizes each QGM operation independently, bottom
up, using a rule-driven plan generator and rules peculiar to that
operation's type."  This module walks the QGM graph from the leaves to the
root, producing one (best) row-stream plan per box, with:

- access-path selection and join enumeration for SELECT boxes,
- subqueries applied as *join kinds* (SUBQJOIN) when a predicate references
  a single subquery quantifier, or through the OR operator
  (QuantifiedFilter) for disjunctive/multi-quantifier predicates,
- GROUP BY, set operations, CHOOSE resolution, table functions,
- recursive table expressions planned with DELTA scans for semi-naive
  fixpoint execution,
- INSERT/UPDATE/DELETE wrappers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import OptimizerError
from repro.optimizer.cost import CostModel
from repro.optimizer.enumerator import JoinEnumerator, prune_plans
from repro.optimizer.plans import (
    DeltaScan,
    DerivedScan,
    Distinct,
    Filter,
    GroupBy,
    InsertPlan,
    LimitOp,
    DeletePlan,
    PlanOp,
    Project,
    QuantifiedFilter,
    Recurse,
    SetOpPlan,
    SubplanBinding,
    SubqueryJoin,
    TableFunctionPlan,
    TableScan,
    TopSort,
    UpdatePlan,
)
from repro.optimizer.stars import PlanGenerator, default_star_array
from repro.qgm import expressions as qe
from repro.qgm.model import (
    QGM,
    BaseTableBox,
    Box,
    ChooseBox,
    DeleteBox,
    DistinctMode,
    GroupByBox,
    InsertBox,
    Predicate,
    Quantifier,
    SelectBox,
    SetOpBox,
    TableFunctionBox,
    UpdateBox,
)

#: Mapping from built-in QGM iterator types to executor join kinds.
QTYPE_TO_KIND = {
    "E": "exists",
    "NE": "not_exists",
    "A": "all",
    "S": "scalar",
}


class OptimizerSettings:
    """Knobs exposed by the paper's search-strategy discussion.

    ``forced_join_method`` restricts JoinRoot to one join method
    ('nl', 'merge' or 'hash'; nested loops stays as fallback when the
    forced method is inapplicable, e.g. merge/hash without equi-join
    keys).  ``join_enumeration`` selects System-R dynamic programming
    ('dp') or a cheapest-next greedy heuristic ('greedy').
    """

    def __init__(self, allow_bushy: bool = False,
                 allow_cartesian: bool = False,
                 rank_cutoff: float = 100.0,
                 sort_by_rank: bool = True,
                 naive_recursion: bool = False,
                 forced_join_method: Optional[str] = None,
                 join_enumeration: str = "dp"):
        self.allow_bushy = allow_bushy
        self.allow_cartesian = allow_cartesian
        self.rank_cutoff = rank_cutoff
        self.sort_by_rank = sort_by_rank
        self.naive_recursion = naive_recursion
        self.forced_join_method = forced_join_method
        self.join_enumeration = join_enumeration


class _PlannerContext:
    """What the STAR rules see: cost model, access methods, settings."""

    def __init__(self, cm: CostModel, engine, settings: OptimizerSettings):
        self.cm = cm
        self._engine = engine
        self.settings = settings

    def access_methods(self, table_name: str):
        if self._engine is None:
            return []
        return self._engine.access_methods(table_name)


class Optimizer:
    """Plans one QGM graph."""

    def __init__(self, catalog, engine=None,
                 settings: Optional[OptimizerSettings] = None,
                 functions=None,
                 stars: Optional[dict] = None,
                 trace=None):
        self.catalog = catalog
        self.engine = engine
        self.functions = functions
        self.settings = settings or OptimizerSettings()
        self.cm = CostModel(catalog)
        context = _PlannerContext(self.cm, engine, self.settings)
        self.generator = PlanGenerator(stars or default_star_array(), context)
        #: Optional :class:`repro.obs.Trace` for optimizer decisions;
        #: shared with the generator (STAR expansions) and enumerators.
        self.trace = trace
        self.generator.trace = trace
        self.enumerator_stats: List = []
        self._memo: Dict[Box, PlanOp] = {}
        self._recursion_stack: Set[Box] = set()

    # -- entry point -----------------------------------------------------------------

    def optimize(self, qgm: QGM) -> PlanOp:
        """Produce the best executable plan for a QGM graph."""
        if qgm.root is None:
            raise OptimizerError("QGM has no root")
        plan = self.plan_box(qgm.root)
        if qgm.order_by:
            plan = TopSort(self.cm, plan, qgm.order_by)
        if qgm.limit is not None:
            plan = LimitOp(self.cm, plan, qgm.limit)
        if self.trace is not None:
            self.trace.event(
                "optimizer.plan", cost=round(plan.props.cost, 2),
                card=round(plan.props.card, 1),
                breakdown=[(node.describe(), round(node.props.cost, 2))
                           for node in plan.walk()])
        return plan

    # -- per-box dispatch ---------------------------------------------------------------

    def plan_box(self, box: Box) -> PlanOp:
        cached = self._memo.get(box)
        if cached is not None:
            return cached
        method = getattr(self, "_plan_%s" % box.kind, None)
        if method is None:
            planner = _EXTENSION_BOX_PLANNERS.get(box.kind)
            if planner is None:
                raise OptimizerError("no planner for box kind %s" % box.kind)
            plan = planner(self, box)
        else:
            plan = method(box)
        self._memo[box] = plan
        return plan

    # -- base table (standalone: scan + project) ---------------------------------------

    def _plan_base_table(self, box: BaseTableBox) -> PlanOp:
        quantifier = Quantifier("_scan_%s" % box.table.name, "F", box)
        scan = TableScan(self.cm, box.table, quantifier, [])
        exprs = [qe.ColRef(quantifier, c.name, c.dtype)
                 for c in box.head.columns]
        return Project(self.cm, scan, exprs, box.head.column_names())

    # -- SELECT ---------------------------------------------------------------------------

    def _plan_select(self, box: SelectBox) -> PlanOp:
        setformers = box.setformers()
        sub_quantifiers = box.subquery_quantifiers()
        own = set(box.quantifiers)

        # 1. Classify predicates by the *own* iterators they reference.
        local_preds: Dict[Quantifier, List[Predicate]] = {
            q: [] for q in setformers}
        join_preds: List[Predicate] = []
        subquery_preds: List[Predicate] = []
        free_preds: List[Predicate] = []
        for predicate in box.predicates:
            refs = predicate.quantifiers() & own
            sub_refs = [q for q in refs if not q.is_setformer]
            if sub_refs:
                subquery_preds.append(predicate)
            elif len(refs) == 1:
                local_preds[next(iter(refs))].append(predicate)
            elif len(refs) >= 2:
                join_preds.append(predicate)
            else:
                free_preds.append(predicate)

        # Outer join boxes keep their own execution discipline.
        if box.annotations.get("operation") == "left_outer_join":
            return self._plan_outer_join(box, local_preds, join_preds,
                                         subquery_preds, free_preds)

        # 2. Access plans per setformer (AccessRoot STAR).
        if setformers:
            single_plans: Dict[Quantifier, List[PlanOp]] = {}
            for quantifier in setformers:
                single_plans[quantifier] = self._access_plans(
                    quantifier, local_preds[quantifier])
            # Lateral dependencies: a derived setformer (e.g. a subquery
            # converted to a join by rewrite Rule 1) may still reference
            # sibling iterators inside its subtree.  The enumerator must
            # bind those siblings first, on the outer side of an NL join.
            own_setformers = set(setformers)
            dependencies: Dict[Quantifier, frozenset] = {}
            for quantifier in setformers:
                if isinstance(quantifier.input, BaseTableBox):
                    continue
                escaping = {ref.quantifier for ref
                            in self._correlation_refs(quantifier.input)}
                deps = frozenset((escaping & own_setformers)
                                 - {quantifier})
                if deps:
                    dependencies[quantifier] = deps
            enumerator = JoinEnumerator(
                self.generator,
                allow_bushy=self.settings.allow_bushy,
                allow_cartesian=self.settings.allow_cartesian,
                strategy=self.settings.join_enumeration,
                dependencies=dependencies,
                trace=self.trace)
            plans = enumerator.enumerate(single_plans, join_preds)
            self.enumerator_stats.append(enumerator.stats)
            plan = min(plans, key=lambda p: p.props.cost)
            if self.trace is not None:
                self.trace.event(
                    "optimizer.winner", box=box.label(),
                    plan=plan.describe(),
                    cost=round(plan.props.cost, 2),
                    card=round(plan.props.card, 1),
                    considered=len(plans))
        else:
            # SELECT without FROM: one empty binding.
            plan = _SingletonPlan(self.cm)

        # 3. Subquery predicates: join kinds, then the OR operator.
        plan = self._apply_subqueries(plan, box, sub_quantifiers,
                                      subquery_preds)

        # 4. Free predicates (pure correlation / constants).
        if free_preds:
            plan = Filter(self.cm, plan, free_preds)

        # 5. Head + duplicate handling.
        return self._finish_box(plan, box)

    def _access_plans(self, quantifier: Quantifier,
                      preds: List[Predicate]) -> List[PlanOp]:
        child_plan = None
        if not isinstance(quantifier.input, BaseTableBox):
            if quantifier.input in self._recursion_stack:
                delta: PlanOp = DeltaScan(self.cm, quantifier.input,
                                          quantifier)
                if preds:
                    delta = Filter(self.cm, delta, preds)
                return [delta]
            child_plan = self.plan_box(quantifier.input)
        plans = self.generator.evaluate(
            "AccessRoot", quantifier=quantifier, preds=preds,
            child_plan=child_plan, want_order=True)
        if not plans:
            raise OptimizerError(
                "no access plan for iterator %s" % quantifier.name)
        return prune_plans(plans)

    def _subplan_binding(self, quantifier: Quantifier) -> SubplanBinding:
        plan = self.plan_box(quantifier.input)
        correlation = self._correlation_refs(quantifier.input)
        return SubplanBinding(quantifier, plan, correlation)

    def _correlation_refs(self, box: Box) -> List[qe.ColRef]:
        """Column references inside ``box``'s subtree that escape it."""
        subtree: Set[Box] = set()
        stack = [box]
        while stack:
            current = stack.pop()
            if current in subtree:
                continue
            subtree.add(current)
            for quantifier in current.quantifiers:
                stack.append(quantifier.input)
        inside = {q for b in subtree for q in b.quantifiers}
        refs: List[qe.ColRef] = []
        seen: Set[str] = set()

        def scan_expr(expr: Optional[qe.QExpr]) -> None:
            if expr is None:
                return
            for node in qe.walk(expr):
                if isinstance(node, qe.ColRef) and node.quantifier not in inside:
                    key = repr(node)
                    if key not in seen:
                        seen.add(key)
                        refs.append(node)

        for member in subtree:
            for predicate in member.predicates:
                scan_expr(predicate.expr)
            for column in member.head.columns:
                scan_expr(column.expr)
            if isinstance(member, GroupByBox):
                for key in member.group_keys:
                    scan_expr(key)
        return refs

    def _apply_subqueries(self, plan: PlanOp, box: Box,
                          sub_quantifiers: List[Quantifier],
                          subquery_preds: List[Predicate]) -> PlanOp:
        if not sub_quantifiers and not subquery_preds:
            return plan
        bindings = {q: self._subplan_binding(q) for q in sub_quantifiers}
        remaining = list(subquery_preds)
        handled: Set[Quantifier] = set()

        # Head expressions may also reference subquery quantifiers (scalar
        # subqueries in the select list); those are bound by the projection,
        # not here.
        head_refs: Set[Quantifier] = set()
        for column in box.head.columns:
            if column.expr is not None:
                head_refs |= {q for q in qe.quantifiers_in(column.expr)
                              if q in bindings}

        # Conjuncts referencing exactly one subquery quantifier become
        # kind-parameterized joins (section 7).
        by_quantifier: Dict[Quantifier, List[Predicate]] = {}
        complex_preds: List[Predicate] = []
        for predicate in remaining:
            refs = [q for q in predicate.quantifiers() if q in bindings]
            if len(refs) == 1 and not self._needs_general_evaluation(
                    predicate, set(bindings)):
                by_quantifier.setdefault(refs[0], []).append(predicate)
            else:
                complex_preds.append(predicate)

        complex_refs: Set[Quantifier] = set()
        for predicate in complex_preds:
            complex_refs |= {q for q in predicate.quantifiers()
                             if q in bindings}

        for quantifier, preds in by_quantifier.items():
            if quantifier in complex_refs:
                complex_preds.extend(preds)
                continue
            kind = self._kind_for(quantifier)
            joined = self.generator.evaluate(
                "SubqueryRoot", outer=plan, binding=bindings[quantifier],
                kind=kind, preds=preds)
            if not joined:
                raise OptimizerError(
                    "no subquery strategy for %s" % quantifier.name)
            plan = min(joined, key=lambda p: p.props.cost)
            handled.add(quantifier)

        # Everything else — disjunctions, multi-subquery predicates — goes
        # through the OR operator with on-demand evaluation.
        if complex_preds:
            involved = sorted(complex_refs - handled, key=lambda q: q.uid)
            plan = QuantifiedFilter(self.cm, plan, complex_preds,
                                    [bindings[q] for q in involved])
            handled |= set(involved)

        # E/NE quantifiers with no predicate at all (plain EXISTS was folded
        # into ExistsTest predicates, so this is rare) — and scalar
        # quantifiers referenced only by the head — are joined kind-wise.
        for quantifier in sub_quantifiers:
            if quantifier in handled:
                continue
            if quantifier in head_refs:
                kind = self._kind_for(quantifier)
                plan = SubqueryJoin(self.cm, plan, bindings[quantifier],
                                    kind, [])
                handled.add(quantifier)
        return plan

    @staticmethod
    def _needs_general_evaluation(predicate: Predicate,
                                  subquery_quantifiers: Set[Quantifier]
                                  ) -> bool:
        """Kind-based subquery joins fold the *whole* predicate inside the
        quantifier combination, which is only correct when no subquery
        reference sits beneath a NOT or OR — otherwise the OR operator's
        general evaluator (which combines at the smallest containing
        boolean subexpression) must run the predicate."""

        def visit(expr: qe.QExpr, guarded: bool) -> bool:
            if guarded and any(
                    q in subquery_quantifiers
                    for q in qe.quantifiers_in(expr)):
                return True
            if isinstance(expr, qe.Not):
                return visit(expr.operand, True)
            if isinstance(expr, qe.BinOp) and expr.op == "or":
                return visit(expr.left, True) or visit(expr.right, True)
            return any(visit(child, guarded) for child in expr.children())

        return visit(predicate.expr, False)

    def _kind_for(self, quantifier: Quantifier) -> str:
        kind = QTYPE_TO_KIND.get(quantifier.qtype)
        if kind is not None:
            return kind
        if self.functions is not None:
            function = self.functions.set_predicate_for_qtype(quantifier.qtype)
            if function is not None:
                return "setpred:%s" % function.name
        raise OptimizerError(
            "no join kind for iterator type %s" % quantifier.qtype)

    def _finish_box(self, plan: PlanOp, box: Box) -> PlanOp:
        subplans = []
        head_quantifiers: Set[Quantifier] = set()
        bound = plan.props.quantifiers
        for column in box.head.columns:
            if column.expr is None:
                raise OptimizerError(
                    "box %s has an untyped head" % box.label())
            for quantifier in qe.quantifiers_in(column.expr):
                if quantifier not in bound and not quantifier.is_setformer:
                    head_quantifiers.add(quantifier)
        for quantifier in sorted(head_quantifiers, key=lambda q: q.uid):
            subplans.append(self._subplan_binding(quantifier))
        exprs = [c.expr for c in box.head.columns]
        names = box.head.column_names()
        plan = Project(self.cm, plan, exprs, names, subplans)
        if box.head.distinct is DistinctMode.ENFORCE:
            plan = Distinct(self.cm, plan)
        return plan

    # -- outer join (the DBC extension's execution shape) ---------------------------------

    def _plan_outer_join(self, box: SelectBox, local_preds, join_preds,
                         subquery_preds, free_preds) -> PlanOp:
        """LEFT OUTER JOIN: preserved (PF) side drives a left-outer NL join."""
        preserved = [q for q in box.quantifiers if q.qtype == "PF"]
        regular = [q for q in box.quantifiers if q.qtype == "F"]
        if len(preserved) != 1 or len(regular) != 1:
            raise OptimizerError(
                "outer-join box must have exactly one PF and one F iterator")
        outer_q, inner_q = preserved[0], regular[0]
        # ON-clause predicates touching only the preserved side must stay at
        # the join: pushing them into the PF access would drop rows the
        # outer join is required to preserve (the paper's "from" rule does
        # not apply to PF setformers).  Inner-side predicates push safely.
        outer_plans = self._access_plans(outer_q, [])
        join_preds = list(join_preds) + list(local_preds[outer_q])
        inner_plans = self._access_plans(inner_q, local_preds[inner_q])
        outer = min(outer_plans, key=lambda p: p.props.cost)
        inner = min(inner_plans, key=lambda p: p.props.cost)
        joined = self.generator.evaluate(
            "JoinRoot", outer=outer, inner=inner, preds=join_preds,
            kind="left_outer")
        if not joined:
            raise OptimizerError("no outer-join plan")
        plan = min(joined, key=lambda p: p.props.cost)
        plan = self._apply_subqueries(plan, box, box.subquery_quantifiers(),
                                      subquery_preds)
        if free_preds:
            plan = Filter(self.cm, plan, free_preds)
        return self._finish_box(plan, box)

    # -- GROUP BY -----------------------------------------------------------------------------

    def _plan_groupby(self, box: GroupByBox) -> PlanOp:
        quantifier = box.input_quantifier
        child = self.plan_box(quantifier.input)
        stream = DerivedScan(self.cm, child, quantifier.input, quantifier)
        if box.predicates:
            # Predicates on a groupby box range over its input quantifier
            # (push_into_groupby parks group-key filters here), so they
            # apply to the stream *before* aggregation.
            stream = Filter(self.cm, stream, list(box.predicates))
        aggregates = [c.expr for c in box.head.columns
                      if isinstance(c.expr, qe.AggCall)]
        plan = GroupBy(self.cm, stream, box.group_keys, aggregates,
                       box.head.column_names())
        if box.head.distinct is DistinctMode.ENFORCE:
            plan = Distinct(self.cm, plan)
        return plan

    # -- set operations & recursion ----------------------------------------------------------------

    def _plan_setop(self, box: SetOpBox) -> PlanOp:
        if box.is_recursive:
            return self._plan_recursive(box)
        children = [self.plan_box(q.input) for q in box.quantifiers]
        plan = SetOpPlan(self.cm, box.op, box.all_rows, children)
        if box.head.distinct is DistinctMode.ENFORCE and box.all_rows:
            plan = Distinct(self.cm, plan)
        return plan

    def _plan_recursive(self, box: SetOpBox) -> PlanOp:
        base_plans: List[PlanOp] = []
        rec_plans: List[PlanOp] = []
        self._recursion_stack.add(box)
        try:
            for quantifier in box.quantifiers:
                branch = quantifier.input
                if self._branch_references(branch, box):
                    rec_plans.append(self.plan_box(branch))
                else:
                    base_plans.append(self.plan_box(branch))
        finally:
            self._recursion_stack.discard(box)
            # Recursive-branch plans must not leak into the memo: their
            # DELTA scans are only valid inside this fixpoint.
            for branch_box in list(self._memo):
                if self._branch_references(branch_box, box):
                    del self._memo[branch_box]
        if not base_plans or not rec_plans:
            raise OptimizerError(
                "recursive box %s needs base and recursive branches"
                % box.label())
        return Recurse(self.cm, box, base_plans, rec_plans,
                       naive=self.settings.naive_recursion)

    @staticmethod
    def _branch_references(branch: Box, target: Box) -> bool:
        seen: Set[Box] = set()
        stack = [branch]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for quantifier in current.quantifiers:
                if quantifier.input is target:
                    return True
                stack.append(quantifier.input)
        return False

    # -- CHOOSE ----------------------------------------------------------------------------------------

    def _plan_choose(self, box: ChooseBox) -> PlanOp:
        """Cost the alternatives and keep the cheapest (section 5)."""
        candidates = [(self.plan_box(q.input), q) for q in box.quantifiers]
        best, _q = min(candidates, key=lambda pair: pair[0].props.cost)
        return best

    # -- table functions -----------------------------------------------------------------------------------

    def _plan_table_function(self, box: TableFunctionBox) -> PlanOp:
        children = [self.plan_box(q.input) for q in box.quantifiers]
        return TableFunctionPlan(self.cm, box.function_name, box.scalar_args,
                                 children, box)

    # -- DML -------------------------------------------------------------------------------------------------

    def _plan_insert(self, box: InsertBox) -> PlanOp:
        source = None
        if box.quantifiers:
            source = self.plan_box(box.quantifiers[0].input)
        return InsertPlan(self.cm, box.table, box.column_positions, source,
                          box.rows)

    def _dml_target_plan(self, box) -> Tuple[PlanOp, List[SubplanBinding]]:
        quantifier = box.target
        local: List[Predicate] = []
        subquery_preds: List[Predicate] = []
        for predicate in box.predicates:
            refs = predicate.quantifiers()
            if any(not q.is_setformer for q in refs):
                subquery_preds.append(predicate)
            else:
                local.append(predicate)
        plans = self._access_plans(quantifier, local)
        plan = min(plans, key=lambda p: p.props.cost)
        bindings = []
        if subquery_preds:
            sub_quantifiers = sorted(
                {q for p in subquery_preds for q in p.quantifiers()
                 if not q.is_setformer},
                key=lambda q: q.uid)
            bindings = [self._subplan_binding(q) for q in sub_quantifiers]
            plan = QuantifiedFilter(self.cm, plan, subquery_preds, bindings)
        return plan, bindings

    def _plan_update(self, box: UpdateBox) -> PlanOp:
        target, _bindings = self._dml_target_plan(box)
        # Assignments may contain scalar subqueries of their own.
        assign_refs: Set[Quantifier] = set()
        for _name, expr in box.assignments:
            assign_refs |= {q for q in qe.quantifiers_in(expr)
                            if not q.is_setformer}
        subplans = [self._subplan_binding(q)
                    for q in sorted(assign_refs, key=lambda q: q.uid)]
        return UpdatePlan(self.cm, box.table, target, box.target,
                          box.assignments, subplans)

    def _plan_delete(self, box: DeleteBox) -> PlanOp:
        target, _bindings = self._dml_target_plan(box)
        return DeletePlan(self.cm, box.table, target, box.target)


class _SingletonPlan(PlanOp):
    """A one-row, zero-column binding stream (SELECT without FROM)."""

    op_name = "SINGLETON"

    def __init__(self, cm: CostModel):
        from repro.optimizer.properties import PlanProperties

        super().__init__((), PlanProperties(cost=0.01, card=1.0))

    def describe(self) -> str:
        return "SINGLETON"


#: DBC-registered planners for extension box kinds.
_EXTENSION_BOX_PLANNERS: Dict[str, object] = {}


def register_box_planner(kind: str, planner) -> None:
    """DBC extension point: supply a planner for a new QGM operation."""
    _EXTENSION_BOX_PLANNERS[kind] = planner
