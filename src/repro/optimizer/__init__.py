"""Plan optimization (section 6 of the paper).

Starburst's optimizer is characterized by three orthogonal, independently
extensible aspects:

1. **plan generation** — a constructive, grammar-like rule system: STARs
   (strategy alternative rules) expand into LOLEPOPs (low-level plan
   operators) or other STARs; "glue" STARs enforce required properties by
   adding SORT/SHIP operators,
2. **plan costing** — every table (base or intermediate) has relational,
   operational (order, site) and estimated (cost, cardinality) properties;
   each LOLEPOP has a property function describing its effect,
3. **search strategy** — the join enumerator builds larger iterator sets
   from smaller ones (System-R-style dynamic programming) with knobs for
   composite inners (bushy trees), Cartesian products and rank pruning.

Modules: :mod:`plans` (LOLEPOPs), :mod:`properties`, :mod:`cost`,
:mod:`stars` (rule engine + default rule array), :mod:`enumerator`,
:mod:`boxopt` (bottom-up per-QGM-box optimization).
"""

from repro.optimizer.properties import PlanProperties, order_key
from repro.optimizer.plans import PlanOp
from repro.optimizer.cost import CostModel
from repro.optimizer.stars import STAR, Alternative, PlanGenerator, default_star_array
from repro.optimizer.enumerator import JoinEnumerator
from repro.optimizer.boxopt import Optimizer, OptimizerSettings

__all__ = [
    "PlanProperties",
    "order_key",
    "PlanOp",
    "CostModel",
    "STAR",
    "Alternative",
    "PlanGenerator",
    "default_star_array",
    "JoinEnumerator",
    "Optimizer",
    "OptimizerSettings",
]
