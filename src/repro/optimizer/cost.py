"""Cost model: selectivity estimation and per-LOLEPOP cost formulas.

Costs are in abstract units: one page I/O costs ``IO_WEIGHT``, one row of
CPU work costs ``CPU_WEIGHT``.  Estimation follows System R's rules of
thumb, driven by the catalog statistics (the paper: property evaluation
starts "with statistics on stored tables"):

- ``col = const``    → 1 / n_distinct(col)
- ``col = col``      → 1 / max(n_distinct(left), n_distinct(right))
- range predicates   → interpolation over [min, max] when known, else 1/3
- ``LIKE``           → 1/10
- anything else      → 1/3
"""

from __future__ import annotations

import math
from typing import Optional

from repro.catalog.catalog import Catalog
from repro.qgm import expressions as qe
from repro.qgm.model import BaseTableBox, Predicate

IO_WEIGHT = 1.0
CPU_WEIGHT = 0.01

DEFAULT_SELECTIVITY = 1.0 / 3.0
LIKE_SELECTIVITY = 0.1
EQUALITY_FALLBACK = 0.1

#: Fixed cost of starting one parallel worker (fork + per-worker compile),
#: in the same abstract units as IO/CPU.  Forking is cheap on Linux but not
#: free; a dop=4 plan must save at least ~4 * this to win.
PARALLEL_STARTUP_COST = 50.0
#: Per-row cost of moving a row through an Exchange (pickle + pipe).
EXCHANGE_ROW_COST = CPU_WEIGHT * 0.5
#: Per-byte cost of moving data through a Repartition or Ship exchange
#: (encode + queue + decode).  Calibrated so that shuffling ~1MB costs
#: about as much as scanning 100 pages; the repartition benchmark checks
#: the *byte estimate* against measured wire bytes (within 2x), the weight
#: only ranks alternatives.
EXCHANGE_BYTE_COST = IO_WEIGHT / 8192.0

#: Wire-format overhead per row: 4-byte value count plus two tagged int64
#: sequence values (1 + 8 each) used to restore serial order.
WIRE_ROW_OVERHEAD = 4 + 2 * 9
#: Per-value overhead: one tag byte.
WIRE_VALUE_TAG = 1


class CostModel:
    """Selectivity and cost estimation against a catalog."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- statistics helpers ---------------------------------------------------

    def _column_stats(self, ref: qe.ColRef):
        """Statistics for a column reference when it bottoms out at a base
        table; None for derived columns."""
        box = ref.quantifier.input
        if isinstance(box, BaseTableBox):
            stats = self.catalog.statistics(box.table.name)
            return stats, stats.columns.get(ref.column)
        return None, None

    def _n_distinct(self, ref: qe.ColRef) -> int:
        stats, _column = self._column_stats(ref)
        if stats is None:
            return 10
        return stats.n_distinct(ref.column)

    def table_cardinality(self, table_name: str) -> float:
        return float(max(1, self.catalog.statistics(table_name).row_count))

    def table_pages(self, table_name: str) -> float:
        return float(max(1, self.catalog.statistics(table_name).page_count))

    # -- selectivity ---------------------------------------------------------------

    def selectivity(self, predicate: Predicate) -> float:
        return self.expr_selectivity(predicate.expr)

    def expr_selectivity(self, expr: qe.QExpr) -> float:
        if isinstance(expr, qe.BinOp):
            if expr.op == "and":
                return (self.expr_selectivity(expr.left)
                        * self.expr_selectivity(expr.right))
            if expr.op == "or":
                left = self.expr_selectivity(expr.left)
                right = self.expr_selectivity(expr.right)
                return min(1.0, left + right - left * right)
            if expr.op == "=":
                return self._equality_selectivity(expr)
            if expr.op == "<>":
                return 1.0 - self._equality_selectivity(expr)
            if expr.op in ("<", "<=", ">", ">="):
                return self._range_selectivity(expr)
        if isinstance(expr, qe.Not):
            return max(0.0, 1.0 - self.expr_selectivity(expr.operand))
        if isinstance(expr, qe.LikeOp):
            return LIKE_SELECTIVITY
        if isinstance(expr, qe.IsNullTest):
            return 0.1 if not expr.negated else 0.9
        if isinstance(expr, qe.Const) and expr.value is True:
            return 1.0
        if isinstance(expr, qe.ExistsTest):
            return 0.5
        return DEFAULT_SELECTIVITY

    def _equality_selectivity(self, expr: qe.BinOp) -> float:
        left, right = expr.left, expr.right
        if isinstance(left, qe.ColRef) and isinstance(right, qe.ColRef):
            return 1.0 / max(self._n_distinct(left), self._n_distinct(right), 1)
        if isinstance(left, qe.ColRef):
            return 1.0 / max(self._n_distinct(left), 1)
        if isinstance(right, qe.ColRef):
            return 1.0 / max(self._n_distinct(right), 1)
        return EQUALITY_FALLBACK

    def _range_selectivity(self, expr: qe.BinOp) -> float:
        column: Optional[qe.ColRef] = None
        constant = None
        if isinstance(expr.left, qe.ColRef) and isinstance(expr.right, qe.Const):
            column, constant, op = expr.left, expr.right.value, expr.op
        elif isinstance(expr.right, qe.ColRef) and isinstance(expr.left, qe.Const):
            # mirror: c OP col  ==  col OP' c
            mirror = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
            column, constant, op = expr.right, expr.left.value, mirror[expr.op]
        else:
            return DEFAULT_SELECTIVITY
        _stats, col_stats = self._column_stats(column)
        if (col_stats is None or col_stats.min_value is None
                or col_stats.max_value is None or constant is None):
            return DEFAULT_SELECTIVITY
        try:
            low = float(col_stats.min_value)
            high = float(col_stats.max_value)
            value = float(constant)
        except (TypeError, ValueError):
            return DEFAULT_SELECTIVITY
        if high <= low:
            return DEFAULT_SELECTIVITY
        fraction = (value - low) / (high - low)
        fraction = min(1.0, max(0.0, fraction))
        if op in (">", ">="):
            fraction = 1.0 - fraction
        return min(1.0, max(0.001, fraction))

    # -- operator cost formulas --------------------------------------------------------

    def scan_cost(self, pages: float, rows: float) -> float:
        return pages * IO_WEIGHT + rows * CPU_WEIGHT

    def index_scan_cost(self, matching_rows: float, table_rows: float,
                        table_pages: float, clustered: bool = False) -> float:
        """B+-tree descent + leaf walk + data-page fetches."""
        depth = max(1.0, math.log(max(table_rows, 2.0), 32))
        if clustered:
            data_io = max(1.0, table_pages * matching_rows / max(table_rows, 1.0))
        else:
            data_io = matching_rows  # one fetch per row, unclustered
        return (depth + data_io) * IO_WEIGHT + matching_rows * CPU_WEIGHT

    def sort_cost(self, rows: float) -> float:
        rows = max(rows, 1.0)
        return rows * math.log(rows + 1.0, 2) * CPU_WEIGHT

    def hash_cost(self, build_rows: float, probe_rows: float) -> float:
        return (build_rows + probe_rows) * CPU_WEIGHT * 1.2

    def ship_cost(self, rows: float, to_site: str) -> float:
        return rows * self.catalog.ship_cost(to_site) + 0.5 * IO_WEIGHT

    def per_row_cpu(self, rows: float, factor: float = 1.0) -> float:
        return rows * CPU_WEIGHT * factor

    # -- parallelism ----------------------------------------------------------

    def parallel_startup(self, dop: int) -> float:
        """Fixed price of spinning up ``dop`` workers."""
        return PARALLEL_STARTUP_COST * max(0, dop)

    def exchange_cost(self, rows: float) -> float:
        """Cost of gathering ``rows`` rows through an Exchange."""
        return max(rows, 0.0) * EXCHANGE_ROW_COST

    def estimate_wire_bytes(self, rows: float, types) -> float:
        """Estimated bytes a Repartition/Ship moves for ``rows`` rows.

        ``types`` are the column DataTypes of the shipped stream.  Uses
        the exchange wire format: a per-row header, one tag byte per
        value, then the value payload (8 bytes for fixed numerics, the
        tag alone for booleans/NULLs, length prefix + ~12 bytes assumed
        for varchars).  The repartition benchmark validates this against
        measured wire bytes.
        """
        per_row = float(WIRE_ROW_OVERHEAD)
        for dtype in types:
            per_row += WIRE_VALUE_TAG
            size = getattr(dtype, "size", None)
            name = type(dtype).__name__
            if name == "BooleanType":
                continue  # tag byte carries the value
            if size:
                per_row += 8.0  # int64 / double payload
            else:
                per_row += 4.0 + 12.0  # length prefix + assumed avg chars
        return max(rows, 0.0) * per_row

    def repartition_cost(self, rows: float, wire_bytes: float,
                         dop: int) -> float:
        """Cost of hash-shuffling ``rows`` rows (``wire_bytes`` on the
        wire) across ``dop`` workers: per-row hash/route CPU plus
        per-byte encode/queue/decode, divided across the workers that do
        it in parallel."""
        dop = max(1, dop)
        work = (max(rows, 0.0) * EXCHANGE_ROW_COST
                + max(wire_bytes, 0.0) * EXCHANGE_BYTE_COST)
        return work / float(dop)

    def should_parallelize(self, input_rows: float, dop: int) -> bool:
        """Do ``input_rows`` rows of scan work amortize ``dop`` workers?

        The subtree's serial work is roughly ``input_rows * CPU_WEIGHT``
        (plus I/O, but forked workers share the page cache); parallel
        execution saves the (dop-1)/dop share of it and pays startup plus
        the exchange.  Used by ``parallelism="auto"``; ``"on"`` bypasses
        this gate so tests can force small-table parallelism.
        """
        if dop <= 1:
            return False
        serial_work = max(input_rows, 0.0) * (CPU_WEIGHT + IO_WEIGHT * 0.02)
        saved = serial_work * (dop - 1) / float(dop)
        return saved > self.parallel_startup(dop) + self.exchange_cost(
            input_rows / float(dop))
