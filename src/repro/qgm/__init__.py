"""QGM — the Query Graph Model (section 4 of the paper).

QGM is Starburst's generic internal representation of queries: "the schema
for a main memory database storing information about a query", the interface
between every compilation phase and between the base system and DBC
extensions.

The constructs, as in the paper:

- **boxes** — high-level operations on tables (SELECT, GROUP BY, UNION,
  INSERT, ...), each with a *head* (output table description) and a *body*,
- **vertices / iterators** — *setformers* (type F, and the outer-join
  extension's PF) contribute rows to the output; *quantifiers* (existential
  E, universal A, scalar S, and DBC-defined types) only restrict it,
- **range edges** — connect an iterator to the box or base table it ranges
  over,
- **qualifier edges** — predicates connecting one or more iterators.

Extensibility: new operations are new box kinds; new iterator types get
their interpretation from the set-predicate function registry; everything
else ("most of QGM describes tables, not operations") is generic.
"""

from repro.qgm import expressions
from repro.qgm.model import (
    QGM,
    BaseTableBox,
    Box,
    ChooseBox,
    DeleteBox,
    DistinctMode,
    GroupByBox,
    Head,
    HeadColumn,
    InsertBox,
    Predicate,
    Quantifier,
    SelectBox,
    SetOpBox,
    TableFunctionBox,
    UpdateBox,
)
from repro.qgm.display import render_qgm
from repro.qgm.validate import validate_qgm

__all__ = [
    "QGM",
    "Box",
    "BaseTableBox",
    "SelectBox",
    "GroupByBox",
    "SetOpBox",
    "ChooseBox",
    "TableFunctionBox",
    "InsertBox",
    "UpdateBox",
    "DeleteBox",
    "Quantifier",
    "Predicate",
    "Head",
    "HeadColumn",
    "DistinctMode",
    "expressions",
    "render_qgm",
    "validate_qgm",
]
