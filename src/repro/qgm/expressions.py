"""Resolved expressions over QGM iterators.

Unlike AST expressions, these reference :class:`~repro.qgm.model.Quantifier`
objects directly — a ``ColRef`` is an edge from a predicate or head column
to an iterator.  Subqueries never appear inside QGM expressions: the
translator turns every subquery into a quantifier plus ordinary predicates,
which is what makes the rewrite rules (subquery-to-join etc.) simple graph
transformations.

Every node carries a ``dtype`` assigned during translation.  The helpers at
the bottom (:func:`walk`, :func:`transform`, :func:`quantifiers_in`,
:func:`substitute_colrefs`) are the "rich set of primitives for manipulating
query graphs" that rewrite rules build on.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.datatypes.types import BOOLEAN, DataType


class QExpr:
    """Base class for resolved expressions."""

    __slots__ = ("dtype",)

    def __init__(self, dtype: Optional[DataType] = None):
        self.dtype = dtype

    def children(self) -> Sequence["QExpr"]:
        return ()

    def copy_with(self, children: Sequence["QExpr"]) -> "QExpr":
        """Shallow copy with new children (transform support)."""
        raise NotImplementedError


class Const(QExpr):
    __slots__ = ("value",)

    def __init__(self, value: Any, dtype: Optional[DataType] = None):
        super().__init__(dtype)
        self.value = value

    def copy_with(self, children: Sequence[QExpr]) -> "Const":
        return Const(self.value, self.dtype)

    def __repr__(self) -> str:
        return repr(self.value)


class ParamRef(QExpr):
    """Host-variable reference bound at execution time."""

    __slots__ = ("index", "name")

    def __init__(self, index: int, name: Optional[str] = None,
                 dtype: Optional[DataType] = None):
        super().__init__(dtype)
        self.index = index
        self.name = name

    def copy_with(self, children: Sequence[QExpr]) -> "ParamRef":
        return ParamRef(self.index, self.name, self.dtype)

    def __repr__(self) -> str:
        return ":%s" % (self.name or self.index)


class ColRef(QExpr):
    """Reference to an output column of the box a quantifier ranges over."""

    __slots__ = ("quantifier", "column")

    def __init__(self, quantifier, column: str,
                 dtype: Optional[DataType] = None):
        super().__init__(dtype)
        self.quantifier = quantifier
        self.column = column

    def copy_with(self, children: Sequence[QExpr]) -> "ColRef":
        return ColRef(self.quantifier, self.column, self.dtype)

    def __repr__(self) -> str:
        return "%s.%s" % (self.quantifier.name, self.column)


class BinOp(QExpr):
    """Arithmetic (+ - * / %), concat (||), comparisons, AND/OR."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: QExpr, right: QExpr,
                 dtype: Optional[DataType] = None):
        super().__init__(dtype)
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> Sequence[QExpr]:
        return (self.left, self.right)

    def copy_with(self, children: Sequence[QExpr]) -> "BinOp":
        left, right = children
        return BinOp(self.op, left, right, self.dtype)

    def __repr__(self) -> str:
        return "(%r %s %r)" % (self.left, self.op.upper(), self.right)


class Not(QExpr):
    __slots__ = ("operand",)

    def __init__(self, operand: QExpr):
        super().__init__(BOOLEAN)
        self.operand = operand

    def children(self) -> Sequence[QExpr]:
        return (self.operand,)

    def copy_with(self, children: Sequence[QExpr]) -> "Not":
        return Not(children[0])

    def __repr__(self) -> str:
        return "(NOT %r)" % (self.operand,)


class Neg(QExpr):
    __slots__ = ("operand",)

    def __init__(self, operand: QExpr, dtype: Optional[DataType] = None):
        super().__init__(dtype)
        self.operand = operand

    def children(self) -> Sequence[QExpr]:
        return (self.operand,)

    def copy_with(self, children: Sequence[QExpr]) -> "Neg":
        return Neg(children[0], self.dtype)

    def __repr__(self) -> str:
        return "(-%r)" % (self.operand,)


class IsNullTest(QExpr):
    __slots__ = ("operand", "negated")

    def __init__(self, operand: QExpr, negated: bool = False):
        super().__init__(BOOLEAN)
        self.operand = operand
        self.negated = negated

    def children(self) -> Sequence[QExpr]:
        return (self.operand,)

    def copy_with(self, children: Sequence[QExpr]) -> "IsNullTest":
        return IsNullTest(children[0], self.negated)

    def __repr__(self) -> str:
        return "(%r IS %sNULL)" % (self.operand,
                                   "NOT " if self.negated else "")


class LikeOp(QExpr):
    __slots__ = ("operand", "pattern", "negated")

    def __init__(self, operand: QExpr, pattern: QExpr, negated: bool = False):
        super().__init__(BOOLEAN)
        self.operand = operand
        self.pattern = pattern
        self.negated = negated

    def children(self) -> Sequence[QExpr]:
        return (self.operand, self.pattern)

    def copy_with(self, children: Sequence[QExpr]) -> "LikeOp":
        return LikeOp(children[0], children[1], self.negated)

    def __repr__(self) -> str:
        return "(%r %sLIKE %r)" % (self.operand,
                                   "NOT " if self.negated else "",
                                   self.pattern)


class FuncCall(QExpr):
    """Scalar function call (built-in or DBC-registered)."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[QExpr],
                 dtype: Optional[DataType] = None):
        super().__init__(dtype)
        self.name = name.lower()
        self.args = list(args)

    def children(self) -> Sequence[QExpr]:
        return tuple(self.args)

    def copy_with(self, children: Sequence[QExpr]) -> "FuncCall":
        return FuncCall(self.name, list(children), self.dtype)

    def __repr__(self) -> str:
        return "%s(%s)" % (self.name, ", ".join(repr(a) for a in self.args))


class AggCall(QExpr):
    """Aggregate call; only legal in a GROUP BY box's head.

    ``arg`` is None for COUNT(*).
    """

    __slots__ = ("name", "arg", "distinct")

    def __init__(self, name: str, arg: Optional[QExpr],
                 distinct: bool = False, dtype: Optional[DataType] = None):
        super().__init__(dtype)
        self.name = name.lower()
        self.arg = arg
        self.distinct = distinct

    def children(self) -> Sequence[QExpr]:
        return (self.arg,) if self.arg is not None else ()

    def copy_with(self, children: Sequence[QExpr]) -> "AggCall":
        arg = children[0] if children else None
        return AggCall(self.name, arg, self.distinct, self.dtype)

    def __repr__(self) -> str:
        inner = "*" if self.arg is None else repr(self.arg)
        if self.distinct:
            inner = "DISTINCT " + inner
        return "%s(%s)" % (self.name.upper(), inner)


class CaseOp(QExpr):
    __slots__ = ("whens", "else_value")

    def __init__(self, whens: Sequence[Tuple[QExpr, QExpr]],
                 else_value: Optional[QExpr] = None,
                 dtype: Optional[DataType] = None):
        super().__init__(dtype)
        self.whens = list(whens)
        self.else_value = else_value

    def children(self) -> Sequence[QExpr]:
        flat: List[QExpr] = []
        for condition, value in self.whens:
            flat.append(condition)
            flat.append(value)
        if self.else_value is not None:
            flat.append(self.else_value)
        return tuple(flat)

    def copy_with(self, children: Sequence[QExpr]) -> "CaseOp":
        pairs = []
        for index in range(len(self.whens)):
            pairs.append((children[2 * index], children[2 * index + 1]))
        else_value = (children[-1] if self.else_value is not None else None)
        return CaseOp(pairs, else_value, self.dtype)

    def __repr__(self) -> str:
        parts = ["CASE"]
        for condition, value in self.whens:
            parts.append("WHEN %r THEN %r" % (condition, value))
        if self.else_value is not None:
            parts.append("ELSE %r" % (self.else_value,))
        parts.append("END")
        return " ".join(parts)


class Cast(QExpr):
    __slots__ = ("operand",)

    def __init__(self, operand: QExpr, dtype: DataType):
        super().__init__(dtype)
        self.operand = operand

    def children(self) -> Sequence[QExpr]:
        return (self.operand,)

    def copy_with(self, children: Sequence[QExpr]) -> "Cast":
        return Cast(children[0], self.dtype)

    def __repr__(self) -> str:
        return "CAST(%r AS %s)" % (self.operand, self.dtype.name)


class ExistsTest(QExpr):
    """Marker predicate for EXISTS: true for every row of the quantifier.

    Combined with an existential (E) quantifier this means "the subquery is
    non-empty"; with a negated-existential (NE) quantifier it means "empty".
    """

    __slots__ = ("quantifier",)

    def __init__(self, quantifier):
        super().__init__(BOOLEAN)
        self.quantifier = quantifier

    def copy_with(self, children: Sequence[QExpr]) -> "ExistsTest":
        return ExistsTest(self.quantifier)

    def __repr__(self) -> str:
        return "EXISTS(%s)" % self.quantifier.name


# ---------------------------------------------------------------------------
# Graph-manipulation primitives
# ---------------------------------------------------------------------------


def walk(expr: QExpr) -> Iterator[QExpr]:
    """Yield ``expr`` and every descendant, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def quantifiers_in(expr: QExpr):
    """The set of quantifiers referenced anywhere inside ``expr``."""
    result = set()
    for node in walk(expr):
        if isinstance(node, ColRef):
            result.add(node.quantifier)
        elif isinstance(node, ExistsTest):
            result.add(node.quantifier)
    return result


def transform(expr: QExpr, fn: Callable[[QExpr], Optional[QExpr]]) -> QExpr:
    """Bottom-up rewrite: ``fn`` may return a replacement for any node.

    Children are transformed first; ``fn`` then sees the rebuilt node and
    may return None (keep) or a new node.
    """
    children = expr.children()
    if children:
        new_children = [transform(child, fn) for child in children]
        if any(new is not old for new, old in zip(new_children, children)):
            expr = expr.copy_with(new_children)
    replacement = fn(expr)
    return replacement if replacement is not None else expr


def substitute_colrefs(expr: QExpr,
                       mapping: Callable[[ColRef], Optional[QExpr]]) -> QExpr:
    """Replace column references per ``mapping`` (None keeps the original).

    This is the primitive behind box merging: references to the merged
    box's quantifier are replaced by the merged box's head expressions.
    """
    def visit(node: QExpr) -> Optional[QExpr]:
        if isinstance(node, ColRef):
            return mapping(node)
        return None

    return transform(expr, visit)


def retarget_quantifier(expr: QExpr, old, new) -> QExpr:
    """Replace references to ``old`` (ColRef and ExistsTest) with ``new``."""
    def visit(node: QExpr) -> Optional[QExpr]:
        if isinstance(node, ColRef) and node.quantifier is old:
            return ColRef(new, node.column, node.dtype)
        if isinstance(node, ExistsTest) and node.quantifier is old:
            return ExistsTest(new)
        return None

    return transform(expr, visit)


def conjuncts(expr: QExpr) -> List[QExpr]:
    """Split a boolean expression into its top-level AND conjuncts."""
    if isinstance(expr, BinOp) and expr.op == "and":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(exprs: Sequence[QExpr]) -> Optional[QExpr]:
    """AND a list of boolean expressions back together."""
    result: Optional[QExpr] = None
    for expr in exprs:
        result = expr if result is None else BinOp("and", result, expr, BOOLEAN)
    return result


def is_column_equality(expr: QExpr) -> Optional[Tuple[ColRef, ColRef]]:
    """Match ``q1.c1 = q2.c2`` between two different quantifiers."""
    if (isinstance(expr, BinOp) and expr.op == "="
            and isinstance(expr.left, ColRef)
            and isinstance(expr.right, ColRef)
            and expr.left.quantifier is not expr.right.quantifier):
        return expr.left, expr.right
    return None
