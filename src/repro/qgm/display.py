"""Textual rendering of a QGM graph (EXPLAIN support, Figure 2 checks).

The rendering lists every reachable box with its head, iterators (vertices
with their range edges) and predicates (qualifier edges), in a stable
topological-ish order so tests can assert on the shape of a graph before
and after rewrite — the programmatic equivalent of the paper's Figure 2.
"""

from __future__ import annotations

from typing import List

from repro.qgm.model import (
    QGM,
    BaseTableBox,
    Box,
    GroupByBox,
    InsertBox,
    SetOpBox,
    TableFunctionBox,
    UpdateBox,
)


def render_box(box: Box, qgm: QGM) -> List[str]:
    """Render one box as indented text lines."""
    lines: List[str] = []
    tags = []
    if box is qgm.root:
        tags.append("root")
    if isinstance(box, SetOpBox) and box.is_recursive:
        tags.append("recursive")
    suffix = (" [" + ", ".join(tags) + "]") if tags else ""
    lines.append("%s%s" % (box.label(), suffix))

    if isinstance(box, BaseTableBox):
        lines.append("  stored table: %s (%s)" % (
            box.table.name,
            ", ".join("%s %s" % (c.name, c.dtype.name) for c in box.table.columns)))
        return lines

    head_desc = ", ".join(
        "%s=%r" % (c.name, c.expr) if c.expr is not None else c.name
        for c in box.head.columns
    )
    lines.append("  head: [%s] distinct=%s" % (head_desc,
                                               box.head.distinct.value))
    if isinstance(box, GroupByBox) and box.group_keys:
        lines.append("  group by: %s" % ", ".join(repr(k) for k in box.group_keys))
    if isinstance(box, TableFunctionBox):
        lines.append("  function: %s(%s)" % (
            box.function_name, ", ".join(repr(a) for a in box.scalar_args)))
    if isinstance(box, UpdateBox):
        lines.append("  set: %s" % ", ".join(
            "%s=%r" % (name, expr) for name, expr in box.assignments))
    if isinstance(box, InsertBox) and box.rows is not None:
        lines.append("  values: %d row(s)" % len(box.rows))
    for quantifier in box.quantifiers:
        lines.append("  %s:%s -> %s" % (quantifier.name, quantifier.qtype,
                                        quantifier.input.label()))
    for predicate in box.predicates:
        lines.append("  pred: %r" % (predicate.expr,))
    return lines


def render_qgm(qgm: QGM) -> str:
    """Render the whole graph, root first, inputs afterwards."""
    lines: List[str] = []
    for box in qgm.reachable_boxes():
        lines.extend(render_box(box, qgm))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
