"""QGM consistency checking.

The paper's rule contract: "every rule changes a consistent QGM
representation into another consistent QGM representation".  This validator
is the referee — the rewrite engine can run it after every rule firing (in
debug mode) and the test suite uses it as a property-check oracle.
"""

from __future__ import annotations

from typing import Set

from repro.datatypes.types import BooleanType
from repro.errors import QGMError
from repro.qgm.expressions import AggCall, ColRef, walk
from repro.qgm.model import (
    QGM,
    BaseTableBox,
    Box,
    ChooseBox,
    DeleteBox,
    GroupByBox,
    InsertBox,
    SelectBox,
    SetOpBox,
    TableFunctionBox,
    UpdateBox,
)


def validate_qgm(qgm: QGM) -> None:
    """Raise :class:`QGMError` if any QGM invariant is violated."""
    if qgm.root is None:
        raise QGMError("QGM has no root box")
    reachable = qgm.reachable_boxes()
    reachable_set = set(reachable)
    registered = set(qgm.boxes)
    for box in reachable:
        if box not in registered:
            raise QGMError("box %s reachable but not registered" % box.label())
        _validate_box(box, reachable_set)
    _check_cycles(qgm)


def _validate_box(box: Box, reachable: Set[Box]) -> None:
    for quantifier in box.quantifiers:
        if quantifier.box is not box:
            raise QGMError(
                "quantifier %s back-pointer is wrong in %s"
                % (quantifier.name, box.label())
            )
        if quantifier.input not in reachable:
            raise QGMError(
                "quantifier %s ranges over unreachable box" % quantifier.name
            )
        _validate_colrefs_resolve(box, quantifier)
    if isinstance(box, BaseTableBox):
        if box.quantifiers or box.predicates:
            raise QGMError("base table box %s must be a leaf" % box.label())
        return
    _validate_head(box)
    _validate_predicates(box)
    if isinstance(box, GroupByBox):
        _validate_groupby(box)
    elif isinstance(box, SetOpBox):
        _validate_setop(box)
    elif isinstance(box, ChooseBox):
        _validate_choose(box)
    elif isinstance(box, (SelectBox, TableFunctionBox, InsertBox, UpdateBox,
                          DeleteBox)):
        pass  # no extra structural constraints beyond head/predicates
    # Unknown Box subclasses (DBC extensions) get the generic checks only.


def _validate_colrefs_resolve(box: Box, quantifier) -> None:
    """Every column name must exist in the head of the quantifier's input."""
    names = set(quantifier.input.head.column_names())
    for predicate in box.predicates:
        for node in walk(predicate.expr):
            if isinstance(node, ColRef) and node.quantifier is quantifier:
                if node.column not in names:
                    raise QGMError(
                        "predicate references %s.%s which %s does not produce"
                        % (quantifier.name, node.column,
                           quantifier.input.label())
                    )


def _validate_head(box: Box) -> None:
    if not box.head.columns and not isinstance(box, (InsertBox, UpdateBox,
                                                     DeleteBox)):
        raise QGMError("box %s has an empty head" % box.label())
    seen = set()
    for column in box.head.columns:
        if column.name in seen:
            raise QGMError(
                "duplicate head column %s in %s" % (column.name, box.label())
            )
        seen.add(column.name)
        if not isinstance(box, (SetOpBox, ChooseBox)) and column.expr is None:
            raise QGMError(
                "head column %s of %s has no defining expression"
                % (column.name, box.label())
            )
        if column.expr is not None and not isinstance(box, GroupByBox):
            for node in walk(column.expr):
                if isinstance(node, AggCall):
                    raise QGMError(
                        "aggregate %s outside a GROUP BY box (%s)"
                        % (node.name, box.label())
                    )


def _validate_predicates(box: Box) -> None:
    for predicate in box.predicates:
        dtype = predicate.expr.dtype
        if dtype is not None and not isinstance(dtype, BooleanType):
            raise QGMError(
                "predicate %r in %s is not boolean" % (predicate.expr,
                                                       box.label())
            )
        for node in walk(predicate.expr):
            if isinstance(node, AggCall):
                raise QGMError(
                    "aggregate inside a predicate of %s" % box.label()
                )


def _validate_groupby(box: GroupByBox) -> None:
    if len(box.quantifiers) != 1:
        raise QGMError("GROUP BY box %s needs exactly one iterator"
                       % box.label())
    if box.quantifiers[0].qtype != "F":
        raise QGMError("GROUP BY input iterator must be a setformer")


def _validate_setop(box: SetOpBox) -> None:
    if len(box.quantifiers) < 2:
        raise QGMError("set operation %s needs at least two inputs"
                       % box.label())
    arity = len(box.head.columns)
    for quantifier in box.quantifiers:
        if len(quantifier.input.head.columns) != arity:
            raise QGMError(
                "set operation %s input %s has mismatched arity"
                % (box.label(), quantifier.name)
            )


def _validate_choose(box: ChooseBox) -> None:
    if len(box.quantifiers) < 1:
        raise QGMError("CHOOSE box %s has no alternatives" % box.label())
    arity = len(box.head.columns)
    for quantifier in box.quantifiers:
        if len(quantifier.input.head.columns) != arity:
            raise QGMError(
                "CHOOSE %s alternative %s has mismatched arity"
                % (box.label(), quantifier.name)
            )


def _check_cycles(qgm: QGM) -> None:
    """Only recursive set-operation boxes may participate in cycles."""
    WHITE, GRAY, BLACK = 0, 1, 2
    colors = {box: WHITE for box in qgm.boxes}

    def visit(box: Box) -> None:
        colors[box] = GRAY
        for quantifier in box.quantifiers:
            child = quantifier.input
            if colors.get(child, WHITE) == GRAY:
                if not (isinstance(child, SetOpBox) and child.is_recursive):
                    raise QGMError(
                        "non-recursive cycle through %s" % child.label()
                    )
            elif colors.get(child, WHITE) == WHITE:
                visit(child)
        colors[box] = BLACK

    if qgm.root is not None:
        visit(qgm.root)
