"""QGM data model: boxes, heads, quantifiers, predicates.

The model matches section 4 of the paper:

- every operation is a *box* with a *head* (the description of its output
  table) and a *body*,
- the body holds *iterators* (:class:`Quantifier` — the class covers both
  setformers and quantifiers, distinguished by ``qtype``) and *predicates*
  (qualifier edges),
- iterators carry a *range edge* (:attr:`Quantifier.input`) to the box they
  range over; base tables are leaf boxes, so "many iterators can range over
  the same input table" is simply many quantifiers sharing one input box,
- new operations are new ``Box`` subclasses; new iterator types are new
  ``qtype`` strings whose interpretation is supplied by set-predicate
  functions or by the executor's join-kind registry.

Built-in iterator types:

========  ==========================================================
``F``     setformer (ForEach) — contributes rows to the output
``PF``    Preserve-ForEach — the outer-join extension's setformer
``E``     existential quantifier (IN, EXISTS, = ANY)
``NE``    negated existential (NOT EXISTS, NOT IN via A in SQL terms)
``A``     universal quantifier (op ALL)
``S``     scalar subquery (at most one row)
========  ==========================================================
"""

from __future__ import annotations

import copy
import enum
import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.catalog.schema import TableDef
from repro.datatypes.types import DataType
from repro.errors import QGMError
from repro.qgm.expressions import QExpr, quantifiers_in

#: Iterator types that contribute rows to the output (setformers).
SETFORMER_TYPES = ("F", "PF")


class DistinctMode(enum.Enum):
    """Duplicate handling of a box's output (paper's rule 2 uses this).

    - ENFORCE: duplicates must be eliminated,
    - PRESERVE: duplicates must be kept exactly,
    - PERMIT: either way is acceptable (the optimizer may choose).
    """

    ENFORCE = "enforce"
    PRESERVE = "preserve"
    PERMIT = "permit"


class HeadColumn:
    """One output column: name, defining expression, type."""

    __slots__ = ("name", "expr", "dtype")

    def __init__(self, name: str, expr: Optional[QExpr],
                 dtype: Optional[DataType] = None):
        self.name = name
        self.expr = expr
        self.dtype = dtype if dtype is not None else (
            expr.dtype if expr is not None else None)

    def __repr__(self) -> str:
        return "%s=%r" % (self.name, self.expr)


class Head:
    """A box's output description."""

    def __init__(self, columns: Optional[List[HeadColumn]] = None,
                 distinct: DistinctMode = DistinctMode.PRESERVE):
        self.columns: List[HeadColumn] = columns or []
        self.distinct = distinct

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> HeadColumn:
        for column in self.columns:
            if column.name == name:
                return column
        raise QGMError("no head column %s" % name)

    def index_of(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise QGMError("no head column %s" % name)


class Quantifier:
    """An iterator: a vertex with a range edge to its input box."""

    _ids = itertools.count(1)

    def __init__(self, name: str, qtype: str, input_box: "Box"):
        self.uid = next(Quantifier._ids)
        self.name = name
        self.qtype = qtype
        self.input = input_box
        #: The box whose body this iterator belongs to (set by Box.add_quantifier).
        self.box: Optional[Box] = None

    @property
    def is_setformer(self) -> bool:
        return self.qtype in SETFORMER_TYPES

    def column_type(self, column: str) -> Optional[DataType]:
        return self.input.head.column(column).dtype

    def __repr__(self) -> str:
        return "<%s:%s over %s>" % (self.name, self.qtype, self.input.label())

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other


class Predicate:
    """A qualifier edge: a boolean expression over one or more iterators."""

    _ids = itertools.count(1)

    def __init__(self, expr: QExpr):
        self.uid = next(Predicate._ids)
        self.expr = expr

    def quantifiers(self):
        return quantifiers_in(self.expr)

    def __repr__(self) -> str:
        return "P%d[%r]" % (self.uid, self.expr)


class Box:
    """Base class for QGM operations."""

    kind = "abstract"

    _ids = itertools.count(1)

    def __init__(self, name: Optional[str] = None):
        self.uid = next(Box._ids)
        self.name = name
        self.head = Head()
        self.quantifiers: List[Quantifier] = []
        self.predicates: List[Predicate] = []
        #: Free-form annotations for DBC extensions and rewrite bookkeeping.
        self.annotations: Dict[str, Any] = {}

    # -- body manipulation -------------------------------------------------------

    def add_quantifier(self, quantifier: Quantifier) -> Quantifier:
        quantifier.box = self
        self.quantifiers.append(quantifier)
        return quantifier

    def remove_quantifier(self, quantifier: Quantifier) -> None:
        self.quantifiers.remove(quantifier)
        quantifier.box = None

    def add_predicate(self, predicate: Predicate) -> Predicate:
        self.predicates.append(predicate)
        return predicate

    def remove_predicate(self, predicate: Predicate) -> None:
        self.predicates.remove(predicate)

    def setformers(self) -> List[Quantifier]:
        return [q for q in self.quantifiers if q.is_setformer]

    def subquery_quantifiers(self) -> List[Quantifier]:
        return [q for q in self.quantifiers if not q.is_setformer]

    def quantifier_named(self, name: str) -> Quantifier:
        for quantifier in self.quantifiers:
            if quantifier.name == name:
                return quantifier
        raise QGMError("no quantifier %s in box %s" % (name, self.label()))

    # -- output schema --------------------------------------------------------------

    def output_names(self) -> List[str]:
        return self.head.column_names()

    def output_types(self) -> List[Optional[DataType]]:
        return [c.dtype for c in self.head.columns]

    def label(self) -> str:
        base = "%s#%d" % (self.kind, self.uid)
        return "%s(%s)" % (base, self.name) if self.name else base

    def __repr__(self) -> str:
        return "<Box %s>" % self.label()

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other


class BaseTableBox(Box):
    """Leaf box for a stored table (drawn dotted in the paper's figures)."""

    kind = "base_table"

    def __init__(self, table: TableDef):
        super().__init__(name=table.name)
        self.table = table
        for column in table.columns:
            self.head.columns.append(
                HeadColumn(column.name, None, column.dtype)
            )
        # A stored table has no duplicate question: rows are what they are.
        self.head.distinct = DistinctMode.PRESERVE


class SelectBox(Box):
    """SELECT: selection + projection + join in one box."""

    kind = "select"


class GroupByBox(Box):
    """GROUP BY: one input setformer, grouping keys, aggregated head."""

    kind = "groupby"

    def __init__(self, name: Optional[str] = None):
        super().__init__(name)
        self.group_keys: List[QExpr] = []

    @property
    def input_quantifier(self) -> Quantifier:
        if len(self.quantifiers) != 1:
            raise QGMError("GROUP BY box must have exactly one iterator")
        return self.quantifiers[0]


class SetOpBox(Box):
    """UNION / INTERSECT / EXCEPT over two or more inputs.

    A recursive table expression is a UNION ALL SetOpBox whose recursive
    branch quantifier ranges over the box itself (a cycle in the graph);
    ``recursive_name`` carries the table-expression name.
    """

    kind = "setop"

    def __init__(self, op: str, all_rows: bool, name: Optional[str] = None):
        super().__init__(name)
        if op not in ("union", "intersect", "except"):
            raise QGMError("unknown set operation %s" % op)
        self.op = op
        self.all_rows = all_rows
        self.recursive_name: Optional[str] = None

    @property
    def is_recursive(self) -> bool:
        return self.recursive_name is not None

    def label(self) -> str:
        base = "%s#%d" % (self.op, self.uid)
        if self.recursive_name:
            base += "(rec %s)" % self.recursive_name
        return base


class TableFunctionBox(Box):
    """A DBC table function: scalar args + table inputs -> a table."""

    kind = "table_function"

    def __init__(self, function_name: str, name: Optional[str] = None):
        super().__init__(name)
        self.function_name = function_name.lower()
        self.scalar_args: List[QExpr] = []

    def label(self) -> str:
        return "tf:%s#%d" % (self.function_name, self.uid)


class ChooseBox(Box):
    """CHOOSE (section 5): links alternative equivalent subgraphs.

    Each quantifier ranges over one alternative; all alternatives share the
    same output schema.  The optimizer keeps the cheapest and drops the
    rest (or the choice can be deferred to runtime).
    """

    kind = "choose"


class InsertBox(Box):
    """INSERT ... VALUES or INSERT ... SELECT."""

    kind = "insert"

    def __init__(self, table: TableDef,
                 column_positions: Optional[List[int]] = None):
        super().__init__(name=table.name)
        self.table = table
        #: Which table column each supplied value feeds, in order.
        self.column_positions = column_positions or list(range(table.arity))
        #: Literal rows (each a list of QExpr) when not INSERT ... SELECT.
        self.rows: Optional[List[List[QExpr]]] = None


class UpdateBox(Box):
    """UPDATE: a target setformer over the base table + assignments."""

    kind = "update"

    def __init__(self, table: TableDef):
        super().__init__(name=table.name)
        self.table = table
        self.assignments: List[Tuple[str, QExpr]] = []

    @property
    def target(self) -> Quantifier:
        return self.quantifiers[0]


class DeleteBox(Box):
    """DELETE: a target setformer over the base table + predicates."""

    kind = "delete"

    def __init__(self, table: TableDef):
        super().__init__(name=table.name)
        self.table = table

    @property
    def target(self) -> Quantifier:
        return self.quantifiers[0]


class QGM:
    """One query's graph: the main-memory database about the query."""

    def __init__(self):
        self.boxes: List[Box] = []
        self.root: Optional[Box] = None
        self._base_tables: Dict[str, BaseTableBox] = {}
        self._quantifier_names = itertools.count(1)
        self._used_names: set = set()
        #: ORDER BY on the final result: (head position, ascending) pairs.
        self.order_by: List[Tuple[int, bool]] = []
        self.limit: Optional[int] = None
        self.parameter_count = 0
        #: When ORDER BY references non-output expressions, hidden head
        #: columns are appended; only the first ``visible_columns`` columns
        #: are part of the user-visible result (None = all).
        self.visible_columns: Optional[int] = None

    # -- construction -----------------------------------------------------------------

    def add_box(self, box: Box) -> Box:
        self.boxes.append(box)
        return box

    def base_table(self, table: TableDef) -> BaseTableBox:
        """The shared leaf box for a stored table."""
        box = self._base_tables.get(table.name)
        if box is None:
            box = BaseTableBox(table)
            self._base_tables[table.name] = box
            self.add_box(box)
        return box

    def new_quantifier(self, qtype: str, input_box: Box,
                       name: Optional[str] = None) -> Quantifier:
        if name is None:
            while True:
                name = "q%d" % next(self._quantifier_names)
                if name not in self._used_names:
                    break
        elif name in self._used_names:
            base = name
            suffix = 2
            while name in self._used_names:
                name = "%s_%d" % (base, suffix)
                suffix += 1
        self._used_names.add(name)
        return Quantifier(name, qtype, input_box)

    def remove_box(self, box: Box) -> None:
        """Remove a box that no longer has consumers."""
        if self.consumers(box):
            raise QGMError("box %s still has consumers" % box.label())
        self.boxes.remove(box)
        if isinstance(box, BaseTableBox):
            self._base_tables.pop(box.table.name, None)

    # -- snapshots ---------------------------------------------------------------------

    def snapshot(self) -> "QGM":
        """A deep copy of the graph that shares catalog objects.

        The rewrite engine's search mode explores alternative rule-firing
        sequences on snapshots, costing each variant, without disturbing
        the original graph.  Table definitions and data types are *shared*
        (pinned in the deepcopy memo): they belong to the catalog, not to
        the query, and rules never mutate them.
        """
        memo: Dict[int, Any] = {}
        for box in self.boxes:
            table = getattr(box, "table", None)
            if table is not None:
                memo[id(table)] = table
            for column in box.head.columns:
                if column.dtype is not None:
                    memo[id(column.dtype)] = column.dtype
        return copy.deepcopy(self, memo)

    def adopt(self, other: "QGM") -> None:
        """Take over another graph's contents (same QGM object identity).

        Used by search-mode rewrite: the winning snapshot's boxes become
        this graph's boxes, so callers holding a reference to this QGM see
        the rewritten query.
        """
        self.boxes = other.boxes
        self.root = other.root
        self._base_tables = other._base_tables
        self._quantifier_names = other._quantifier_names
        self._used_names = other._used_names
        self.order_by = other.order_by
        self.limit = other.limit
        self.parameter_count = other.parameter_count
        self.visible_columns = other.visible_columns

    # -- graph queries -----------------------------------------------------------------

    def consumers(self, box: Box) -> List[Quantifier]:
        """Every quantifier (in any box) ranging over ``box``."""
        result = []
        for candidate in self.boxes:
            for quantifier in candidate.quantifiers:
                if quantifier.input is box:
                    result.append(quantifier)
        return result

    def reachable_boxes(self) -> List[Box]:
        """Boxes reachable from the root, in depth-first discovery order."""
        if self.root is None:
            return []
        seen: List[Box] = []
        seen_set = set()
        stack = [self.root]
        while stack:
            box = stack.pop()
            if box in seen_set:
                continue
            seen_set.add(box)
            seen.append(box)
            for quantifier in box.quantifiers:
                stack.append(quantifier.input)
        return seen

    def garbage_collect(self) -> int:
        """Drop boxes no longer reachable from the root; returns the count."""
        reachable = set(self.reachable_boxes())
        removed = 0
        for box in list(self.boxes):
            if box not in reachable:
                self.boxes.remove(box)
                if isinstance(box, BaseTableBox):
                    self._base_tables.pop(box.table.name, None)
                removed += 1
        return removed
