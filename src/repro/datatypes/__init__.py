"""Extensible data-type system (Starburst externally defined types).

Starburst lets a database customizer (DBC) define almost any column type;
externally defined types may appear anywhere a built-in type can, and
functions may be defined over them ([WILM88] in the paper).  This package
provides:

- :class:`~repro.datatypes.types.DataType` — the behaviour a type must
  implement (validation, byte (de)serialization, comparison, width),
- the built-in types ``INTEGER``, ``DOUBLE``, ``VARCHAR``, ``BOOLEAN``,
- :class:`~repro.datatypes.registry.TypeRegistry` — the DBC registration
  point, pre-populated with the built-ins,
- coercion/promotion rules used by the type checker.
"""

from repro.datatypes.types import (
    BOOLEAN,
    DOUBLE,
    INTEGER,
    VARCHAR,
    BooleanType,
    DataType,
    DoubleType,
    IntegerType,
    VarcharType,
)
from repro.datatypes.registry import TypeRegistry, builtin_registry
from repro.datatypes.coercion import (
    can_coerce,
    coerce_value,
    common_type,
    is_comparable,
    is_numeric,
)

__all__ = [
    "DataType",
    "IntegerType",
    "DoubleType",
    "VarcharType",
    "BooleanType",
    "INTEGER",
    "DOUBLE",
    "VARCHAR",
    "BOOLEAN",
    "TypeRegistry",
    "builtin_registry",
    "can_coerce",
    "coerce_value",
    "common_type",
    "is_comparable",
    "is_numeric",
]
