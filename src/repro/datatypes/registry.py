"""Type registry — the DBC registration point for externally defined types.

Each :class:`~repro.core.database.Database` owns a registry seeded from the
built-ins, so extensions registered in one database do not leak into another
(the paper's concern about independent extensions interfering).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.datatypes.types import BOOLEAN, DOUBLE, INTEGER, VARCHAR, DataType, VarcharType
from repro.errors import DataTypeError


class TypeRegistry:
    """Maps type names to :class:`DataType` instances.

    Lookup understands the ``VARCHAR(n)`` spelling and produces a bounded
    :class:`VarcharType` on the fly; all other parameterized types must be
    registered explicitly by the DBC.
    """

    def __init__(self, seed: Optional[Dict[str, DataType]] = None):
        self._types: Dict[str, DataType] = dict(seed or {})

    @classmethod
    def with_builtins(cls) -> "TypeRegistry":
        """Return a fresh registry containing the built-in SQL types."""
        registry = cls()
        for dtype in (INTEGER, DOUBLE, VARCHAR, BOOLEAN):
            registry.register(dtype)
        # Common aliases accepted by the parser.
        registry._types["INT"] = INTEGER
        registry._types["BIGINT"] = INTEGER
        registry._types["FLOAT"] = DOUBLE
        registry._types["REAL"] = DOUBLE
        registry._types["TEXT"] = VARCHAR
        registry._types["STRING"] = VARCHAR
        registry._types["BOOL"] = BOOLEAN
        return registry

    def register(self, dtype: DataType, replace: bool = False) -> DataType:
        """Register an externally defined type.

        Raises :class:`DataTypeError` if the name is taken, unless
        ``replace`` is given (the paper's DBCs are trusted but deliberate).
        """
        name = dtype.name.upper()
        if not replace and name in self._types:
            raise DataTypeError("type %s is already registered" % name)
        self._types[name] = dtype
        return dtype

    def unregister(self, name: str) -> None:
        """Remove a registered type.  Unknown names raise."""
        try:
            del self._types[name.upper()]
        except KeyError:
            raise DataTypeError("type %s is not registered" % name) from None

    def lookup(self, name: str, length: Optional[int] = None) -> DataType:
        """Resolve a type name (optionally parameterized) to a DataType."""
        key = name.upper()
        base = self._types.get(key)
        if base is None:
            raise DataTypeError("unknown type %s" % name)
        if length is not None:
            if isinstance(base, VarcharType):
                return VarcharType(length)
            raise DataTypeError("type %s does not take a length" % name)
        return base

    def __contains__(self, name: str) -> bool:
        return name.upper() in self._types

    def __iter__(self) -> Iterator[str]:
        return iter(self._types)

    def names(self):
        """Return the registered type names (including aliases)."""
        return sorted(self._types)


#: Shared read-only default registry (convenience for tests and examples).
builtin_registry = TypeRegistry.with_builtins()
