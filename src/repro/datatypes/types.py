"""Data types: built-in and the base class for externally defined types.

A :class:`DataType` bundles everything the rest of the system needs to know
about a column type:

- ``validate`` — is a Python value acceptable for this type?
- ``serialize`` / ``deserialize`` — fixed- or variable-length byte encoding
  used by the slotted-page record format (``repro.storage.record``),
- ``compare`` — total order used by sorting, merge join and B+-trees,
- ``fixed_width`` — byte width when the encoding is fixed length, else None
  (the fixed-length storage manager only accepts fixed-width columns),
- ``estimated_width`` — average width used by the optimizer's cost model.

SQL ``NULL`` is represented by Python ``None`` and is handled *outside* the
type (record null bitmap, three-valued logic in the expression evaluator);
``DataType`` methods never see ``None``.
"""

from __future__ import annotations

import struct
from typing import Any, Optional

from repro.errors import DataTypeError


class DataType:
    """Behaviour of a column type.  Subclass to define an external type.

    Subclasses must set :attr:`name` (unique, upper-case by convention) and
    implement :meth:`validate`, :meth:`serialize` and :meth:`deserialize`.
    ``compare`` defaults to Python ordering, which suffices for most types.
    """

    #: Unique type name as it appears in Hydrogen DDL, e.g. ``"INTEGER"``.
    name: str = "ABSTRACT"

    #: Byte width when the serialized form is fixed length, else ``None``.
    fixed_width: Optional[int] = None

    #: Average serialized width in bytes, for cost estimation.
    estimated_width: int = 8

    def validate(self, value: Any) -> bool:
        """Return True when ``value`` is a legal non-null value of this type."""
        raise NotImplementedError

    def serialize(self, value: Any) -> bytes:
        """Encode a validated value to bytes."""
        raise NotImplementedError

    def deserialize(self, data: bytes) -> Any:
        """Decode bytes previously produced by :meth:`serialize`."""
        raise NotImplementedError

    def compare(self, left: Any, right: Any) -> int:
        """Three-way comparison: negative, zero or positive."""
        if left < right:
            return -1
        if left > right:
            return 1
        return 0

    def check(self, value: Any) -> Any:
        """Validate ``value`` and return it, raising :class:`DataTypeError`."""
        if not self.validate(value):
            raise DataTypeError(
                "value %r is not a valid %s" % (value, self.name)
            )
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<DataType %s>" % self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DataType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)


class IntegerType(DataType):
    """64-bit signed integer."""

    name = "INTEGER"
    fixed_width = 8
    estimated_width = 8

    _STRUCT = struct.Struct("<q")

    def validate(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    def serialize(self, value: int) -> bytes:
        return self._STRUCT.pack(value)

    def deserialize(self, data: bytes) -> int:
        return self._STRUCT.unpack(data)[0]


class DoubleType(DataType):
    """IEEE-754 double-precision float.  Integers are accepted and widened."""

    name = "DOUBLE"
    fixed_width = 8
    estimated_width = 8

    _STRUCT = struct.Struct("<d")

    def validate(self, value: Any) -> bool:
        return isinstance(value, (int, float)) and not isinstance(value, bool)

    def serialize(self, value: float) -> bytes:
        return self._STRUCT.pack(float(value))

    def deserialize(self, data: bytes) -> float:
        return self._STRUCT.unpack(data)[0]


class VarcharType(DataType):
    """Variable-length UTF-8 string, optionally bounded by ``max_length``.

    All VARCHARs are mutually compatible regardless of declared length;
    the declared bound is enforced on insert.
    """

    name = "VARCHAR"
    fixed_width = None
    estimated_width = 16

    def __init__(self, max_length: Optional[int] = None):
        self.max_length = max_length

    def validate(self, value: Any) -> bool:
        if not isinstance(value, str):
            return False
        if self.max_length is not None and len(value) > self.max_length:
            return False
        return True

    def serialize(self, value: str) -> bytes:
        return value.encode("utf-8")

    def deserialize(self, data: bytes) -> str:
        return data.decode("utf-8")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.max_length is None:
            return "<DataType VARCHAR>"
        return "<DataType VARCHAR(%d)>" % self.max_length


class BooleanType(DataType):
    """SQL BOOLEAN."""

    name = "BOOLEAN"
    fixed_width = 1
    estimated_width = 1

    def validate(self, value: Any) -> bool:
        return isinstance(value, bool)

    def serialize(self, value: bool) -> bytes:
        return b"\x01" if value else b"\x00"

    def deserialize(self, data: bytes) -> bool:
        return data != b"\x00"


#: Singleton instances of the built-in types.  ``VARCHAR`` is the unbounded
#: instance; bounded instances are created per column as ``VarcharType(n)``.
INTEGER = IntegerType()
DOUBLE = DoubleType()
VARCHAR = VarcharType()
BOOLEAN = BooleanType()
