"""Type coercion and comparability rules used by the Hydrogen type checker.

The rules are deliberately small and SQL-like:

- INTEGER widens to DOUBLE (never the reverse, implicitly),
- every type is comparable with itself,
- externally defined types are only comparable with themselves, unless the
  DBC provides functions that take mixed arguments (functions do their own
  argument checking).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.datatypes.types import (
    BOOLEAN,
    DOUBLE,
    INTEGER,
    DataType,
    DoubleType,
    IntegerType,
    VarcharType,
)


def is_numeric(dtype: DataType) -> bool:
    """True for INTEGER and DOUBLE."""
    return isinstance(dtype, (IntegerType, DoubleType))


def can_coerce(source: DataType, target: DataType) -> bool:
    """Can a value of ``source`` be implicitly converted to ``target``?"""
    if source == target:
        return True
    if isinstance(source, VarcharType) and isinstance(target, VarcharType):
        return True
    if isinstance(source, IntegerType) and isinstance(target, DoubleType):
        return True
    return False


def coerce_value(value: Any, source: DataType, target: DataType) -> Any:
    """Convert ``value`` from ``source`` to ``target`` (must be coercible)."""
    if value is None:
        return None
    if isinstance(source, IntegerType) and isinstance(target, DoubleType):
        return float(value)
    return value


def common_type(left: DataType, right: DataType) -> Optional[DataType]:
    """The promoted type of a binary expression, or None if incompatible."""
    if left == right:
        return left
    if isinstance(left, VarcharType) and isinstance(right, VarcharType):
        # Merge to the looser bound.
        return left if left.max_length is None else right
    if is_numeric(left) and is_numeric(right):
        return DOUBLE
    return None


def is_comparable(left: DataType, right: DataType) -> bool:
    """Can values of the two types appear on either side of a comparison?"""
    return common_type(left, right) is not None


__all__ = [
    "is_numeric",
    "can_coerce",
    "coerce_value",
    "common_type",
    "is_comparable",
    "INTEGER",
    "DOUBLE",
    "BOOLEAN",
]
