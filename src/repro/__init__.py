"""repro — a Python reproduction of "Extensible Query Processing in
Starburst" (Haas, Freytag, Lohman, Pirahesh; SIGMOD 1989).

The public entry point is :class:`repro.Database`:

    >>> from repro import Database
    >>> db = Database()
    >>> db.execute("CREATE TABLE parts (partno INTEGER PRIMARY KEY, "
    ...            "name VARCHAR(30), price DOUBLE)")           # doctest: +ELLIPSIS
    <Result ...>
    >>> db.execute("INSERT INTO parts VALUES (1, 'disk', 99.5)").rowcount
    1
    >>> db.execute("SELECT name FROM parts WHERE price > 10").rows
    [('disk',)]

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.core` — the Database facade, compile pipeline, EXPLAIN,
- :mod:`repro.language` — Hydrogen: lexer, parser, translator,
- :mod:`repro.qgm` — the Query Graph Model,
- :mod:`repro.rewrite` — the rule-based query rewrite engine and rules,
- :mod:`repro.optimizer` — STARs, LOLEPOPs, properties, cost model, join
  enumeration,
- :mod:`repro.executor` — the stream-based Query Evaluation System,
- :mod:`repro.storage`, :mod:`repro.access`, :mod:`repro.catalog`,
  :mod:`repro.datatypes`, :mod:`repro.functions` — the Core substrate and
  the extension registries.
"""

from repro.core.database import Database, Result
from repro.core.options import CompileOptions
from repro.core.plancache import Prepared
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["Database", "Result", "CompileOptions", "Prepared",
           "ReproError", "__version__"]
