"""Externally defined functions (section 2 of the paper).

Hydrogen lets a DBC add four kinds of functions:

- **scalar** functions (``Area(width, length)``) — usable wherever a column
  can be referenced; evaluated at the lowest levels of the system (inside
  the predicate evaluator) so irrelevant data is filtered early,
- **aggregate** functions (``StandardDeviation(salary)``) — range over a
  group of tuples and produce one value; usable wherever built-in
  aggregates are,
- **set-predicate** functions (``MAJORITY``) — take a set of tuples and a
  predicate and decide the predicate's truth over the set; the built-ins
  are SQL's ANY/SOME and ALL,
- **table** functions (``SAMPLE(table, n)``) — take tables and parameters,
  produce a table; usable wherever a table expression can appear.

:class:`FunctionRegistry` is the registration point for all four.
"""

from repro.functions.registry import (
    AggregateFunction,
    FunctionRegistry,
    ScalarFunction,
    SetPredicateFunction,
    TableFunction,
)
from repro.functions.builtins import register_builtins

__all__ = [
    "FunctionRegistry",
    "ScalarFunction",
    "AggregateFunction",
    "TableFunction",
    "SetPredicateFunction",
    "register_builtins",
]
