"""Built-in functions registered into every fresh database.

Scalars: ABS, MOD, SQRT, POWER, ROUND, FLOOR, CEIL, SIGN, UPPER, LOWER,
LENGTH, SUBSTR, CONCAT, TRIM, COALESCE, NULLIF.
Aggregates: COUNT, SUM, AVG, MIN, MAX.
Set predicates: ANY/SOME, ALL.
Table functions: SAMPLE (the paper's example), SERIES (a row generator).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.datatypes.types import DOUBLE, INTEGER, VARCHAR, DataType
from repro.errors import SemanticError
from repro.functions.registry import (
    AggregateFunction,
    FunctionRegistry,
    ScalarFunction,
    SetPredicateFunction,
    TableFunction,
)


def _numeric_passthrough(arg_types: Sequence[DataType]) -> DataType:
    """INTEGER stays INTEGER, anything else numeric becomes DOUBLE."""
    if arg_types and all(t.name == "INTEGER" for t in arg_types if t is not None):
        return INTEGER
    return DOUBLE


def _same_as_first(arg_types: Sequence[DataType]) -> DataType:
    return arg_types[0] if arg_types else VARCHAR


# -- aggregate accumulators ------------------------------------------------------


class _Count:
    def __init__(self):
        self.count = 0

    def step(self, value: Any) -> None:
        self.count += 1

    def final(self) -> int:
        return self.count


class _Sum:
    def __init__(self):
        self.total = None

    def step(self, value: Any) -> None:
        self.total = value if self.total is None else self.total + value

    def final(self) -> Any:
        return self.total


class _Avg:
    def __init__(self):
        self.total = 0.0
        self.count = 0

    def step(self, value: Any) -> None:
        self.total += value
        self.count += 1

    def final(self) -> Optional[float]:
        return self.total / self.count if self.count else None


class _Min:
    def __init__(self):
        self.best = None

    def step(self, value: Any) -> None:
        if self.best is None or value < self.best:
            self.best = value

    def final(self) -> Any:
        return self.best


class _Max:
    def __init__(self):
        self.best = None

    def step(self, value: Any) -> None:
        if self.best is None or value > self.best:
            self.best = value

    def final(self) -> Any:
        return self.best


# -- set-predicate combinators -----------------------------------------------------


def combine_any(outcomes: Iterable[Optional[bool]]) -> Optional[bool]:
    """SQL ANY/SOME: true if any element satisfies; unknown beats false."""
    saw_unknown = False
    for outcome in outcomes:
        if outcome is True:
            return True
        if outcome is None:
            saw_unknown = True
    return None if saw_unknown else False


def combine_all(outcomes: Iterable[Optional[bool]]) -> Optional[bool]:
    """SQL ALL: true if every element satisfies (vacuously true on empty)."""
    saw_unknown = False
    for outcome in outcomes:
        if outcome is False:
            return False
        if outcome is None:
            saw_unknown = True
    return None if saw_unknown else True


# -- table functions ---------------------------------------------------------------


def _sample(args: Sequence[Any], inputs: List[Tuple]) -> Tuple:
    """SAMPLE(table, n): the first n rows of the input table (paper §2).

    Deterministic (a prefix) so tests and benchmarks are repeatable.
    """
    if len(args) != 1:
        raise SemanticError("SAMPLE takes one scalar argument (the size)")
    if len(inputs) != 1:
        raise SemanticError("SAMPLE takes exactly one table input")
    n = args[0]
    names, types, rows = inputs[0]
    return names, types, list(rows)[: max(0, int(n))]


def _series(args: Sequence[Any], inputs: List[Tuple]) -> Tuple:
    """SERIES(start, stop[, step]): integer row generator (source function)."""
    if len(args) not in (2, 3):
        raise SemanticError("SERIES takes (start, stop[, step])")
    start, stop = int(args[0]), int(args[1])
    step = int(args[2]) if len(args) == 3 else 1
    if step == 0:
        raise SemanticError("SERIES step must be non-zero")
    rows = [(value,) for value in range(start, stop + (1 if step > 0 else -1), step)]
    return ["n"], [INTEGER], rows


# -- registration -------------------------------------------------------------------


def register_builtins(registry: FunctionRegistry) -> FunctionRegistry:
    """Populate a registry with every built-in function."""
    scalars = [
        ScalarFunction("abs", abs, _numeric_passthrough, arity=1),
        ScalarFunction("mod", lambda a, b: a % b, _numeric_passthrough, arity=2),
        ScalarFunction("sqrt", math.sqrt, DOUBLE, arity=1),
        ScalarFunction("power", lambda a, b: float(a) ** b, DOUBLE, arity=2),
        ScalarFunction("round", lambda v, n=0: round(v, int(n)), DOUBLE,
                       min_arity=1, max_arity=2),
        ScalarFunction("floor", lambda v: int(math.floor(v)), INTEGER, arity=1),
        ScalarFunction("ceil", lambda v: int(math.ceil(v)), INTEGER, arity=1),
        ScalarFunction("sign", lambda v: (v > 0) - (v < 0), INTEGER, arity=1),
        ScalarFunction("upper", lambda s: s.upper(), VARCHAR, arity=1),
        ScalarFunction("lower", lambda s: s.lower(), VARCHAR, arity=1),
        ScalarFunction("length", len, INTEGER, arity=1),
        ScalarFunction("substr",
                       lambda s, start, length=None:
                       s[int(start) - 1: (int(start) - 1 + int(length))
                         if length is not None else None],
                       VARCHAR, min_arity=2, max_arity=3),
        ScalarFunction("concat", lambda *parts: "".join(str(p) for p in parts),
                       VARCHAR, min_arity=1, max_arity=None),
        ScalarFunction("trim", lambda s: s.strip(), VARCHAR, arity=1),
        ScalarFunction("coalesce",
                       lambda *values: next((v for v in values if v is not None),
                                            None),
                       _same_as_first, min_arity=1, max_arity=None,
                       handles_null=True),
        ScalarFunction("nullif",
                       lambda a, b: None if a == b else a,
                       _same_as_first, arity=2, handles_null=True),
    ]
    for function in scalars:
        registry.register_scalar(function)

    registry.register_aggregate(AggregateFunction("count", _Count, INTEGER,
                                                  handles_null=False))
    registry.register_aggregate(AggregateFunction("sum", _Sum,
                                                  _numeric_passthrough))
    registry.register_aggregate(AggregateFunction("avg", _Avg, DOUBLE))
    registry.register_aggregate(AggregateFunction("min", _Min, _same_as_first))
    registry.register_aggregate(AggregateFunction("max", _Max, _same_as_first))

    registry.register_set_predicate(
        SetPredicateFunction("any", combine_any, quantifier_type="E")
    )
    registry.register_set_predicate(
        SetPredicateFunction("some", combine_any, quantifier_type="E")
    )
    registry.register_set_predicate(
        SetPredicateFunction("all", combine_all, quantifier_type="A")
    )

    registry.register_table_function(TableFunction("sample", _sample,
                                                   table_inputs=1))
    registry.register_table_function(TableFunction("series", _series,
                                                   table_inputs=0))
    return registry
