"""Function objects and the per-database function registry."""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.datatypes.types import DataType
from repro.errors import ExtensionError, SemanticError

#: A return-type spec: a fixed DataType, or a callable mapping the argument
#: types to the result type.
ReturnSpec = Union[DataType, Callable[[Sequence[DataType]], DataType]]


class ScalarFunction:
    """A scalar function: N values in, one value out.

    ``fn`` receives already-evaluated argument values.  It is never called
    with a NULL argument unless ``handles_null`` is set (SQL convention:
    strict functions return NULL on NULL input).
    """

    def __init__(self, name: str, fn: Callable[..., Any],
                 return_type: ReturnSpec, arity: Optional[int] = None,
                 min_arity: Optional[int] = None,
                 max_arity: Optional[int] = None,
                 handles_null: bool = False):
        self.name = name.lower()
        self.fn = fn
        self._return = return_type
        if arity is not None:
            min_arity = max_arity = arity
        self.min_arity = min_arity if min_arity is not None else 0
        self.max_arity = max_arity  # None = variadic
        self.handles_null = handles_null

    def check_arity(self, count: int) -> None:
        if count < self.min_arity or (self.max_arity is not None
                                      and count > self.max_arity):
            raise SemanticError(
                "function %s called with %d arguments" % (self.name, count)
            )

    def return_type(self, arg_types: Sequence[DataType]) -> DataType:
        if callable(self._return) and not isinstance(self._return, DataType):
            return self._return(arg_types)
        return self._return

    def invoke(self, args: Sequence[Any]) -> Any:
        if not self.handles_null and any(a is None for a in args):
            return None
        return self.fn(*args)


class AggregateFunction:
    """An aggregate: ``factory()`` yields a fresh accumulator per group.

    The accumulator protocol is ``step(value)`` / ``final() -> value``.
    NULL inputs are skipped before ``step`` unless ``handles_null``.
    """

    def __init__(self, name: str, factory: Callable[[], Any],
                 return_type: ReturnSpec, handles_null: bool = False):
        self.name = name.lower()
        self.factory = factory
        self._return = return_type
        self.handles_null = handles_null

    def return_type(self, arg_types: Sequence[DataType]) -> DataType:
        if callable(self._return) and not isinstance(self._return, DataType):
            return self._return(arg_types)
        return self._return


class TableFunction:
    """A table function: tables/values in, a table out (paper's SAMPLE).

    ``fn(args, inputs)`` receives the evaluated scalar arguments and a list
    of input tables, each as ``(column_names, column_types, rows)``; it
    returns the same triple for its output.
    """

    def __init__(self, name: str,
                 fn: Callable[[Sequence[Any], List[Tuple]], Tuple],
                 table_inputs: int = 1):
        self.name = name.lower()
        self.fn = fn
        self.table_inputs = table_inputs

    def invoke(self, args: Sequence[Any], inputs: List[Tuple]) -> Tuple:
        return self.fn(args, inputs)


class SetPredicateFunction:
    """A set-predicate function: decides a predicate's truth over a set.

    ``combine`` receives the per-element predicate outcomes (True / False /
    None-for-unknown, in input order) as an iterable and returns the overall
    three-valued verdict.  SQL's ANY and ALL are instances; the paper's
    example extension is MAJORITY.

    The ``quantifier_type`` is the QGM iterator-type tag the translator
    attaches to the subquery quantifier so the rewrite rules and the
    executor know how to interpret it.
    """

    def __init__(self, name: str,
                 combine: Callable[[Iterable[Optional[bool]]], Optional[bool]],
                 quantifier_type: Optional[str] = None):
        self.name = name.lower()
        self.combine = combine
        self.quantifier_type = quantifier_type or self.name.upper()


class FunctionRegistry:
    """All four function kinds for one database instance."""

    def __init__(self):
        self._scalars: Dict[str, ScalarFunction] = {}
        self._aggregates: Dict[str, AggregateFunction] = {}
        self._table_functions: Dict[str, TableFunction] = {}
        self._set_predicates: Dict[str, SetPredicateFunction] = {}

    # -- registration (DBC API) -------------------------------------------------

    def register_scalar(self, function: ScalarFunction,
                        replace: bool = False) -> ScalarFunction:
        self._register(self._scalars, function.name, function, replace,
                       "scalar function")
        return function

    def register_aggregate(self, function: AggregateFunction,
                           replace: bool = False) -> AggregateFunction:
        self._register(self._aggregates, function.name, function, replace,
                       "aggregate function")
        return function

    def register_table_function(self, function: TableFunction,
                                replace: bool = False) -> TableFunction:
        self._register(self._table_functions, function.name, function,
                       replace, "table function")
        return function

    def register_set_predicate(self, function: SetPredicateFunction,
                               replace: bool = False) -> SetPredicateFunction:
        self._register(self._set_predicates, function.name, function,
                       replace, "set-predicate function")
        return function

    @staticmethod
    def _register(table: Dict[str, Any], name: str, function: Any,
                  replace: bool, kind: str) -> None:
        if not replace and name in table:
            raise ExtensionError("%s %s already registered" % (kind, name))
        table[name] = function

    # -- lookup -------------------------------------------------------------------

    def scalar(self, name: str) -> Optional[ScalarFunction]:
        return self._scalars.get(name.lower())

    def aggregate(self, name: str) -> Optional[AggregateFunction]:
        return self._aggregates.get(name.lower())

    def table_function(self, name: str) -> Optional[TableFunction]:
        return self._table_functions.get(name.lower())

    def set_predicate(self, name: str) -> Optional[SetPredicateFunction]:
        return self._set_predicates.get(name.lower())

    def set_predicate_for_qtype(self, qtype: str) -> Optional[SetPredicateFunction]:
        for function in self._set_predicates.values():
            if function.quantifier_type == qtype:
                return function
        return None

    def is_aggregate(self, name: str) -> bool:
        return name.lower() in self._aggregates

    def names(self) -> Dict[str, List[str]]:
        return {
            "scalar": sorted(self._scalars),
            "aggregate": sorted(self._aggregates),
            "table": sorted(self._table_functions),
            "set_predicate": sorted(self._set_predicates),
        }
