"""The Query Evaluation System (section 7 of the paper).

The QES interprets query evaluation plans: "Each operator takes one or more
streams of tuples as input and produces one or more streams of tuples ...
We implement the concept of streams by lazy evaluation to keep intermediate
results between operators as small as one tuple."

Reproduced design points:

- operators are lazy Python generators over *binding streams* (environments
  mapping quantifiers to rows) and *row streams* (plain tuples),
- join operators separate the join **method** (NL / merge / hash) from the
  join **kind** (regular, exists, not_exists, all, scalar, left_outer, and
  DBC-registered kinds) — one operator handles many kinds,
- subqueries are evaluated **on demand** with caching keyed on correlation
  values ("evaluate-on-demand" replacing evaluate-at-open/application),
- the **OR operator** evaluates disjunctive predicates involving
  subqueries without changing the other operators,
- recursive table expressions run as semi-naive (or, for comparison,
  naive) fixpoints over DELTA streams.
"""

from repro.executor.context import ExecutionContext, ExecutionStats
from repro.executor.evaluator import Evaluator
from repro.executor.run import execute_plan
from repro.executor.kinds import JoinKindRegistry, default_join_kinds

__all__ = [
    "ExecutionContext",
    "ExecutionStats",
    "Evaluator",
    "execute_plan",
    "JoinKindRegistry",
    "default_join_kinds",
]
