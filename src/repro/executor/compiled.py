"""Plan refinement: compiling QEP expressions into Python closures.

Section 7 notes that the algebraic interface "can also serve as the input
specification to a component that compiles QEPs into iterative programs
[FREY86]".  This module is that component's expression half: the
*refinement* phase of Figure 1 walks the optimizer's plan and replaces
interpreted expression trees with composed Python closures — no AST
dispatch at run time.

Only subquery-free expressions compile (anything touching an unbound
quantifier of type E/A/S/... falls back to the interpreting
:class:`~repro.executor.evaluator.Evaluator`, which owns the
evaluate-on-demand machinery).  A compiled predicate is attached to its
:class:`~repro.qgm.model.Predicate` as ``compiled``; the stream operators
use it when present.

Closures have the signature ``f(env, params) -> value`` with SQL
three-valued semantics (None = unknown/NULL).

The compiler also has a *batch* path (``compile_batch``) used by the
vectorized executor: batch closures have the signature
``f(batch, idx, params) -> list`` where ``batch`` exposes
``col(quantifier, position) -> full-length column list`` and ``idx`` is
the list of physical row indices to evaluate.  Results align with
``idx``.  Batch closures replicate the scalar closures' semantics
exactly, including which sub-expressions are (not) evaluated for a given
row — that is what keeps error behaviour (division by zero, function
errors) identical between the two backends.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import DivisionByZeroError, ExecutionError
from repro.executor.evaluator import _like_regex, kleene_not
from repro.qgm import expressions as qe

Compiled = Callable[[Dict, Sequence[Any]], Any]

#: Batch closure: f(batch, idx, params) -> list aligned with idx.
BatchCompiled = Callable[[Any, List[int], Sequence[Any]], List[Any]]


class ExprCompiler:
    """Compiles QGM expressions; returns None for non-compilable ones."""

    def __init__(self, functions):
        self.functions = functions
        self.compiled_count = 0
        self.fallback_count = 0
        self.batch_compiled_count = 0
        self.batch_fallback_count = 0

    def compile(self, expr: qe.QExpr) -> Optional[Compiled]:
        # Unbound subquery machinery needs the interpreting evaluator.
        for quantifier in qe.quantifiers_in(expr):
            if not quantifier.is_setformer:
                self.fallback_count += 1
                return None
        try:
            fn = self._compile(expr)
        except _NotCompilable:
            self.fallback_count += 1
            return None
        self.compiled_count += 1
        return fn

    # -- node compilers -------------------------------------------------------

    def _compile(self, expr: qe.QExpr) -> Compiled:
        method = getattr(self, "_c_%s" % type(expr).__name__.lower(), None)
        if method is None:
            raise _NotCompilable(type(expr).__name__)
        return method(expr)

    def _c_const(self, expr: qe.Const) -> Compiled:
        value = expr.value
        return lambda env, params: value

    def _c_paramref(self, expr: qe.ParamRef) -> Compiled:
        index = expr.index

        def get_param(env, params):
            try:
                return params[index]
            except IndexError:
                raise ExecutionError(
                    "no value bound for parameter %d" % (index + 1)
                ) from None

        return get_param

    def _c_colref(self, expr: qe.ColRef) -> Compiled:
        quantifier = expr.quantifier
        position = quantifier.input.head.index_of(expr.column)

        def get_column(env, params):
            row = env[quantifier]
            return None if row is None else row[position]

        return get_column

    _COMPARISONS = {
        "=": lambda a, b: a == b,
        "<>": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def _c_binop(self, expr: qe.BinOp) -> Compiled:
        left = self._compile(expr.left)
        right = self._compile(expr.right)
        op = expr.op
        if op == "and":
            def and_fn(env, params):
                a = left(env, params)
                if a is False:
                    return False
                b = right(env, params)
                if b is False:
                    return False
                if a is None or b is None:
                    return None
                return True
            return and_fn
        if op == "or":
            def or_fn(env, params):
                a = left(env, params)
                if a is True:
                    return True
                b = right(env, params)
                if b is True:
                    return True
                if a is None or b is None:
                    return None
                return False
            return or_fn
        if op in self._COMPARISONS:
            compare = self._COMPARISONS[op]

            def cmp_fn(env, params):
                a = left(env, params)
                if a is None:
                    return None
                b = right(env, params)
                if b is None:
                    return None
                return compare(a, b)
            return cmp_fn
        if op == "||":
            def concat(env, params):
                a = left(env, params)
                b = right(env, params)
                if a is None or b is None:
                    return None
                return str(a) + str(b)
            return concat
        if op in ("+", "-", "*"):
            arith = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
                     "*": lambda a, b: a * b}[op]

            def arith_fn(env, params):
                a = left(env, params)
                if a is None:
                    return None
                b = right(env, params)
                if b is None:
                    return None
                return arith(a, b)
            return arith_fn
        if op in ("/", "%"):
            is_div = op == "/"

            def div_fn(env, params):
                a = left(env, params)
                if a is None:
                    return None
                b = right(env, params)
                if b is None:
                    return None
                if b == 0:
                    raise DivisionByZeroError("division by zero")
                return a / b if is_div else a % b
            return div_fn
        raise _NotCompilable(op)

    def _c_not(self, expr: qe.Not) -> Compiled:
        operand = self._compile(expr.operand)
        return lambda env, params: kleene_not(operand(env, params))

    def _c_neg(self, expr: qe.Neg) -> Compiled:
        operand = self._compile(expr.operand)

        def neg(env, params):
            value = operand(env, params)
            return None if value is None else -value

        return neg

    def _c_isnulltest(self, expr: qe.IsNullTest) -> Compiled:
        operand = self._compile(expr.operand)
        negated = expr.negated

        def test(env, params):
            is_null = operand(env, params) is None
            return (not is_null) if negated else is_null

        return test

    def _c_likeop(self, expr: qe.LikeOp) -> Compiled:
        operand = self._compile(expr.operand)
        negated = expr.negated
        if isinstance(expr.pattern, qe.Const) and expr.pattern.value is not None:
            regex = _like_regex(expr.pattern.value)

            def like_const(env, params):
                value = operand(env, params)
                if value is None:
                    return None
                matched = regex.match(value) is not None
                return (not matched) if negated else matched
            return like_const
        pattern = self._compile(expr.pattern)

        def like_dynamic(env, params):
            value = operand(env, params)
            pat = pattern(env, params)
            if value is None or pat is None:
                return None
            matched = _like_regex(pat).match(value) is not None
            return (not matched) if negated else matched

        return like_dynamic

    def _c_funccall(self, expr: qe.FuncCall) -> Compiled:
        function = self.functions.scalar(expr.name)
        if function is None:
            raise _NotCompilable(expr.name)
        args = [self._compile(a) for a in expr.args]

        def call(env, params):
            values = [a(env, params) for a in args]
            try:
                return function.invoke(values)
            except ExecutionError:
                raise
            except Exception as exc:
                raise ExecutionError(
                    "function %s failed: %s" % (function.name, exc)
                ) from exc

        return call

    def _c_caseop(self, expr: qe.CaseOp) -> Compiled:
        whens = [(self._compile(c), self._compile(v))
                 for c, v in expr.whens]
        else_fn = (self._compile(expr.else_value)
                   if expr.else_value is not None else None)

        def case(env, params):
            for condition, value in whens:
                if condition(env, params) is True:
                    return value(env, params)
            return else_fn(env, params) if else_fn is not None else None

        return case

    def _c_cast(self, expr: qe.Cast) -> Compiled:
        operand = self._compile(expr.operand)
        target = expr.dtype
        caster = {"INTEGER": int, "DOUBLE": float, "VARCHAR": str,
                  "BOOLEAN": bool}.get(target.name)

        def cast(env, params):
            value = operand(env, params)
            if value is None:
                return None
            if caster is not None:
                try:
                    return caster(value)
                except (TypeError, ValueError) as exc:
                    raise ExecutionError("bad cast: %s" % exc) from exc
            if target.validate(value):
                return value
            raise ExecutionError("cannot cast %r to %s" % (value,
                                                           target.name))

        return cast

    # -- batch (column-wise) compilation --------------------------------------

    def compile_batch(self, expr: qe.QExpr) -> Optional[BatchCompiled]:
        """Column-wise variant of :meth:`compile` for the vectorized
        executor; None when the expression needs the tuple interpreter."""
        for quantifier in qe.quantifiers_in(expr):
            if not quantifier.is_setformer:
                self.batch_fallback_count += 1
                return None
        try:
            fn = self._compile_batch(expr)
        except _NotCompilable:
            self.batch_fallback_count += 1
            return None
        self.batch_compiled_count += 1
        return fn

    def _compile_batch(self, expr: qe.QExpr) -> BatchCompiled:
        method = getattr(self, "_cb_%s" % type(expr).__name__.lower(), None)
        if method is None:
            raise _NotCompilable(type(expr).__name__)
        return method(expr)

    @staticmethod
    def _can_raise(expr: qe.QExpr) -> bool:
        """Whether evaluating ``expr`` can raise for some row.

        The scalar closures skip the right operand when the left is NULL;
        eager column-wise evaluation is only safe when the skipped side
        cannot raise, otherwise the batch path masks it to the rows the
        scalar path would actually evaluate.
        """
        for node in qe.walk(expr):
            if isinstance(node, qe.BinOp) and node.op in ("/", "%"):
                return True
            if isinstance(node, (qe.FuncCall, qe.Cast, qe.ParamRef)):
                return True
        return False

    def _cb_const(self, expr: qe.Const) -> BatchCompiled:
        value = expr.value
        return lambda batch, idx, params: [value] * len(idx)

    def _cb_paramref(self, expr: qe.ParamRef) -> BatchCompiled:
        index = expr.index

        def get_param(batch, idx, params):
            try:
                value = params[index]
            except IndexError:
                raise ExecutionError(
                    "no value bound for parameter %d" % (index + 1)
                ) from None
            return [value] * len(idx)

        return get_param

    def _cb_colref(self, expr: qe.ColRef) -> BatchCompiled:
        quantifier = expr.quantifier
        position = quantifier.input.head.index_of(expr.column)

        def get_column(batch, idx, params):
            col = batch.col(quantifier, position)
            return [col[i] for i in idx]

        return get_column

    def _cb_binop(self, expr: qe.BinOp) -> BatchCompiled:
        left = self._compile_batch(expr.left)
        op = expr.op
        if op in ("and", "or"):
            right = self._compile_batch(expr.right)
            # The value that decides the result without looking right.
            stop = False if op == "and" else True

            def logic(batch, idx, params):
                avals = left(batch, idx, params)
                sub = [i for i, a in zip(idx, avals) if a is not stop]
                bvals = iter(right(batch, sub, params)) if sub else iter(())
                out = []
                for a in avals:
                    if a is stop:
                        out.append(stop)
                        continue
                    b = next(bvals)
                    if b is stop:
                        out.append(stop)
                    elif a is None or b is None:
                        out.append(None)
                    else:
                        out.append(not stop)
                return out

            return logic
        right = self._compile_batch(expr.right)
        right_raises = self._can_raise(expr.right)

        def eval_right(batch, idx, params, avals):
            # Aligned with idx; error-capable right sides run only where
            # the left is non-NULL (the scalar closures' short-circuit).
            if not right_raises:
                return right(batch, idx, params)
            sub = [i for i, a in zip(idx, avals) if a is not None]
            if len(sub) == len(idx):
                return right(batch, idx, params)
            vals = iter(right(batch, sub, params)) if sub else iter(())
            return [next(vals) if a is not None else None for a in avals]

        if op in self._COMPARISONS:
            compare = self._COMPARISONS[op]

            def cmp_cols(batch, idx, params):
                avals = left(batch, idx, params)
                bvals = eval_right(batch, idx, params, avals)
                return [None if a is None or b is None else compare(a, b)
                        for a, b in zip(avals, bvals)]

            return cmp_cols
        if op == "||":
            def concat_cols(batch, idx, params):
                avals = left(batch, idx, params)
                bvals = right(batch, idx, params)  # scalar concat is eager
                return [None if a is None or b is None else str(a) + str(b)
                        for a, b in zip(avals, bvals)]

            return concat_cols
        if op in ("+", "-", "*"):
            arith = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
                     "*": lambda a, b: a * b}[op]

            def arith_cols(batch, idx, params):
                avals = left(batch, idx, params)
                bvals = eval_right(batch, idx, params, avals)
                return [None if a is None or b is None else arith(a, b)
                        for a, b in zip(avals, bvals)]

            return arith_cols
        if op in ("/", "%"):
            is_div = op == "/"

            def div_cols(batch, idx, params):
                avals = left(batch, idx, params)
                bvals = eval_right(batch, idx, params, avals)
                out = []
                for a, b in zip(avals, bvals):
                    if a is None or b is None:
                        out.append(None)
                    elif b == 0:
                        raise DivisionByZeroError("division by zero")
                    else:
                        out.append(a / b if is_div else a % b)
                return out

            return div_cols
        raise _NotCompilable(op)

    def _cb_not(self, expr: qe.Not) -> BatchCompiled:
        operand = self._compile_batch(expr.operand)

        def not_cols(batch, idx, params):
            return [kleene_not(v) for v in operand(batch, idx, params)]

        return not_cols

    def _cb_neg(self, expr: qe.Neg) -> BatchCompiled:
        operand = self._compile_batch(expr.operand)

        def neg_cols(batch, idx, params):
            return [None if v is None else -v
                    for v in operand(batch, idx, params)]

        return neg_cols

    def _cb_isnulltest(self, expr: qe.IsNullTest) -> BatchCompiled:
        operand = self._compile_batch(expr.operand)
        negated = expr.negated

        def test_cols(batch, idx, params):
            values = operand(batch, idx, params)
            if negated:
                return [v is not None for v in values]
            return [v is None for v in values]

        return test_cols

    def _cb_likeop(self, expr: qe.LikeOp) -> BatchCompiled:
        operand = self._compile_batch(expr.operand)
        negated = expr.negated
        if isinstance(expr.pattern, qe.Const) \
                and expr.pattern.value is not None:
            regex = _like_regex(expr.pattern.value)

            def like_const_cols(batch, idx, params):
                out = []
                for v in operand(batch, idx, params):
                    if v is None:
                        out.append(None)
                    else:
                        matched = regex.match(v) is not None
                        out.append((not matched) if negated else matched)
                return out

            return like_const_cols
        pattern = self._compile_batch(expr.pattern)

        def like_dyn_cols(batch, idx, params):
            values = operand(batch, idx, params)
            patterns = pattern(batch, idx, params)
            out = []
            for v, p in zip(values, patterns):
                if v is None or p is None:
                    out.append(None)
                else:
                    matched = _like_regex(p).match(v) is not None
                    out.append((not matched) if negated else matched)
            return out

        return like_dyn_cols

    def _cb_funccall(self, expr: qe.FuncCall) -> BatchCompiled:
        function = self.functions.scalar(expr.name)
        if function is None:
            raise _NotCompilable(expr.name)
        args = [self._compile_batch(a) for a in expr.args]

        def call_cols(batch, idx, params):
            if args:
                rows = zip(*[a(batch, idx, params) for a in args])
            else:
                rows = (() for _ in idx)
            out = []
            for values in rows:
                try:
                    out.append(function.invoke(list(values)))
                except ExecutionError:
                    raise
                except Exception as exc:
                    raise ExecutionError(
                        "function %s failed: %s" % (function.name, exc)
                    ) from exc
            return out

        return call_cols

    def _cb_caseop(self, expr: qe.CaseOp) -> BatchCompiled:
        whens = [(self._compile_batch(c), self._compile_batch(v))
                 for c, v in expr.whens]
        else_fn = (self._compile_batch(expr.else_value)
                   if expr.else_value is not None else None)

        def case_cols(batch, idx, params):
            # Mirror the scalar closure: each row evaluates conditions in
            # order until one is True, and only that row's value branch.
            out = [None] * len(idx)
            pending = list(range(len(idx)))
            for condition, value in whens:
                if not pending:
                    break
                cond_vals = condition(
                    batch, [idx[p] for p in pending], params)
                hits = [p for p, c in zip(pending, cond_vals) if c is True]
                if hits:
                    vals = value(batch, [idx[p] for p in hits], params)
                    for p, v in zip(hits, vals):
                        out[p] = v
                pending = [p for p, c in zip(pending, cond_vals)
                           if c is not True]
            if else_fn is not None and pending:
                vals = else_fn(batch, [idx[p] for p in pending], params)
                for p, v in zip(pending, vals):
                    out[p] = v
            return out

        return case_cols

    def _cb_cast(self, expr: qe.Cast) -> BatchCompiled:
        operand = self._compile_batch(expr.operand)
        target = expr.dtype
        caster = {"INTEGER": int, "DOUBLE": float, "VARCHAR": str,
                  "BOOLEAN": bool}.get(target.name)

        def cast_cols(batch, idx, params):
            out = []
            for value in operand(batch, idx, params):
                if value is None:
                    out.append(None)
                elif caster is not None:
                    try:
                        out.append(caster(value))
                    except (TypeError, ValueError) as exc:
                        raise ExecutionError("bad cast: %s" % exc) from exc
                elif target.validate(value):
                    out.append(value)
                else:
                    raise ExecutionError(
                        "cannot cast %r to %s" % (value, target.name))
            return out

        return cast_cols


class _NotCompilable(Exception):
    """Internal: the expression needs the interpreting evaluator."""


def refine_plan(plan, functions) -> ExprCompiler:
    """The plan-refinement phase: compile every compilable predicate and
    head expression in the plan, in place.

    Returns the compiler (whose counters EXPLAIN and benchmarks report).
    """
    compiler = ExprCompiler(functions)
    for node in plan.walk():
        for attr in ("preds", "matched_preds", "residual"):
            for predicate in getattr(node, attr, []) or []:
                if getattr(predicate, "compiled", None) is None:
                    predicate.compiled = compiler.compile(predicate.expr)
        if hasattr(node, "exprs"):  # Project
            node.compiled_exprs = [compiler.compile(e) for e in node.exprs]
    return compiler
