"""Plan refinement: compiling QEP expressions into Python closures.

Section 7 notes that the algebraic interface "can also serve as the input
specification to a component that compiles QEPs into iterative programs
[FREY86]".  This module is that component's expression half: the
*refinement* phase of Figure 1 walks the optimizer's plan and replaces
interpreted expression trees with composed Python closures — no AST
dispatch at run time.

Only subquery-free expressions compile (anything touching an unbound
quantifier of type E/A/S/... falls back to the interpreting
:class:`~repro.executor.evaluator.Evaluator`, which owns the
evaluate-on-demand machinery).  A compiled predicate is attached to its
:class:`~repro.qgm.model.Predicate` as ``compiled``; the stream operators
use it when present.

Closures have the signature ``f(env, params) -> value`` with SQL
three-valued semantics (None = unknown/NULL).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from repro.errors import ExecutionError
from repro.executor.evaluator import _like_regex, kleene_not
from repro.qgm import expressions as qe

Compiled = Callable[[Dict, Sequence[Any]], Any]


class ExprCompiler:
    """Compiles QGM expressions; returns None for non-compilable ones."""

    def __init__(self, functions):
        self.functions = functions
        self.compiled_count = 0
        self.fallback_count = 0

    def compile(self, expr: qe.QExpr) -> Optional[Compiled]:
        # Unbound subquery machinery needs the interpreting evaluator.
        for quantifier in qe.quantifiers_in(expr):
            if not quantifier.is_setformer:
                self.fallback_count += 1
                return None
        try:
            fn = self._compile(expr)
        except _NotCompilable:
            self.fallback_count += 1
            return None
        self.compiled_count += 1
        return fn

    # -- node compilers -------------------------------------------------------

    def _compile(self, expr: qe.QExpr) -> Compiled:
        method = getattr(self, "_c_%s" % type(expr).__name__.lower(), None)
        if method is None:
            raise _NotCompilable(type(expr).__name__)
        return method(expr)

    def _c_const(self, expr: qe.Const) -> Compiled:
        value = expr.value
        return lambda env, params: value

    def _c_paramref(self, expr: qe.ParamRef) -> Compiled:
        index = expr.index

        def get_param(env, params):
            try:
                return params[index]
            except IndexError:
                raise ExecutionError(
                    "no value bound for parameter %d" % (index + 1)
                ) from None

        return get_param

    def _c_colref(self, expr: qe.ColRef) -> Compiled:
        quantifier = expr.quantifier
        position = quantifier.input.head.index_of(expr.column)

        def get_column(env, params):
            row = env[quantifier]
            return None if row is None else row[position]

        return get_column

    _COMPARISONS = {
        "=": lambda a, b: a == b,
        "<>": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def _c_binop(self, expr: qe.BinOp) -> Compiled:
        left = self._compile(expr.left)
        right = self._compile(expr.right)
        op = expr.op
        if op == "and":
            def and_fn(env, params):
                a = left(env, params)
                if a is False:
                    return False
                b = right(env, params)
                if b is False:
                    return False
                if a is None or b is None:
                    return None
                return True
            return and_fn
        if op == "or":
            def or_fn(env, params):
                a = left(env, params)
                if a is True:
                    return True
                b = right(env, params)
                if b is True:
                    return True
                if a is None or b is None:
                    return None
                return False
            return or_fn
        if op in self._COMPARISONS:
            compare = self._COMPARISONS[op]

            def cmp_fn(env, params):
                a = left(env, params)
                if a is None:
                    return None
                b = right(env, params)
                if b is None:
                    return None
                return compare(a, b)
            return cmp_fn
        if op == "||":
            def concat(env, params):
                a = left(env, params)
                b = right(env, params)
                if a is None or b is None:
                    return None
                return str(a) + str(b)
            return concat
        if op in ("+", "-", "*"):
            arith = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
                     "*": lambda a, b: a * b}[op]

            def arith_fn(env, params):
                a = left(env, params)
                if a is None:
                    return None
                b = right(env, params)
                if b is None:
                    return None
                return arith(a, b)
            return arith_fn
        if op in ("/", "%"):
            is_div = op == "/"

            def div_fn(env, params):
                a = left(env, params)
                if a is None:
                    return None
                b = right(env, params)
                if b is None:
                    return None
                if b == 0:
                    raise ExecutionError("division by zero")
                return a / b if is_div else a % b
            return div_fn
        raise _NotCompilable(op)

    def _c_not(self, expr: qe.Not) -> Compiled:
        operand = self._compile(expr.operand)
        return lambda env, params: kleene_not(operand(env, params))

    def _c_neg(self, expr: qe.Neg) -> Compiled:
        operand = self._compile(expr.operand)

        def neg(env, params):
            value = operand(env, params)
            return None if value is None else -value

        return neg

    def _c_isnulltest(self, expr: qe.IsNullTest) -> Compiled:
        operand = self._compile(expr.operand)
        negated = expr.negated

        def test(env, params):
            is_null = operand(env, params) is None
            return (not is_null) if negated else is_null

        return test

    def _c_likeop(self, expr: qe.LikeOp) -> Compiled:
        operand = self._compile(expr.operand)
        negated = expr.negated
        if isinstance(expr.pattern, qe.Const) and expr.pattern.value is not None:
            regex = _like_regex(expr.pattern.value)

            def like_const(env, params):
                value = operand(env, params)
                if value is None:
                    return None
                matched = regex.match(value) is not None
                return (not matched) if negated else matched
            return like_const
        pattern = self._compile(expr.pattern)

        def like_dynamic(env, params):
            value = operand(env, params)
            pat = pattern(env, params)
            if value is None or pat is None:
                return None
            matched = _like_regex(pat).match(value) is not None
            return (not matched) if negated else matched

        return like_dynamic

    def _c_funccall(self, expr: qe.FuncCall) -> Compiled:
        function = self.functions.scalar(expr.name)
        if function is None:
            raise _NotCompilable(expr.name)
        args = [self._compile(a) for a in expr.args]

        def call(env, params):
            values = [a(env, params) for a in args]
            try:
                return function.invoke(values)
            except ExecutionError:
                raise
            except Exception as exc:
                raise ExecutionError(
                    "function %s failed: %s" % (function.name, exc)
                ) from exc

        return call

    def _c_caseop(self, expr: qe.CaseOp) -> Compiled:
        whens = [(self._compile(c), self._compile(v))
                 for c, v in expr.whens]
        else_fn = (self._compile(expr.else_value)
                   if expr.else_value is not None else None)

        def case(env, params):
            for condition, value in whens:
                if condition(env, params) is True:
                    return value(env, params)
            return else_fn(env, params) if else_fn is not None else None

        return case

    def _c_cast(self, expr: qe.Cast) -> Compiled:
        operand = self._compile(expr.operand)
        target = expr.dtype
        caster = {"INTEGER": int, "DOUBLE": float, "VARCHAR": str,
                  "BOOLEAN": bool}.get(target.name)

        def cast(env, params):
            value = operand(env, params)
            if value is None:
                return None
            if caster is not None:
                try:
                    return caster(value)
                except (TypeError, ValueError) as exc:
                    raise ExecutionError("bad cast: %s" % exc) from exc
            if target.validate(value):
                return value
            raise ExecutionError("cannot cast %r to %s" % (value,
                                                           target.name))

        return cast


class _NotCompilable(Exception):
    """Internal: the expression needs the interpreting evaluator."""


def refine_plan(plan, functions) -> ExprCompiler:
    """The plan-refinement phase: compile every compilable predicate and
    head expression in the plan, in place.

    Returns the compiler (whose counters EXPLAIN and benchmarks report).
    """
    compiler = ExprCompiler(functions)
    for node in plan.walk():
        for attr in ("preds", "matched_preds", "residual"):
            for predicate in getattr(node, attr, []) or []:
                if getattr(predicate, "compiled", None) is None:
                    predicate.compiled = compiler.compile(predicate.expr)
        if hasattr(node, "exprs"):  # Project
            node.compiled_exprs = [compiler.compile(e) for e in node.exprs]
    return compiler
