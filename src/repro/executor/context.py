"""Execution context and statistics."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple


class ExecutionStats:
    """Counters exposed to tests and benchmarks."""

    def __init__(self):
        self.rows_scanned = 0
        self.rows_emitted = 0
        self.index_probes = 0
        self.subquery_evaluations = 0
        self.subquery_cache_hits = 0
        self.recursion_iterations = 0
        self.sorts = 0
        self.or_branch_shortcuts = 0
        #: Number of RowBatch/EnvBatch objects the vectorized engine
        #: produced (0 under pure tuple execution).
        self.batches = 0
        #: Number of batch/tuple boundary crossings: plan fragments that
        #: fell back to the tuple interpreter under a batch-mode plan
        #: (and compiled→batch demotions consumed mid-plan).
        self.fallbacks = 0
        #: Number of fused pipeline functions the codegen backend ran
        #: (0 unless execution_mode is "compiled"/"auto").
        self.codegen_pipelines = 0
        #: Number of Exchange operators executed by the parallel runtime.
        self.parallel_exchanges = 0
        #: Number of page-range morsels dispatched to workers.
        self.morsels = 0
        #: Exchanges that degraded to inline dop=1 execution (no fork, no
        #: pool, writes in flight, ...); reasons in ``parallel_reasons``.
        self.parallel_fallbacks = 0
        #: Human-readable reasons for each parallel fallback.
        self.parallel_reasons: list = []
        #: Bytes moved between processes by Repartition/Ship exchanges
        #: (measured wire-format bytes, not pickle overhead).
        self.exchange_bytes = 0
        #: Partitions skipped by equality-predicate partition pruning on
        #: sharded table scans.
        self.partitions_pruned = 0

    def reset(self) -> None:
        self.__init__()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        # Generated from vars() so newly added counters can never go
        # stale in the repr again.
        fields = " ".join("%s=%r" % (name, value)
                          for name, value in sorted(vars(self).items()))
        return "<ExecStats %s>" % fields


class ExecutionContext:
    """Everything a running plan needs.

    - ``engine`` — the storage engine (scans, index probes, DML),
    - ``functions`` — the function registry (scalar, aggregate, table,
      set-predicate),
    - ``params`` — host-variable values,
    - ``txn`` — the surrounding transaction (may be None for read-only
      autocommit execution),
    - ``subplan_bindings`` — subquery quantifier → SubplanBinding, pushed
      into scope by the operators that own them,
    - ``recursion_deltas`` — per recursive box, the current delta rows
      visible to DELTA scans,
    - ``subquery_cache`` — evaluate-on-demand memo keyed by (binding id,
      correlation values).
    """

    def __init__(self, engine, functions, params: Sequence[Any] = (),
                 txn=None):
        self.engine = engine
        self.functions = functions
        self.params = list(params)
        self.txn = txn
        self.stats = ExecutionStats()
        self.subplan_bindings: Dict[Any, Any] = {}
        self.recursion_deltas: Dict[Any, List[Tuple[Any, ...]]] = {}
        self.subquery_cache: Dict[Tuple, List[Tuple[Any, ...]]] = {}
        #: Set by DML operators: number of affected rows.
        self.rowcount: Optional[int] = None
        #: When False, correlation caching is disabled (benchmark E8).
        self.cache_subqueries = True
        #: Rows per batch for plan subtrees running on the vectorized
        #: backend (set from ``CompileOptions.batch_size`` by the caller).
        self.batch_size = 1024
        #: (lo, hi) heap page-number morsel restricting the SCAN marked as
        #: the partitioned source; set inside parallel workers only.
        self.morsel_range: Optional[Tuple[int, int]] = None
        #: The SCAN node the morsel restriction applies to (identity).
        self.morsel_scan = None
        #: Inside partition-wise workers: ``id(scan node) → partition``
        #: restricting co-located sharded scans to one partition.
        self.partition_map: Optional[Dict[int, int]] = None
        #: Inside partition-wise workers: ``id(repartition node) → list
        #: of (seq, env)`` — the shuffled feed replacing the node's
        #: child stream.  None during serial execution (the node is a
        #: pass-through then).
        self.repartition_feeds: Optional[Dict[int, Any]] = None
        #: The owning Database's parallel runtime (worker-pool manager);
        #: None means Exchange operators execute their child inline.
        self.parallel = None
        #: Per-operator runtime probes (:class:`repro.obs.PlanProfile`);
        #: None — the default — means every dispatch site skips the
        #: instrumentation wrappers entirely.
        self.profile = None
        #: The request-scoped :class:`repro.obs.spans.RequestTrace` this
        #: execution runs under; None — the default — means the parallel
        #: runtime neither requests nor merges worker span fragments.
        self.trace = None

    def bind_subplans(self, bindings) -> None:
        for binding in bindings:
            self.subplan_bindings[binding.quantifier] = binding

    def unbind_subplans(self, bindings) -> None:
        for binding in bindings:
            self.subplan_bindings.pop(binding.quantifier, None)
