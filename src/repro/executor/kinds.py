"""Join kinds: the *function* a join performs, separated from its method.

"Each join operator takes as one of its parameters a function name,
representing the join kind.  In this way a single operator can handle many
different join kinds ... For example, 'left outer' join could be added as a
join kind, allowing the left outer join operator to take advantage of
existing methods of join evaluation."

A :class:`JoinKind` decides what a join emits given the outer row and the
stream of matching inner rows.  The combination step for subquery kinds
(exists / all / DBC set predicates) delegates to the set-predicate
combinators so a DBC's MAJORITY function works in joins automatically.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ExtensionError, SubqueryError
from repro.functions.builtins import combine_all, combine_any


class JoinKind:
    """Behaviour descriptors consulted by the join operators.

    - ``binds_inner`` — the inner row joins the binding stream,
    - ``preserves_outer`` — unmatched outer rows are emitted (padded),
    - ``combine`` — for subquery kinds: fold the per-inner-row predicate
      outcomes into one verdict (None means "not a subquery kind"),
    - ``scalar`` — the inner must produce at most one row, which is bound
      (NULLs when empty).
    """

    def __init__(self, name: str, binds_inner: bool = False,
                 preserves_outer: bool = False,
                 combine: Optional[Callable[[Iterable[Optional[bool]]],
                                            Optional[bool]]] = None,
                 scalar: bool = False):
        self.name = name
        self.binds_inner = binds_inner
        self.preserves_outer = preserves_outer
        self.combine = combine
        self.scalar = scalar


def _combine_not_exists(outcomes: Iterable[Optional[bool]]) -> Optional[bool]:
    verdict = combine_any(outcomes)
    if verdict is None:
        return None
    return not verdict


class JoinKindRegistry:
    """Registered join kinds for one database (DBC extension point)."""

    def __init__(self):
        self._kinds: Dict[str, JoinKind] = {}

    def register(self, kind: JoinKind, replace: bool = False) -> JoinKind:
        if kind.name in self._kinds and not replace:
            raise ExtensionError("join kind %s already registered" % kind.name)
        self._kinds[kind.name] = kind
        return kind

    def get(self, name: str, functions=None) -> JoinKind:
        kind = self._kinds.get(name)
        if kind is not None:
            return kind
        # DBC set-predicate kinds are resolved dynamically: "setpred:majority"
        if name.startswith("setpred:") and functions is not None:
            function = functions.set_predicate(name.split(":", 1)[1])
            if function is not None:
                kind = JoinKind(name, combine=function.combine)
                self._kinds[name] = kind
                return kind
        raise SubqueryError("unknown join kind %s" % name)

    def names(self) -> List[str]:
        return sorted(self._kinds)


def default_join_kinds() -> JoinKindRegistry:
    registry = JoinKindRegistry()
    registry.register(JoinKind("regular", binds_inner=True))
    registry.register(JoinKind("left_outer", binds_inner=True,
                               preserves_outer=True))
    registry.register(JoinKind("exists", combine=combine_any))
    registry.register(JoinKind("not_exists", combine=_combine_not_exists))
    registry.register(JoinKind("all", combine=combine_all))
    registry.register(JoinKind("scalar", binds_inner=True, scalar=True))
    return registry
