"""Expression evaluation with SQL three-valued logic and on-demand
subquery evaluation.

An *environment* maps quantifiers to their current rows.  Evaluating a
reference to an unbound quantifier triggers the subquery machinery:

- scalar (S) quantifiers are evaluated on demand — at most one row, NULLs
  when empty — with correlation-value caching,
- existential/universal/DBC quantifiers are combined at the smallest
  boolean subexpression containing their references: for each subquery row
  the subexpression is evaluated, and the per-row outcomes are folded with
  the quantifier type's combinator (ANY, ALL, NOT EXISTS, MAJORITY, ...).
  This gives the OR operator of section 7 for free: in
  ``a = 5 OR b = (subquery)`` the OR's left arm is tried first and the
  subquery is only run when needed.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import DivisionByZeroError, ExecutionError, SubqueryError
from repro.functions.builtins import combine_all, combine_any
from repro.qgm import expressions as qe
from repro.qgm.model import Quantifier

Env = Dict[Any, Any]


@lru_cache(maxsize=512)
def _like_regex(pattern: str) -> "re.Pattern":
    """Compile a SQL LIKE pattern (%, _) to a regex."""
    parts = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


def kleene_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def kleene_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def kleene_not(value: Optional[bool]) -> Optional[bool]:
    return None if value is None else (not value)


class Evaluator:
    """Evaluates QGM expressions against environments."""

    def __init__(self, ctx):
        self.ctx = ctx
        self._index_cache: Dict[Tuple[int, str], int] = {}

    # -- helpers -----------------------------------------------------------------

    def _column_index(self, quantifier: Quantifier, column: str) -> int:
        key = (quantifier.uid, column)
        index = self._index_cache.get(key)
        if index is None:
            index = quantifier.input.head.index_of(column)
            self._index_cache[key] = index
        return index

    def _combinator_for(self, quantifier: Quantifier):
        qtype = quantifier.qtype
        if qtype == "E":
            return combine_any
        if qtype == "A":
            return combine_all
        if qtype == "NE":
            return lambda outcomes: kleene_not(combine_any(outcomes))
        function = self.ctx.functions.set_predicate_for_qtype(qtype)
        if function is not None:
            return function.combine
        raise SubqueryError("no combinator for iterator type %s" % qtype)

    def _unbound_subqueries(self, expr: qe.QExpr,
                            env: Env) -> List[Quantifier]:
        found: List[Quantifier] = []
        for quantifier in qe.quantifiers_in(expr):
            if quantifier in env or quantifier.is_setformer:
                continue
            if quantifier in self.ctx.subplan_bindings:
                found.append(quantifier)
        return sorted(found, key=lambda q: q.uid)

    def subquery_rows(self, binding, env: Env) -> List[Tuple[Any, ...]]:
        """Evaluate-on-demand with correlation caching (section 7)."""
        from repro.executor.run import rows_iter

        key = None
        if self.ctx.cache_subqueries:
            try:
                key = (id(binding),
                       tuple(self.eval(ref, env) for ref in binding.correlation))
                cached = self.ctx.subquery_cache.get(key)
            except TypeError:
                cached = None
                key = None
            else:
                if cached is not None:
                    self.ctx.stats.subquery_cache_hits += 1
                    return cached
        self.ctx.stats.subquery_evaluations += 1
        rows = list(rows_iter(binding.plan, self.ctx, env))
        if key is not None:
            self.ctx.subquery_cache[key] = rows
        return rows

    # -- entry points ----------------------------------------------------------------

    def eval_predicate(self, expr: qe.QExpr, env: Env) -> bool:
        """True only when the predicate evaluates to SQL TRUE."""
        return self.eval_bool(expr, env) is True

    def eval_bool(self, expr: qe.QExpr, env: Env) -> Optional[bool]:
        """Three-valued evaluation with quantified combination."""
        if isinstance(expr, qe.BinOp) and expr.op in ("and", "or"):
            left = self.eval_bool(expr.left, env)
            if expr.op == "and":
                if left is False:
                    return False
                right = self.eval_bool(expr.right, env)
                return kleene_and(left, right)
            if left is True:
                self.ctx.stats.or_branch_shortcuts += 1
                return True
            right = self.eval_bool(expr.right, env)
            return kleene_or(left, right)
        if isinstance(expr, qe.Not):
            return kleene_not(self.eval_bool(expr.operand, env))

        unbound = self._unbound_subqueries(expr, env)
        # Scalar quantifiers are value-like; they are resolved inside eval.
        quantified = [q for q in unbound if q.qtype != "S"]
        if quantified:
            quantifier = quantified[0]
            binding = self.ctx.subplan_bindings[quantifier]
            combine = self._combinator_for(quantifier)
            rows = self.subquery_rows(binding, env)

            def outcomes() -> Iterable[Optional[bool]]:
                for row in rows:
                    inner_env = dict(env)
                    inner_env[quantifier] = row
                    yield self.eval_bool(expr, inner_env)

            return combine(outcomes())
        value = self.eval(expr, env)
        if value is None or isinstance(value, bool):
            return value
        raise ExecutionError("predicate produced non-boolean %r" % (value,))

    # -- value evaluation ---------------------------------------------------------------

    def eval(self, expr: qe.QExpr, env: Env) -> Any:
        method = getattr(self, "_ev_%s" % type(expr).__name__.lower(), None)
        if method is None:
            raise ExecutionError(
                "cannot evaluate %s" % type(expr).__name__
            )
        return method(expr, env)

    def _ev_const(self, expr: qe.Const, env: Env) -> Any:
        return expr.value

    def _ev_paramref(self, expr: qe.ParamRef, env: Env) -> Any:
        try:
            return self.ctx.params[expr.index]
        except IndexError:
            raise ExecutionError(
                "no value bound for parameter %d" % (expr.index + 1)
            ) from None

    def _ev_colref(self, expr: qe.ColRef, env: Env) -> Any:
        quantifier = expr.quantifier
        row = env.get(quantifier)
        if row is None and quantifier not in env:
            binding = self.ctx.subplan_bindings.get(quantifier)
            if binding is not None and quantifier.qtype == "S":
                rows = self.subquery_rows(binding, env)
                if len(rows) > 1:
                    raise SubqueryError(
                        "scalar subquery returned %d rows" % len(rows)
                    )
                if not rows:
                    return None
                row = rows[0]
            else:
                raise ExecutionError(
                    "unbound iterator %s in expression" % quantifier.name
                )
        if row is None:
            return None  # NULL-padded outer-join row
        return row[self._column_index(quantifier, expr.column)]

    def _ev_binop(self, expr: qe.BinOp, env: Env) -> Any:
        op = expr.op
        if op in ("and", "or"):
            return self.eval_bool(expr, env)
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            if left is None or right is None:
                return None
            if op == "=":
                return left == right
            if op == "<>":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right
        if left is None or right is None:
            return None
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise DivisionByZeroError("division by zero")
            result = left / right
            return result
        if op == "%":
            if right == 0:
                raise DivisionByZeroError("division by zero")
            return left % right
        if op == "||":
            return str(left) + str(right)
        raise ExecutionError("unknown operator %s" % op)

    def _ev_not(self, expr: qe.Not, env: Env) -> Optional[bool]:
        return kleene_not(self.eval_bool(expr.operand, env))

    def _ev_neg(self, expr: qe.Neg, env: Env) -> Any:
        value = self.eval(expr.operand, env)
        return None if value is None else -value

    def _ev_isnulltest(self, expr: qe.IsNullTest, env: Env) -> bool:
        value = self.eval(expr.operand, env)
        is_null = value is None
        return (not is_null) if expr.negated else is_null

    def _ev_likeop(self, expr: qe.LikeOp, env: Env) -> Optional[bool]:
        value = self.eval(expr.operand, env)
        pattern = self.eval(expr.pattern, env)
        if value is None or pattern is None:
            return None
        matched = _like_regex(pattern).match(value) is not None
        return (not matched) if expr.negated else matched

    def _ev_funccall(self, expr: qe.FuncCall, env: Env) -> Any:
        function = self.ctx.functions.scalar(expr.name)
        if function is None:
            raise ExecutionError("unknown function %s" % expr.name)
        args = [self.eval(a, env) for a in expr.args]
        try:
            return function.invoke(args)
        except ExecutionError:
            raise
        except Exception as exc:
            raise ExecutionError(
                "function %s failed: %s" % (expr.name, exc)
            ) from exc

    def _ev_aggcall(self, expr: qe.AggCall, env: Env) -> Any:
        raise ExecutionError(
            "aggregate %s evaluated outside GROUP BY" % expr.name
        )

    def _ev_caseop(self, expr: qe.CaseOp, env: Env) -> Any:
        for condition, value in expr.whens:
            if self.eval_bool(condition, env) is True:
                return self.eval(value, env)
        if expr.else_value is not None:
            return self.eval(expr.else_value, env)
        return None

    def _ev_cast(self, expr: qe.Cast, env: Env) -> Any:
        value = self.eval(expr.operand, env)
        if value is None:
            return None
        target = expr.dtype.name
        try:
            if target == "INTEGER":
                return int(value)
            if target == "DOUBLE":
                return float(value)
            if target == "VARCHAR":
                return str(value)
            if target == "BOOLEAN":
                return bool(value)
        except (TypeError, ValueError) as exc:
            raise ExecutionError("bad cast: %s" % exc) from exc
        if expr.dtype.validate(value):
            return value
        raise ExecutionError(
            "cannot cast %r to %s" % (value, target)
        )

    def _ev_existstest(self, expr: qe.ExistsTest, env: Env) -> bool:
        # When the quantifier is bound we are looking at one inner row,
        # which by construction exists.
        return True
